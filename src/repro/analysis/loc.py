"""Source-size accounting for Section 6's in-text comparisons.

"We wrote the Stache protocol in Teapot (600 lines, which compiles to
1000 lines of C) ... The LCM protocol in Teapot (1500 lines) compiled to
approximately 2300 lines of C; a hand-coded implementation required
approximately 2500 lines of C."
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.backends.c_backend import emit_c
from repro.backends.murphi_backend import emit_murphi
from repro.protocols import compile_named_protocol, load_protocol_source


def count_loc(text: str, comment_prefixes: tuple[str, ...] = ("--", "/*",
                                                              "*", "#")) -> int:
    """Non-blank, non-comment lines."""
    count = 0
    for line in text.splitlines():
        stripped = line.strip()
        if not stripped:
            continue
        if any(stripped.startswith(prefix) for prefix in comment_prefixes):
            continue
        count += 1
    return count


@dataclass
class LocRow:
    protocol: str
    teapot_lines: int
    generated_c_lines: int
    generated_murphi_lines: int

    @property
    def expansion(self) -> float:
        if self.teapot_lines == 0:
            return 0.0
        return self.generated_c_lines / self.teapot_lines


def loc_report(names: tuple[str, ...] = ("stache", "stache_sm", "lcm",
                                         "lcm_sm")) -> list[LocRow]:
    """Teapot-source versus generated-code sizes for named protocols."""
    rows = []
    for name in names:
        source = load_protocol_source(name)
        protocol = compile_named_protocol(name)
        rows.append(LocRow(
            protocol=name,
            teapot_lines=count_loc(source),
            generated_c_lines=count_loc(emit_c(protocol)),
            generated_murphi_lines=count_loc(emit_murphi(protocol)),
        ))
    return rows
