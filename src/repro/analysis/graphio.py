"""Shared DOT / GraphML emission.

Two very different graphs leave this repo as pictures: the *syntactic*
per-machine state graph (``teapot graph --dot``, Figures 1/2/4) and the
*explored* global state space (``teapot analyze atlas --dot``,
docs/OBSERVABILITY.md "Mapping the state space").  Both funnel through
the two writers here so quoting/escaping rules, attribute formatting,
and the GraphML schema live in exactly one place.

A graph is described as plain data: ``nodes`` is an iterable of
``(node_id, attrs)`` pairs and ``edges`` of ``(src_id, dst_id, attrs)``
triples, where ``attrs`` is a ``{name: value}`` dict.  DOT renders the
attrs inline (``label``, ``shape``, ``style``, ...); GraphML declares a
``<key>`` per attribute name and emits ``<data>`` children.
"""

from __future__ import annotations

from xml.sax.saxutils import escape as _xml_escape


def _dot_quote(text: str) -> str:
    return '"' + str(text).replace("\\", "\\\\").replace('"', '\\"') + '"'


def _dot_attrs(attrs: dict) -> str:
    """``[a=b, c="d"]`` -- bare identifiers stay bare (shape=box), the
    rest are quoted, matching Graphviz conventions."""
    if not attrs:
        return ""
    parts = []
    for name, value in attrs.items():
        text = str(value)
        if text.isalnum():
            parts.append(f"{name}={text}")
        else:
            parts.append(f"{name}={_dot_quote(text)}")
    return " [" + ", ".join(parts) + "]"


def dot_graph(name: str, nodes, edges, rankdir: str = "LR",
              extra_lines: tuple = ()) -> str:
    """A Graphviz digraph over (id, attrs) nodes and (src, dst, attrs)
    edges."""
    lines = [f"digraph {_dot_quote(name)} {{", f"  rankdir={rankdir};"]
    lines.extend(f"  {line}" for line in extra_lines)
    for node_id, attrs in nodes:
        lines.append(f"  {_dot_quote(node_id)}{_dot_attrs(attrs)};")
    for src, dst, attrs in edges:
        lines.append(
            f"  {_dot_quote(src)} -> {_dot_quote(dst)}{_dot_attrs(attrs)};")
    lines.append("}")
    return "\n".join(lines)


def graphml_graph(name: str, nodes, edges) -> str:
    """The same graph as GraphML (yEd / Gephi / NetworkX importable).

    Attribute keys are declared once per (domain, name) with type
    inferred from the first value seen (int/double/string)."""
    nodes = list(nodes)
    edges = list(edges)

    def attr_type(value) -> str:
        if isinstance(value, bool):
            return "boolean"
        if isinstance(value, int):
            return "int"
        if isinstance(value, float):
            return "double"
        return "string"

    keys: dict[tuple[str, str], str] = {}
    for _ident, attrs in nodes:
        for attr, value in attrs.items():
            keys.setdefault(("node", attr), attr_type(value))
    for _src, _dst, attrs in edges:
        for attr, value in attrs.items():
            keys.setdefault(("edge", attr), attr_type(value))

    key_ids = {pair: f"k{i}" for i, pair in enumerate(sorted(keys))}
    lines = [
        '<?xml version="1.0" encoding="UTF-8"?>',
        '<graphml xmlns="http://graphml.graphdrawing.org/xmlns">',
    ]
    for (domain, attr), key_id in sorted(key_ids.items(),
                                         key=lambda item: item[1]):
        lines.append(
            f'  <key id="{key_id}" for="{domain}" '
            f'attr.name="{_xml_escape(attr)}" '
            f'attr.type="{keys[(domain, attr)]}"/>')
    lines.append(
        f'  <graph id="{_xml_escape(str(name))}" edgedefault="directed">')

    def data_lines(domain: str, attrs: dict) -> list[str]:
        out = []
        for attr, value in attrs.items():
            key_id = key_ids[(domain, attr)]
            if isinstance(value, bool):
                text = "true" if value else "false"
            else:
                text = _xml_escape(str(value))
            out.append(f'      <data key="{key_id}">{text}</data>')
        return out

    for node_id, attrs in nodes:
        if attrs:
            lines.append(f'    <node id="{_xml_escape(str(node_id))}">')
            lines.extend(data_lines("node", attrs))
            lines.append("    </node>")
        else:
            lines.append(f'    <node id="{_xml_escape(str(node_id))}"/>')
    for i, (src, dst, attrs) in enumerate(edges):
        head = (f'    <edge id="e{i}" '
                f'source="{_xml_escape(str(src))}" '
                f'target="{_xml_escape(str(dst))}"')
        if attrs:
            lines.append(head + ">")
            lines.extend(data_lines("edge", attrs))
            lines.append("    </edge>")
        else:
            lines.append(head + "/>")
    lines.append("  </graph>")
    lines.append("</graphml>")
    return "\n".join(lines)
