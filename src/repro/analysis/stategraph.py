"""State-transition graph extraction (Figures 1, 2, and 4).

Builds, from a compiled protocol, the graph whose nodes are protocol
states and whose edges are (message, target-state) transitions found by
scanning each handler for ``SetState`` calls and ``Suspend`` targets.
The home-side subgraph of ``stache_sm`` is exactly Figure 4's machine
("state machine with intermediate states necessary to avoid synchronous
communication"); the three-state idealisation of Figure 2 is what
remains after contracting transient states.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.lang import ast
from repro.compiler.ir import HandlerIR, ICall, TSuspend
from repro.runtime.protocol import CompiledProtocol


@dataclass(frozen=True)
class Transition:
    source: str
    message: str
    target: str
    via_suspend: bool = False

    def __str__(self) -> str:
        arrow = "~~>" if self.via_suspend else "-->"
        return f"{self.source} {arrow} {self.target}  [{self.message}]"


@dataclass
class StateGraph:
    """States and transitions of one protocol (or one side of it)."""

    protocol: str
    states: list[str]
    transient_states: list[str]
    transitions: list[Transition] = field(default_factory=list)

    @property
    def stable_states(self) -> list[str]:
        transient = set(self.transient_states)
        return [s for s in self.states if s not in transient]

    def restricted_to(self, prefix: str) -> "StateGraph":
        """The subgraph of states whose names start with ``prefix``
        (e.g. ``Home_`` for the Figure 2/4 home side)."""
        keep = {s for s in self.states if s.startswith(prefix)}
        return StateGraph(
            protocol=self.protocol,
            states=[s for s in self.states if s in keep],
            transient_states=[s for s in self.transient_states if s in keep],
            transitions=[
                t for t in self.transitions
                if t.source in keep and t.target in keep
            ],
        )

    def contracted(self) -> "StateGraph":
        """Contract transient states: the idealized machine (Figure 2).

        Every path stable -> transient* -> stable collapses to a single
        edge labelled by the initiating message.
        """
        transient = set(self.transient_states)
        by_source: dict[str, list[Transition]] = {}
        for transition in self.transitions:
            by_source.setdefault(transition.source, []).append(transition)

        def reachable_stables(state: str, seen: frozenset) -> set[str]:
            result: set[str] = set()
            for transition in by_source.get(state, []):
                target = transition.target
                if target in seen:
                    continue
                if target in transient:
                    result |= reachable_stables(target, seen | {target})
                else:
                    result.add(target)
            return result

        edges: set[Transition] = set()
        for transition in self.transitions:
            if transition.source in transient:
                continue
            if transition.target not in transient:
                edges.add(Transition(transition.source, transition.message,
                                     transition.target))
                continue
            for stable in reachable_stables(transition.target,
                                            frozenset({transition.target})):
                edges.add(Transition(transition.source, transition.message,
                                     stable))
        return StateGraph(
            protocol=self.protocol,
            states=self.stable_states,
            transient_states=[],
            transitions=sorted(edges, key=str),
        )

    def summary(self) -> str:
        return (f"{self.protocol}: {len(self.states)} states "
                f"({len(self.transient_states)} transient), "
                f"{len(self.transitions)} transitions")

    def to_dot(self) -> str:
        """Graphviz rendering (for the figures); emission shared with
        the atlas export via :mod:`repro.analysis.graphio`."""
        from repro.analysis.graphio import dot_graph

        transient = set(self.transient_states)
        nodes = [
            (state,
             {"shape": "ellipse"} if state not in transient
             else {"shape": "box", "style": "dashed"})
            for state in self.states
        ]
        edges = []
        for transition in self.transitions:
            attrs = {"label": transition.message}
            if transition.via_suspend:
                attrs["style"] = "dashed"
            edges.append((transition.source, transition.target, attrs))
        return dot_graph(self.protocol, nodes, edges)


def _targets_of(handler: HandlerIR) -> list[tuple[str, bool]]:
    """State names this handler can move the block to."""
    targets: list[tuple[str, bool]] = []
    for block in handler.blocks.values():
        for op in block.ops:
            if isinstance(op, ICall) and op.name == "SetState":
                state_expr = op.args[1]
                if isinstance(state_expr, ast.StateExpr):
                    targets.append((state_expr.name, False))
        term = block.terminator
        if isinstance(term, TSuspend):
            site = handler.suspend_sites[term.site_id]
            targets.append((site.target.name, True))
    return targets


def build_state_graph(protocol: CompiledProtocol) -> StateGraph:
    """Extract the full transition graph of ``protocol``."""
    graph = StateGraph(
        protocol=protocol.name,
        states=sorted(protocol.states),
        transient_states=sorted(
            s.name for s in protocol.states.values() if s.transient),
    )
    seen: set[Transition] = set()
    for (state_name, message_name), handler in sorted(protocol.handlers.items()):
        for target, via_suspend in _targets_of(handler):
            transition = Transition(state_name, message_name, target,
                                    via_suspend)
            if transition not in seen:
                seen.add(transition)
                graph.transitions.append(transition)
        # Resumes continue a suspended transition; the eventual SetState
        # is attributed to the suspended handler via its own scan.
    return graph
