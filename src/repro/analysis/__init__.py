"""Protocol structure analyses backing the paper's figures.

- :mod:`repro.analysis.stategraph`: extract the state-transition graph
  of a compiled protocol (Figures 1, 2, and 4 -- the idealized machines
  versus the intermediate-state explosion).
- :mod:`repro.analysis.diffstat`: count the places a protocol extension
  touches (Figure 6's "14 different places" comparison).
- :mod:`repro.analysis.loc`: source/generated line counting (the
  Section 6 in-text size comparisons).
- :mod:`repro.analysis.consistency`: value-level consistency checking
  over simulation logs (the data-value assertions the model checker
  deliberately abstracts away).
"""

from repro.analysis.stategraph import StateGraph, build_state_graph
from repro.analysis.diffstat import protocol_diffstat, DiffStat
from repro.analysis.loc import count_loc, loc_report
from repro.analysis.consistency import (
    ConsistencyReport,
    check_barrier_consistency,
    check_read_values,
)

__all__ = [
    "StateGraph",
    "build_state_graph",
    "protocol_diffstat",
    "DiffStat",
    "count_loc",
    "loc_report",
    "ConsistencyReport",
    "check_barrier_consistency",
    "check_read_values",
]
