"""Extension touch-point counting (Figure 6 / Section 2).

"The state machine-based implementation needs to test for this
condition at 14 different places" -- the cost of adding Compare&Swap to
a protocol is measured by how many handlers the extension adds or
modifies.  This module diffs two compiled protocols at handler
granularity.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.compiler.ir import HandlerIR, IAssign, ICall, IPrint, IResume
from repro.runtime.protocol import CompiledProtocol
from repro.lang.pretty import format_expr


def _handler_fingerprint(handler: HandlerIR) -> tuple:
    """A structural fingerprint insensitive to block numbering."""
    parts: list = [tuple(handler.params), tuple(sorted(handler.locals))]
    for block_id in sorted(handler.blocks):
        block = handler.blocks[block_id]
        for op in block.ops:
            if isinstance(op, IAssign):
                parts.append(("assign", op.target, format_expr(op.value)))
            elif isinstance(op, ICall):
                parts.append(("call", op.name,
                              tuple(format_expr(a) for a in op.args)))
            elif isinstance(op, IResume):
                parts.append(("resume", format_expr(op.cont)))
            elif isinstance(op, IPrint):
                parts.append(("print",))
        parts.append(type(block.terminator).__name__)
    return tuple(parts)


@dataclass
class DiffStat:
    """Handler-level diff between a base protocol and an extension."""

    base: str
    extended: str
    added_states: list[str] = field(default_factory=list)
    added_messages: list[str] = field(default_factory=list)
    added_handlers: list[str] = field(default_factory=list)
    modified_handlers: list[str] = field(default_factory=list)
    added_info_vars: list[str] = field(default_factory=list)

    @property
    def touch_points(self) -> int:
        """Handlers added or modified: the Figure 6 metric."""
        return len(self.added_handlers) + len(self.modified_handlers)

    def summary(self) -> str:
        return (
            f"{self.base} -> {self.extended}: "
            f"{len(self.added_states)} new states, "
            f"{len(self.added_messages)} new messages, "
            f"{len(self.added_info_vars)} new per-block variables, "
            f"{len(self.added_handlers)} new handlers, "
            f"{len(self.modified_handlers)} modified handlers "
            f"({self.touch_points} touch points)"
        )


def protocol_diffstat(base: CompiledProtocol,
                      extended: CompiledProtocol) -> DiffStat:
    """Diff ``extended`` against ``base`` at handler granularity."""
    diff = DiffStat(base=base.name, extended=extended.name)
    diff.added_states = sorted(set(extended.states) - set(base.states))
    diff.added_messages = sorted(
        set(extended.messages) - set(base.messages))
    diff.added_info_vars = sorted(
        set(extended.info_vars) - set(base.info_vars))

    base_fingerprints = {
        key: _handler_fingerprint(handler)
        for key, handler in base.handlers.items()
    }
    for key, handler in sorted(extended.handlers.items()):
        name = f"{key[0]}.{key[1]}"
        if key not in base_fingerprints:
            diff.added_handlers.append(name)
        elif _handler_fingerprint(handler) != base_fingerprints[key]:
            diff.modified_handlers.append(name)
    return diff
