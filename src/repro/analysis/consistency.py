"""Memory-consistency checking over simulation logs.

The simulator logs reads tagged ``"log"`` as ``(block, value)`` pairs
per node.  This module checks those observations against the writes the
programs performed:

- :func:`check_read_values` -- every observed value was actually written
  to that block (or is the initial zero): no out-of-thin-air reads.
- :func:`check_barrier_consistency` -- for barrier-synchronised,
  race-free programs (one writer per block per phase), every read in a
  phase observes the latest preceding write: the strongest property our
  blocking protocols guarantee and the one the LCM paper's copy-in/
  copy-out semantics relies on between phases.

These are the "additional assertions" Section 7 says "can be verified as
needed" -- checked here over concrete executions rather than the model,
since the model checker deliberately abstracts data values.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.tempest.machine import Machine


@dataclass
class ConsistencyReport:
    """Outcome of a consistency check."""

    ok: bool
    violations: list[str] = field(default_factory=list)

    def raise_if_failed(self) -> None:
        if not self.ok:
            raise AssertionError("consistency violations:\n" +
                                 "\n".join(self.violations))


def _writes_per_block(programs: list[list]) -> dict[int, set]:
    """All values ever written to each block, across all programs."""
    values: dict[int, set] = {}
    for program in programs:
        for op in program:
            if op[0] == "write" and len(op) > 2:
                values.setdefault(op[1], set()).add(op[2])
    return values


def check_read_values(machine: Machine,
                      programs: list[list]) -> ConsistencyReport:
    """No logged read returns a value that was never written."""
    written = _writes_per_block(programs)
    report = ConsistencyReport(ok=True)
    for node in machine.nodes:
        for block, value in node.observed:
            legal = written.get(block, set()) | {0}
            if value not in legal:
                report.ok = False
                report.violations.append(
                    f"node {node.node_id} read {value!r} from block "
                    f"{block}, which was never written (legal: "
                    f"{sorted(legal)})")
    return report


def _phases(program: list) -> list[list]:
    """Split a program into barrier-delimited phases."""
    phases: list[list] = [[]]
    for op in program:
        if op[0] == "barrier":
            phases.append([])
        else:
            phases[-1].append(op)
    return phases


def check_barrier_consistency(machine: Machine,
                              programs: list[list]) -> ConsistencyReport:
    """Phase-accurate value checking for race-free programs.

    Requires that within each barrier-delimited phase every block has at
    most one writing node (checked); then every logged read must observe
    the last value written in an *earlier* phase, or a value written in
    the read's own phase, or the initial zero if the block is untouched
    so far.
    """
    report = ConsistencyReport(ok=True)
    all_phases = [_phases(p) for p in programs]
    n_phases = max(len(p) for p in all_phases)

    # Value each block holds at the *start* of each phase.
    current: dict[int, int] = {}
    value_before_phase: list[dict[int, int]] = []
    for phase_index in range(n_phases):
        value_before_phase.append(dict(current))
        writers: dict[int, int] = {}
        for node, phases in enumerate(all_phases):
            if phase_index >= len(phases):
                continue
            for op in phases[phase_index]:
                if op[0] == "write" and len(op) > 2:
                    block = op[1]
                    if block in writers and writers[block] != node:
                        report.ok = False
                        report.violations.append(
                            f"phase {phase_index}: racy writes to block "
                            f"{block} by nodes {writers[block]} and "
                            f"{node}; barrier consistency undefined")
                    writers[block] = node
                    current[block] = op[2]
    if not report.ok:
        return report

    # Replay each node's logged reads phase by phase.
    for node_obj, phases in zip(machine.nodes, all_phases):
        observed = list(node_obj.observed)
        cursor = 0
        for phase_index, phase in enumerate(phases):
            local: dict[int, int] = {}
            for op in phase:
                if op[0] == "write" and len(op) > 2:
                    local[op[1]] = op[2]
                elif op[0] == "read" and len(op) > 2 and op[2] == "log":
                    if cursor >= len(observed):
                        report.ok = False
                        report.violations.append(
                            f"node {node_obj.node_id}: fewer observations "
                            "than logged reads")
                        return report
                    block, value = observed[cursor]
                    cursor += 1
                    if block != op[1]:
                        report.ok = False
                        report.violations.append(
                            f"node {node_obj.node_id}: observation order "
                            f"mismatch (expected block {op[1]}, got "
                            f"{block})")
                        continue
                    expected = local.get(
                        block, value_before_phase[phase_index].get(block, 0))
                    if value != expected:
                        report.ok = False
                        report.violations.append(
                            f"node {node_obj.node_id}, phase {phase_index}: "
                            f"read block {block} = {value!r}, expected "
                            f"{expected!r}")
    return report
