"""The Teapot compiler middle end.

Transforms checked handler bodies into control-flow graphs, splits them
at ``Suspend`` points into atomically executable fragments (Figures 9 and
10 of the paper), runs live-variable analysis to shrink continuation
records, and applies the constant-continuation optimisation (Section 5).
"""

from repro.compiler.pipeline import compile_protocol, compile_source, OptLevel

__all__ = ["compile_protocol", "compile_source", "OptLevel"]
