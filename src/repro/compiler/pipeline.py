"""The compile driver: source -> checked AST -> CFGs -> CompiledProtocol.

Mirrors the paper's pipeline (Section 5): lower each handler, split at
suspend points (implicit in the CFG form), then run the optimisation
passes selected by :class:`~repro.runtime.protocol.OptLevel`.
"""

from __future__ import annotations

from typing import Optional

from repro.lang.ast import DEFAULT_MESSAGE
from repro.lang.parser import parse_program
from repro.lang.typecheck import CheckedProgram, check_program
from repro.compiler.constcont import apply_constcont
from repro.compiler.liveness import apply_liveness, apply_save_all
from repro.compiler.lower import lower_program
from repro.runtime.protocol import (
    CompiledProtocol,
    CompiledStateInfo,
    CompileStats,
    Flavor,
    OptLevel,
    resolve_initial_states,
)


def _const_values(checked: CheckedProgram) -> dict[str, object]:
    values: dict[str, object] = {}
    for name, (_type, expr) in checked.consts.items():
        value = getattr(expr, "value", None)
        if value is not None:
            values[name] = value
    return values


def compile_protocol(
    checked: CheckedProgram,
    opt_level: OptLevel = OptLevel.O2,
    flavor: Flavor = Flavor.TEAPOT,
    initial_states: Optional[tuple[str, str]] = None,
) -> CompiledProtocol:
    """Compile a checked program into an executable protocol."""
    handlers = lower_program(checked)

    for handler in handlers.values():
        if opt_level is OptLevel.O0:
            apply_save_all(handler)
        else:
            apply_liveness(handler)

    stats = CompileStats()
    if opt_level is OptLevel.O2:
        flow = apply_constcont(checked, handlers)
        stats.n_static_sites = flow.static_sites
        stats.n_inlined_resumes = flow.inlined_resumes

    states: dict[str, CompiledStateInfo] = {}
    for sig in checked.states.values():
        state_handlers: dict[str, object] = {}
        default = None
        for (state_name, message_name), handler in handlers.items():
            if state_name != sig.name:
                continue
            if message_name == DEFAULT_MESSAGE:
                default = handler
            else:
                state_handlers[message_name] = handler
        states[sig.name] = CompiledStateInfo(
            name=sig.name,
            params=[(p.name, p.type_name) for p in sig.params],
            transient=sig.transient,
            handlers=state_handlers,
            default=default,
        )

    stats.n_states = len(states)
    stats.n_handlers = len(handlers)
    stats.n_suspend_sites = sum(
        len(h.suspend_sites) for h in handlers.values())
    stats.n_transient_states = sum(1 for s in states.values() if s.transient)

    home, cache = resolve_initial_states(states, initial_states)

    return CompiledProtocol(
        name=checked.protocol_name,
        checked=checked,
        states=states,
        handlers=handlers,
        messages=dict(checked.messages),
        info_vars=dict(checked.info_vars),
        consts=_const_values(checked),
        opt_level=opt_level,
        flavor=flavor,
        initial_home_state=home,
        initial_cache_state=cache,
        stats=stats,
    )


def compile_source(
    source: str,
    opt_level: OptLevel = OptLevel.O2,
    flavor: Flavor = Flavor.TEAPOT,
    initial_states: Optional[tuple[str, str]] = None,
    filename: str = "<string>",
) -> CompiledProtocol:
    """Parse, check, and compile Teapot source text in one call."""
    program = parse_program(source, filename)
    checked = check_program(program)
    return compile_protocol(checked, opt_level, flavor, initial_states)
