"""Intermediate representation: handler bodies as control-flow graphs.

A handler body lowers to a graph of :class:`BasicBlock`, each holding
straight-line :class:`Op` instructions and one :class:`Terminator`.
Expressions are kept as (checked) AST nodes -- Teapot expressions are
side-effect-free apart from support-function calls, so there is nothing
to gain from flattening them.

``Suspend`` becomes a block terminator: the paper's splitting
transformation (Figure 10) falls out of this representation for free,
because the block that follows a :class:`TSuspend` is exactly the entry
point of the generated ``<handler>_after_<L>`` fragment.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Union

from repro.lang import ast

BlockId = int


# ---------------------------------------------------------------------------
# Straight-line operations
# ---------------------------------------------------------------------------


@dataclass
class IAssign:
    """``target := value``; ``target`` is a handler/local/info variable."""

    target: str
    value: ast.Expr


@dataclass
class ICall:
    """A procedure call statement (builtin or module support routine)."""

    name: str
    args: list[ast.Expr]


@dataclass
class IResume:
    """``Resume(cont)``.

    ``direct_site`` is filled in by the constant-continuation
    optimisation when exactly one suspend site can reach this resume:
    the back ends may then jump straight to that site's resume fragment
    instead of making an indirect call through the continuation record.
    """

    cont: ast.Expr
    direct_site: Optional[int] = None
    direct_handler: Optional[str] = None  # qualified name owning direct_site


@dataclass
class IPrint:
    """Debug output."""

    args: list[ast.Expr]


Op = Union[IAssign, ICall, IResume, IPrint]


# ---------------------------------------------------------------------------
# Terminators
# ---------------------------------------------------------------------------


@dataclass
class TGoto:
    target: BlockId


@dataclass
class TBranch:
    cond: ast.Expr
    true_target: BlockId
    false_target: BlockId


@dataclass
class TSuspend:
    """Capture a continuation, enter the subroutine state, and yield.

    ``resume_target`` is the block where execution continues when the
    captured continuation is resumed -- the entry of the split-off
    fragment.  ``site_id`` indexes the handler's ``suspend_sites``.
    """

    site_id: int
    resume_target: BlockId


@dataclass
class TReturn:
    """End of the atomic action (the paper's ``exit``)."""


Terminator = Union[TGoto, TBranch, TSuspend, TReturn]


@dataclass
class BasicBlock:
    block_id: BlockId
    ops: list[Op] = field(default_factory=list)
    terminator: Terminator = field(default_factory=TReturn)

    def successors(self) -> list[BlockId]:
        term = self.terminator
        if isinstance(term, TGoto):
            return [term.target]
        if isinstance(term, TBranch):
            return [term.true_target, term.false_target]
        if isinstance(term, TSuspend):
            # Control continues at the resume target *in a later atomic
            # action*; for liveness purposes it is still a successor.
            return [term.resume_target]
        return []


@dataclass
class SuspendSite:
    """One ``Suspend`` statement, after lowering.

    - ``cont_name``: the variable the continuation is bound to.
    - ``target``: the subroutine-state constructor (evaluated at suspend
      time, with ``cont_name`` in scope).
    - ``resume_block``: where the continuation resumes.
    - ``save_set``: variables captured in the continuation record; set by
      liveness (or "everything" at -O0).
    - ``is_static``: no live values, so a statically allocated record can
      be shared by all instances (constant-continuation optimisation).
    """

    site_id: int
    cont_name: str
    target: ast.StateExpr
    resume_block: BlockId
    save_set: tuple[str, ...] = ()
    is_static: bool = False
    location: object = None


@dataclass
class HandlerIR:
    """A lowered handler: CFG, suspend sites, and variable tables."""

    state_name: str
    message_name: str
    params: list[str]                 # in declaration order (id, info, src, ...)
    param_types: dict[str, str]
    locals: dict[str, str]            # local name -> type
    state_params: dict[str, str]      # enclosing state's params
    cont_vars: tuple[str, ...]        # names bound by Suspend
    var_kinds: dict[str, str]         # every name -> symbol kind (resolution)
    blocks: dict[BlockId, BasicBlock]
    entry: BlockId
    suspend_sites: list[SuspendSite]

    @property
    def qualified_name(self) -> str:
        return f"{self.state_name}.{self.message_name}"

    @property
    def frame_vars(self) -> list[str]:
        """Variables that live in the handler's activation frame.

        These are the candidates for saving in a continuation record:
        handler parameters, locals, state parameters, and captured
        continuations.  Info variables and constants are *not* part of
        the frame -- they are re-fetched from the block record.
        """
        names = list(self.params)
        names += [n for n in self.locals if n not in names]
        names += [n for n in self.state_params if n not in names]
        names += [n for n in self.cont_vars if n not in names]
        return names

    def block(self, block_id: BlockId) -> BasicBlock:
        return self.blocks[block_id]

    def fragment_entries(self) -> list[BlockId]:
        """Entry blocks of the split fragments: handler entry, then one
        per suspend site (Figure 10's ``HANDLER`` and ``HANDLER_after_L``)."""
        return [self.entry] + [site.resume_block for site in self.suspend_sites]

    def rpo_blocks(self) -> list[BasicBlock]:
        """Blocks in reverse post-order from the entry (stable for tests)."""
        seen: set[BlockId] = set()
        order: list[BlockId] = []

        def visit(block_id: BlockId) -> None:
            if block_id in seen:
                return
            seen.add(block_id)
            for succ in self.blocks[block_id].successors():
                visit(succ)
            order.append(block_id)

        visit(self.entry)
        # Suspend resume targets are reachable via TSuspend successors, but
        # guard against unreachable blocks (e.g. code after Return).
        for block_id in self.blocks:
            visit(block_id)
        order.reverse()
        return [self.blocks[b] for b in order]
