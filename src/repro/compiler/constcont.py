"""The constant-continuation optimisation (Section 5 of the paper).

Two whole-protocol analyses:

1. **Static allocation.**  "Often in a handler, no values are saved and
   restored, so that a continuation can be statically allocated and used
   by all handler invocations."  A suspend site whose save set is empty
   gets ``is_static = True``: the runtime shares one immutable record per
   site instead of heap-allocating a new one per suspend.

2. **Resume inlining (beta-contraction).**  "The compiler detects if a
   constant continuation reaches a particular Resume site.  If so, the
   code from the handler can be in-lined at the Resume site."  We track,
   for each CONT parameter of each subroutine state, the set of suspend
   sites whose continuations can flow into it.  Flow happens through
   state-constructor arguments: ``Suspend(L, Await{L})`` flows site L into
   ``Await``'s parameter, and ``Await`` forwarding its parameter to
   another state constructor flows everything onward.  When exactly one
   site reaches a ``Resume(C)``, the resume is annotated with that site
   so back ends can jump straight to the (known) resume fragment.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.lang import ast
from repro.lang.builtins import T_CONT
from repro.compiler.ir import HandlerIR, IResume, TSuspend

# A lattice over sets of suspend-site ids; None = unknown provenance (top).
_FlowSet = object  # frozenset[tuple[str, int]] | None


@dataclass
class ContFlow:
    """Results of the continuation-flow analysis.

    ``param_sources`` maps (state, cont-param-name) to the set of suspend
    sites -- as (handler-qualified-name, site-id) pairs -- whose
    continuations may bind that parameter, or None when a continuation of
    unknown provenance (e.g. read from a non-frame location) may arrive.
    """

    param_sources: dict[tuple[str, str], frozenset | None] = \
        field(default_factory=dict)
    static_sites: int = 0
    inlined_resumes: int = 0


def _state_cont_params(checked) -> dict[str, list[tuple[int, str]]]:
    """For every state: the (index, name) of its CONT-typed parameters."""
    result: dict[str, list[tuple[int, str]]] = {}
    for sig in checked.states.values():
        conts = [
            (index, param.name)
            for index, param in enumerate(sig.params)
            if param.type_name == T_CONT
        ]
        if conts:
            result[sig.name] = conts
    return result


def _merge(current, incoming) -> object:
    """Union on the may-bind lattice; None (unknown) absorbs everything."""
    if current is None or incoming is None:
        return None
    return current | incoming


def _cont_sources_of_expr(expr: ast.Expr, handler: HandlerIR,
                          local_sources: dict[str, object]) -> object:
    """What continuations can ``expr`` (a CONT-typed argument) evaluate to?"""
    if isinstance(expr, ast.NameRef):
        return local_sources.get(expr.name, None)
    return None  # anything else is unknown provenance


def analyze_cont_flow(checked, handlers: dict[tuple[str, str], HandlerIR],
                      max_rounds: int = 50) -> ContFlow:
    """Fixed-point may-bind analysis for subroutine-state CONT parameters."""
    flow = ContFlow()
    cont_params = _state_cont_params(checked)
    sources: dict[tuple[str, str], object] = {
        (state, name): frozenset()
        for state, params in cont_params.items()
        for _index, name in params
    }

    for _round in range(max_rounds):
        changed = False
        for key, handler in handlers.items():
            # Continuation-typed values visible inside this handler:
            # the enclosing state's CONT params (current analysis value)
            # and continuations bound by this handler's own suspends.
            local: dict[str, object] = {}
            for name, type_name in handler.state_params.items():
                if type_name == T_CONT:
                    local[name] = sources.get((handler.state_name, name),
                                              frozenset())
            for site in handler.suspend_sites:
                local[site.cont_name] = frozenset(
                    {(handler.qualified_name, site.site_id)})
            # Note: a later suspend rebinds its cont name; treating the
            # name as the union of all its bindings is conservative.

            for state_expr, _origin in _state_exprs_in(handler):
                params = cont_params.get(state_expr.name)
                if not params:
                    continue
                for index, pname in params:
                    if index >= len(state_expr.args):
                        continue
                    incoming = _cont_sources_of_expr(
                        state_expr.args[index], handler, local)
                    pkey = (state_expr.name, pname)
                    merged = _merge(sources[pkey], incoming)
                    if merged != sources[pkey]:
                        sources[pkey] = merged
                        changed = True
        if not changed:
            break

    flow.param_sources = dict(sources)
    return flow


def _state_exprs_in(handler: HandlerIR):
    """Yield every state-constructor expression in the handler, with origin."""
    for block in handler.blocks.values():
        for op in block.ops:
            for expr in _op_exprs(op):
                for node in ast.walk_expr(expr):
                    if isinstance(node, ast.StateExpr):
                        yield node, op
        term = block.terminator
        if isinstance(term, TSuspend):
            site = handler.suspend_sites[term.site_id]
            for node in ast.walk_expr(site.target):
                if isinstance(node, ast.StateExpr):
                    yield node, term


def _op_exprs(op) -> list[ast.Expr]:
    if hasattr(op, "args"):
        return list(op.args)
    if hasattr(op, "value"):
        return [op.value]
    if hasattr(op, "cont"):
        return [op.cont]
    return []


def apply_constcont(checked,
                    handlers: dict[tuple[str, str], HandlerIR]) -> ContFlow:
    """Run both constant-continuation transformations in place."""
    flow = analyze_cont_flow(checked, handlers)

    # 1. Static allocation for empty save sets.
    for handler in handlers.values():
        for site in handler.suspend_sites:
            if not site.save_set:
                site.is_static = True
                flow.static_sites += 1

    # 2. Resume inlining where a unique suspend site reaches the resume.
    site_index = {
        (handler.qualified_name, site.site_id): site
        for handler in handlers.values()
        for site in handler.suspend_sites
    }
    for handler in handlers.values():
        for block in handler.blocks.values():
            for op in block.ops:
                if not isinstance(op, IResume):
                    continue
                if not isinstance(op.cont, ast.NameRef):
                    continue
                pkey = (handler.state_name, op.cont.name)
                reaching = flow.param_sources.get(pkey)
                if reaching is not None and len(reaching) == 1:
                    (source_key,) = reaching
                    source_site = site_index[source_key]
                    op.direct_site = source_site.site_id
                    op.direct_handler = source_key[0]
                    flow.inlined_resumes += 1
    return flow
