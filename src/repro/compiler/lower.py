"""Lowering: checked handler ASTs to control-flow graphs.

The interesting case is ``Suspend``: it terminates the current basic
block and the statements that follow it begin a new block -- the resume
fragment.  This works uniformly even when the ``Suspend`` sits inside
nested conditionals and loops ("This transformation works even if
Suspend statements occur within control structures", Section 5).
"""

from __future__ import annotations

from repro.lang import ast
from repro.lang.errors import CompileError
from repro.lang.symbols import SymbolKind
from repro.lang.typecheck import CheckedProgram
from repro.compiler.ir import (
    BasicBlock,
    HandlerIR,
    IAssign,
    ICall,
    IPrint,
    IResume,
    SuspendSite,
    TBranch,
    TGoto,
    TReturn,
    TSuspend,
)


class _Lowerer:
    """Builds the CFG for one handler."""

    def __init__(self, checked: CheckedProgram, state: ast.StateDef,
                 handler: ast.Handler):
        self.checked = checked
        self.state = state
        self.handler = handler
        self.blocks: dict[int, BasicBlock] = {}
        self.suspend_sites: list[SuspendSite] = []
        self._next_id = 0

    def new_block(self) -> BasicBlock:
        block = BasicBlock(self._next_id)
        self.blocks[self._next_id] = block
        self._next_id += 1
        return block

    def lower(self) -> HandlerIR:
        entry = self.new_block()
        last = self.lower_stmts(self.handler.body, entry)
        # Falling off the end of a handler is an implicit exit.
        last.terminator = TReturn()

        scope = self.checked.handler_scopes[
            (self.state.state_name, self.handler.message_name)]
        var_kinds = {s.name: s.kind.value for s in scope.symbols()}
        cont_vars = tuple(
            s.name for s in scope.symbols() if s.kind is SymbolKind.CONT)

        return HandlerIR(
            state_name=self.state.state_name,
            message_name=self.handler.message_name,
            params=[p.name for p in self.handler.params],
            param_types={p.name: p.type_name for p in self.handler.params},
            locals={d.name: d.type_name for d in self.handler.local_decls},
            state_params={p.name: p.type_name for p in self.state.params},
            cont_vars=cont_vars,
            var_kinds=var_kinds,
            blocks=self.blocks,
            entry=entry.block_id,
            suspend_sites=self.suspend_sites,
        )

    def lower_stmts(self, stmts: list[ast.Stmt],
                    current: BasicBlock) -> BasicBlock:
        """Lower ``stmts`` starting in ``current``; returns the block where
        control ends up (which the caller must terminate)."""
        for index, stmt in enumerate(stmts):
            if isinstance(stmt, ast.Assign):
                current.ops.append(IAssign(stmt.target, stmt.value))
            elif isinstance(stmt, ast.CallStmt):
                current.ops.append(ICall(stmt.name, list(stmt.args)))
            elif isinstance(stmt, ast.PrintStmt):
                current.ops.append(IPrint(list(stmt.args)))
            elif isinstance(stmt, ast.Resume):
                current.ops.append(IResume(stmt.cont))
            elif isinstance(stmt, ast.Return):
                current.terminator = TReturn()
                if stmts[index + 1:]:
                    raise CompileError(
                        "unreachable statements after Return",
                        stmts[index + 1].location,
                    )
                # Give the caller a fresh (unreachable) block to terminate.
                return self.new_block()
            elif isinstance(stmt, ast.If):
                current = self._lower_if(stmt, current)
            elif isinstance(stmt, ast.While):
                current = self._lower_while(stmt, current)
            elif isinstance(stmt, ast.Suspend):
                current = self._lower_suspend(stmt, current)
            else:
                raise CompileError(f"cannot lower statement {stmt!r}",
                                   stmt.location)
        return current

    def _lower_if(self, stmt: ast.If, current: BasicBlock) -> BasicBlock:
        then_block = self.new_block()
        join_block = self.new_block()
        if stmt.else_body:
            else_block = self.new_block()
            current.terminator = TBranch(stmt.cond, then_block.block_id,
                                         else_block.block_id)
            else_end = self.lower_stmts(stmt.else_body, else_block)
            else_end.terminator = TGoto(join_block.block_id)
        else:
            current.terminator = TBranch(stmt.cond, then_block.block_id,
                                         join_block.block_id)
        then_end = self.lower_stmts(stmt.then_body, then_block)
        then_end.terminator = TGoto(join_block.block_id)
        return join_block

    def _lower_while(self, stmt: ast.While, current: BasicBlock) -> BasicBlock:
        head = self.new_block()
        body = self.new_block()
        exit_block = self.new_block()
        current.terminator = TGoto(head.block_id)
        head.terminator = TBranch(stmt.cond, body.block_id,
                                  exit_block.block_id)
        body_end = self.lower_stmts(stmt.body, body)
        body_end.terminator = TGoto(head.block_id)
        return exit_block

    def _lower_suspend(self, stmt: ast.Suspend,
                       current: BasicBlock) -> BasicBlock:
        resume_block = self.new_block()
        site = SuspendSite(
            site_id=len(self.suspend_sites),
            cont_name=stmt.cont_name,
            target=stmt.target,
            resume_block=resume_block.block_id,
            location=stmt.location,
        )
        self.suspend_sites.append(site)
        current.terminator = TSuspend(site.site_id, resume_block.block_id)
        return resume_block


def lower_handler(checked: CheckedProgram, state: ast.StateDef,
                  handler: ast.Handler) -> HandlerIR:
    """Lower one checked handler to its CFG."""
    return _Lowerer(checked, state, handler).lower()


def lower_program(checked: CheckedProgram) -> dict[tuple[str, str], HandlerIR]:
    """Lower every handler in the program, keyed by (state, message)."""
    result: dict[tuple[str, str], HandlerIR] = {}
    for state in checked.program.states:
        for handler in state.handlers:
            key = (state.state_name, handler.message_name)
            result[key] = lower_handler(checked, state, handler)
    return result
