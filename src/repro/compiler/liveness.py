"""Live-variable analysis over handler CFGs.

The paper's first optimisation: "save and restore in the continuation
only values that are referenced after the Suspend" (Section 5).  For
each suspend site we compute the live-in set of its resume block; only
those frame variables are captured in the continuation record.

Without this analysis (optimisation level O0) every frame variable is
saved, exactly as in Figure 10's naive splitting.
"""

from __future__ import annotations

from repro.lang import ast
from repro.compiler.ir import (
    BasicBlock,
    HandlerIR,
    IAssign,
    ICall,
    IPrint,
    IResume,
    TBranch,
    TSuspend,
)


def _names_in(expr: ast.Expr, frame: set[str]) -> set[str]:
    """Frame variables referenced anywhere inside ``expr``."""
    return {
        node.name
        for node in ast.walk_expr(expr)
        if isinstance(node, ast.NameRef) and node.name in frame
    }


def _block_transfer(block: BasicBlock, live_out: set[str],
                    frame: set[str], handler: HandlerIR) -> set[str]:
    """Propagate liveness backward through one block."""
    live = set(live_out)

    term = block.terminator
    if isinstance(term, TBranch):
        live |= _names_in(term.cond, frame)
    elif isinstance(term, TSuspend):
        site = handler.suspend_sites[term.site_id]
        # The suspend defines the fresh continuation, then evaluates the
        # target state's arguments (which reference it).
        live.discard(site.cont_name)
        for arg in site.target.args:
            names = _names_in(arg, frame)
            names.discard(site.cont_name)
            live |= names

    for op in reversed(block.ops):
        if isinstance(op, IAssign):
            if op.target in frame:
                live.discard(op.target)
            live |= _names_in(op.value, frame)
        elif isinstance(op, ICall):
            for arg in op.args:
                live |= _names_in(arg, frame)
        elif isinstance(op, IResume):
            live |= _names_in(op.cont, frame)
        elif isinstance(op, IPrint):
            for arg in op.args:
                live |= _names_in(arg, frame)
    return live


def compute_liveness(handler: HandlerIR) -> dict[int, set[str]]:
    """Live-in sets for every block of ``handler`` (fixed-point iteration)."""
    frame = set(handler.frame_vars)
    live_in: dict[int, set[str]] = {b: set() for b in handler.blocks}

    changed = True
    while changed:
        changed = False
        for block in handler.rpo_blocks():
            live_out: set[str] = set()
            for succ in block.successors():
                live_out |= live_in[succ]
            new_live_in = _block_transfer(block, live_out, frame, handler)
            if new_live_in != live_in[block.block_id]:
                live_in[block.block_id] = new_live_in
                changed = True
    return live_in


def _rebindable(handler: HandlerIR) -> set[str]:
    """Frame variables that need not be saved because the resumed fragment
    can re-derive them from its context.

    The conventional ``id`` and ``info`` parameters always denote the
    block the continuation is parked on, so the resuming message supplies
    them afresh.  (The sender parameter and payload words are genuinely
    message-specific and must be captured.)
    """
    return set(handler.params[:2])


def apply_liveness(handler: HandlerIR) -> None:
    """Set each suspend site's ``save_set`` to the live frame variables."""
    live_in = compute_liveness(handler)
    rebindable = _rebindable(handler)
    for site in handler.suspend_sites:
        live = live_in[site.resume_block] - rebindable
        site.save_set = tuple(
            name for name in handler.frame_vars if name in live)


def apply_save_all(handler: HandlerIR) -> None:
    """-O0 behaviour: capture the whole frame at every suspend (Figure 10)."""
    for site in handler.suspend_sites:
        site.save_set = tuple(
            name for name in handler.frame_vars if name != site.cont_name)
