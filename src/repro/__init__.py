"""Teapot: language support for writing memory coherence protocols.

A from-scratch reproduction of the PLDI 1996 paper by Chandra, Richards,
and Larus.  The package contains:

- ``repro.api``       -- the typed programmatic facade (compile, check,
  simulate) -- start here
- ``repro.lang``      -- the Teapot DSL front end (lexer, parser, checker)
- ``repro.compiler``  -- handler splitting, liveness, and the constant
  continuation optimisation
- ``repro.backends``  -- Python, C, and Mur-phi code generators
- ``repro.runtime``   -- executable semantics for compiled protocols
- ``repro.tempest``   -- a Tempest-interface multiprocessor simulator
- ``repro.protocols`` -- Stache, LCM, and their variants, in Teapot
- ``repro.verify``    -- explicit-state model checkers (serial and
  hash-partitioned parallel)
- ``repro.workloads`` -- the paper's application workloads, synthesised
- ``repro.analysis``  -- state graphs, extension diffing, LoC and
  value-consistency analyses

The supported entry points are the :mod:`repro.api` facade, re-exported
here.  The historical top-level re-exports of machinery classes
(``Machine``, ``ModelChecker``, ``compile_source``, ...) still resolve
but emit :class:`DeprecationWarning`; import them from their home
modules or, better, use the facade (migration map in DESIGN.md).
"""

from repro.api import (
    CheckOptions,
    CompileOptions,
    SimOptions,
    SimulateResult,
    check,
    compile_protocol,
    simulate,
)
from repro.lang.errors import CheckError, LexError, ParseError, TeapotError
from repro.runtime.protocol import CompiledProtocol, Flavor, OptLevel
from repro.verify.checker import CheckResult

__all__ = [
    # The facade.
    "compile_protocol",
    "check",
    "simulate",
    "CompileOptions",
    "CheckOptions",
    "SimOptions",
    "SimulateResult",
    "CheckResult",
    # Stable core types and errors.
    "CompiledProtocol",
    "OptLevel",
    "Flavor",
    "TeapotError",
    "LexError",
    "ParseError",
    "CheckError",
]

__version__ = "1.1.0"

# Deprecated top-level names, resolved lazily so importing them warns
# exactly once per site: name -> (home module, attribute, replacement).
_DEPRECATED = {
    "parse_program": ("repro.lang.parser", "parse_program",
                      "repro.lang.parser.parse_program"),
    "check_program": ("repro.lang.typecheck", "check_program",
                      "repro.lang.typecheck.check_program"),
    "compile_source": ("repro.compiler.pipeline", "compile_source",
                       "repro.api.compile_protocol"),
    "Machine": ("repro.tempest.machine", "Machine",
                "repro.api.simulate"),
    "MachineConfig": ("repro.tempest.machine", "MachineConfig",
                      "repro.api.SimOptions"),
    "SimResult": ("repro.tempest.machine", "SimResult",
                  "repro.api.SimulateResult"),
    "ModelChecker": ("repro.verify.checker", "ModelChecker",
                     "repro.api.check"),
    "PROTOCOLS": ("repro.protocols", "PROTOCOLS",
                  "repro.protocols.PROTOCOLS"),
    "load_protocol_source": ("repro.protocols", "load_protocol_source",
                             "repro.protocols.load_protocol_source"),
    "compile_named_protocol": ("repro.protocols", "compile_named_protocol",
                               "repro.api.compile_protocol"),
}


def __getattr__(name: str):
    if name in _DEPRECATED:
        import importlib
        import warnings

        module_name, attribute, replacement = _DEPRECATED[name]
        warnings.warn(
            f"importing {name!r} from the top-level repro package is "
            f"deprecated; use {replacement} instead",
            DeprecationWarning, stacklevel=2)
        return getattr(importlib.import_module(module_name), attribute)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
