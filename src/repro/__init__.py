"""Teapot: language support for writing memory coherence protocols.

A from-scratch reproduction of the PLDI 1996 paper by Chandra, Richards,
and Larus.  The package contains:

- ``repro.lang``      -- the Teapot DSL front end (lexer, parser, checker)
- ``repro.compiler``  -- handler splitting, liveness, and the constant
  continuation optimisation
- ``repro.backends``  -- Python, C, and Mur-phi code generators
- ``repro.runtime``   -- executable semantics for compiled protocols
- ``repro.tempest``   -- a Tempest-interface multiprocessor simulator
- ``repro.protocols`` -- Stache, LCM, and their variants, in Teapot
- ``repro.verify``    -- an explicit-state model checker
- ``repro.workloads`` -- the paper's application workloads, synthesised
- ``repro.analysis``  -- state graphs, extension diffing, LoC and
  value-consistency analyses

The high-level entry points are re-exported here.
"""

from repro.lang.parser import parse_program
from repro.lang.typecheck import check_program
from repro.lang.errors import TeapotError, LexError, ParseError, CheckError
from repro.compiler.pipeline import compile_protocol, compile_source
from repro.runtime.protocol import CompiledProtocol, Flavor, OptLevel
from repro.tempest.machine import Machine, MachineConfig, SimResult
from repro.verify.checker import CheckResult, ModelChecker
from repro.protocols import (
    PROTOCOLS,
    compile_named_protocol,
    load_protocol_source,
)

__all__ = [
    "parse_program",
    "check_program",
    "TeapotError",
    "LexError",
    "ParseError",
    "CheckError",
    "compile_protocol",
    "compile_source",
    "OptLevel",
    "Flavor",
    "CompiledProtocol",
    "Machine",
    "MachineConfig",
    "SimResult",
    "ModelChecker",
    "CheckResult",
    "PROTOCOLS",
    "load_protocol_source",
    "compile_named_protocol",
]

__version__ = "1.0.0"
