"""Trace sinks: where structured events go.

Every event is a flat dict with at least an ``ev`` kind and a ``v``
schema-version field.  The schema (one row per kind; optional fields in
parentheses; ``v`` elided from every row):

==============  ==============================================================
kind            fields
==============  ==============================================================
handler_entry   t, node, block, state, msg, src
handler_exit    t, node, block, state, msg, start, cycles
suspend         t, node, block, handler, site, cont, static, saved, to
resume          t, node, block, handler, site, cont, direct
send            t, seq, tag, block, src, dst, data, arrival
deliver         t, seq, tag, block, src, dst, reorder
fault_begin     t, node, block, tag
fault_end       t, node, block, start, wait, sync
state           t, node, block, from, to, (args)
queue           t, node, block, tag, depth, (state, msg)
replay          t, node, block, tag, src
nack            t, node, block, tag, dst, (state, msg)
error           t, node, text, (state, msg)
net.drop        t, tag, block, src, dst
net.dup         t, seq, tag, block, src, dst, arrival
retry           t, node, block, tag, dst, attempt, (state)
timeout         t, node, block, attempt, waited
checker_step    step, label
violation       kind, message, (state), (faults)
==============  ==============================================================

``t`` is simulated cycles (checker events have no clock and omit it).
``cont`` is the continuation identity ``Handler.Message#site``; the same
string appears at the suspend that parks it and the resume that consumes
it.  ``reorder`` marks a delivery that overtook an earlier send on the
same src->dst channel.  ``replay`` marks a deferred message leaving the
block's queue for redelivery; the matching ``queue`` event is the
earlier one on the same (node, block) with the same tag.  ``sync`` on a
fault_end marks a fault satisfied inside its own protocol action (its
wait is protocol time, not counted in fault_wait_cycles).

Each event's ``v`` is the schema version in which its *kind* last
changed, so analyses can reject traces they do not understand while a
trace containing only pre-fault kinds stays byte-identical to one
written by an older build.  Readers accept the closed range
[``MIN_SCHEMA_VERSION``, ``SCHEMA_VERSION``].  History: version 1
events (PR 1) had no ``v`` field; version 2 added ``v``, ``replay``,
and ``fault_end.sync``; version 3 added the fault-injection kinds
``net.drop``/``net.dup``/``retry``/``timeout`` (existing kinds are
unchanged and keep stamping ``v=2``).
"""

from __future__ import annotations

import json
from typing import IO, Optional, Union

SCHEMA_VERSION = 3       # current writer/reader version
MIN_SCHEMA_VERSION = 2   # oldest version this build still reads
V_CORE = 2               # stamped on kinds unchanged since version 2
V_FAULTS = 3             # stamped on the fault kinds new in version 3


class TraceSink:
    """Consumer of structured trace events.

    Subclasses override :meth:`emit`; :meth:`close` flushes any
    buffered output and must be idempotent.
    """

    def emit(self, event: dict) -> None:
        raise NotImplementedError

    def close(self) -> None:
        """Finish the trace (default: nothing to do)."""

    def __enter__(self) -> "TraceSink":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class NullSink(TraceSink):
    """Discards everything; the default when tracing is off.

    Falsy, so hosts can guard emit sites with ``if sink:``.
    """

    def emit(self, event: dict) -> None:
        pass

    def __bool__(self) -> bool:
        return False


NULL_SINK = NullSink()


def _open(path_or_stream: Union[str, IO]) -> tuple[IO, bool]:
    if isinstance(path_or_stream, str):
        return open(path_or_stream, "w"), True
    return path_or_stream, False


class JsonlSink(TraceSink):
    """One JSON object per line, in emit order.

    The canonical machine-readable format: stream it through ``jq``,
    diff it against a golden file, or replay it into another tool.
    """

    def __init__(self, path_or_stream: Union[str, IO]):
        self._stream, self._owns = _open(path_or_stream)
        self.events_written = 0

    def emit(self, event: dict) -> None:
        self._stream.write(json.dumps(event, separators=(",", ":")))
        self._stream.write("\n")
        self.events_written += 1

    def close(self) -> None:
        if self._stream is None:
            return
        if self._owns:
            self._stream.close()
        else:
            self._stream.flush()
        self._stream = None


# Chrome trace_event rows: each simulated node gets two timeline rows,
# one for protocol handler activity and one for the application thread's
# fault waits.  tids interleave so the rows sort adjacently per node.
def _proto_tid(node: int) -> int:
    return node * 2


def _app_tid(node: int) -> int:
    return node * 2 + 1


class ChromeTraceSink(TraceSink):
    """Emits Chrome ``trace_event`` JSON (the array form).

    Open the output file directly in ``chrome://tracing`` or
    https://ui.perfetto.dev: handler executions appear as complete
    ("X") slices on one row per node, fault waits as slices on a
    per-node application row, and sends/deliveries/suspends/resumes as
    instant events.  Timestamps are simulated cycles interpreted as
    microseconds.
    """

    def __init__(self, path_or_stream: Union[str, IO]):
        self._stream, self._owns = _open(path_or_stream)
        self._first = True
        self._named_tids: set[int] = set()
        self._stream.write("[\n")

    # -- helpers -----------------------------------------------------------

    def _row(self, row: dict) -> None:
        if not self._first:
            self._stream.write(",\n")
        self._first = False
        self._stream.write(json.dumps(row, separators=(",", ":")))

    def _name_tid(self, tid: int, name: str) -> None:
        if tid in self._named_tids:
            return
        self._named_tids.add(tid)
        self._row({"name": "thread_name", "ph": "M", "pid": 0, "tid": tid,
                   "args": {"name": name}})

    def _slice(self, name: str, tid: int, start: int, end: int,
               args: dict) -> None:
        self._row({"name": name, "ph": "X", "pid": 0, "tid": tid,
                   "ts": start, "dur": max(end - start, 0), "args": args})

    def _instant(self, name: str, tid: int, ts: int, args: dict) -> None:
        self._row({"name": name, "ph": "i", "s": "t", "pid": 0, "tid": tid,
                   "ts": ts, "args": args})

    # -- TraceSink ---------------------------------------------------------

    def emit(self, event: dict) -> None:
        kind = event.get("ev")
        node = event.get("node")
        if node is not None:
            self._name_tid(_proto_tid(node), f"node {node} protocol")
        if kind == "handler_exit":
            self._slice(
                f"{event['state']}.{event['msg']}", _proto_tid(node),
                event["start"], event["t"],
                {"block": event["block"], "cycles": event["cycles"]})
        elif kind == "fault_end":
            self._name_tid(_app_tid(node), f"node {node} app")
            self._slice(
                f"fault wait b{event['block']}", _app_tid(node),
                event["start"], event["t"], {"wait": event["wait"]})
        elif kind == "send":
            self._name_tid(_proto_tid(event["src"]),
                           f"node {event['src']} protocol")
            self._instant(
                f"send {event['tag']}", _proto_tid(event["src"]),
                event["t"],
                {"seq": event["seq"], "dst": event["dst"],
                 "block": event["block"]})
        elif kind == "deliver":
            self._name_tid(_proto_tid(event["dst"]),
                           f"node {event['dst']} protocol")
            self._instant(
                f"deliver {event['tag']}", _proto_tid(event["dst"]),
                event["t"],
                {"seq": event["seq"], "src": event["src"],
                 "reorder": event["reorder"]})
        elif kind in ("net.drop", "net.dup"):
            src = event["src"]
            self._name_tid(_proto_tid(src), f"node {src} protocol")
            args = {k: v for k, v in event.items()
                    if k not in ("ev", "t", "v", "src")}
            self._instant(f"{kind} {event['tag']}", _proto_tid(src),
                          event["t"], args)
        elif kind in ("suspend", "resume", "state", "queue", "replay",
                      "nack", "error", "fault_begin", "retry", "timeout"):
            args = {k: v for k, v in event.items()
                    if k not in ("ev", "t", "v")}
            self._instant(kind, _proto_tid(node or 0),
                          event.get("t", 0), args)
        # handler_entry and checker events carry no extra timeline value.

    def close(self) -> None:
        if self._stream is None:
            return
        self._stream.write("\n]\n")
        if self._owns:
            self._stream.close()
        else:
            self._stream.flush()
        self._stream = None


def open_sink(path: Optional[str], fmt: str = "jsonl") -> TraceSink:
    """Build the sink a ``--trace``/``--trace-format`` pair asks for."""
    if path is None:
        return NULL_SINK
    if fmt == "jsonl":
        return JsonlSink(path)
    if fmt == "chrome":
        return ChromeTraceSink(path)
    raise ValueError(f"unknown trace format {fmt!r} (jsonl|chrome)")
