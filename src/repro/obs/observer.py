"""The Observer facade: the one object instrumented code talks to.

Hosts (the simulator machine, node contexts, the handler interpreter)
hold either ``None`` -- observability off, the default -- or an
:class:`Observer` bundling a trace sink and an optional metrics
registry.  Every instrumentation site is a single ``obs is None``
test away from the uninstrumented path, and inside the Observer each
channel is skipped independently (``NullSink`` is falsy), so tracing
and metrics can be enabled separately.
"""

from __future__ import annotations

from typing import Optional

from repro.obs.metrics import MetricsRegistry
from repro.obs.sinks import NULL_SINK, V_CORE, V_FAULTS, TraceSink


class Observer:
    """Routes structured events to a sink and aggregates to a registry."""

    def __init__(self, sink: Optional[TraceSink] = None,
                 metrics: Optional[MetricsRegistry] = None):
        self.sink = NULL_SINK if sink is None else sink
        self.metrics = metrics
        self._send_seq = 0
        # The (state, message) of the handler currently executing; used
        # to attribute queue/nack/error dispositions.  Protocol actions
        # are atomic, so one slot suffices even with many nodes.
        self._current: Optional[tuple[str, str]] = None

    @property
    def active(self) -> bool:
        """False when every channel is off (null sink, no metrics).

        Hosts may drop an inactive Observer entirely and run the
        uninstrumented ``obs is None`` fast path instead.
        """
        return bool(self.sink) or self.metrics is not None

    def close(self) -> None:
        self.sink.close()

    # -- handler lifecycle -------------------------------------------------

    def handler_entry(self, node: int, block: int, state: str, msg: str,
                      src: int, t: int) -> None:
        self._current = (state, msg)
        if self.sink:
            self.sink.emit({"ev": "handler_entry", "v": V_CORE,
                            "t": t, "node": node, "block": block, "state": state, "msg": msg,
                            "src": src})

    def handler_exit(self, node: int, block: int, state: str, msg: str,
                     start: int, end: int) -> None:
        self._current = None
        if self.metrics is not None:
            self.metrics.record_dispatch(state, msg, end - start)
        if self.sink:
            self.sink.emit({"ev": "handler_exit", "v": V_CORE,
                            "t": end, "node": node, "block": block, "state": state, "msg": msg,
                            "start": start, "cycles": end - start})

    # -- continuations -----------------------------------------------------

    def suspend(self, node: int, block: int, handler: str, site: int,
                static: bool, saved: tuple, to_state: str, t: int) -> None:
        state, _, msg = handler.partition(".")
        if self.metrics is not None:
            self.metrics.record_suspend(state, msg, static)
        if self.sink:
            self.sink.emit({"ev": "suspend", "v": V_CORE, "t": t,
                            "node": node,
                            "block": block, "handler": handler,
                            "site": site, "cont": f"{handler}#{site}",
                            "static": static, "saved": list(saved),
                            "to": to_state})

    def resume(self, node: int, block: int, handler: str, site: int,
               direct: bool, t: int) -> None:
        state, _, msg = handler.partition(".")
        if self.metrics is not None:
            self.metrics.record_resume(state, msg)
        if self.sink:
            self.sink.emit({"ev": "resume", "v": V_CORE, "t": t,
                            "node": node,
                            "block": block, "handler": handler,
                            "site": site, "cont": f"{handler}#{site}",
                            "direct": direct})

    # -- messages ----------------------------------------------------------

    def next_send_seq(self) -> int:
        self._send_seq += 1
        return self._send_seq

    def send(self, seq: int, tag: str, block: int, src: int, dst: int,
             with_data: bool, t: int, arrival: int) -> None:
        if self.sink:
            self.sink.emit({"ev": "send", "v": V_CORE, "t": t,
                            "seq": seq, "tag": tag,
                            "block": block, "src": src, "dst": dst,
                            "data": with_data, "arrival": arrival})

    def deliver(self, seq: int, tag: str, block: int, src: int, dst: int,
                t: int, reorder: bool) -> None:
        if self.sink:
            self.sink.emit({"ev": "deliver", "v": V_CORE, "t": t,
                            "seq": seq,
                            "tag": tag, "block": block, "src": src,
                            "dst": dst, "reorder": reorder})

    # -- fault injection and recovery (schema v3 kinds) --------------------

    def net_drop(self, tag: str, block: int, src: int, dst: int,
                 t: int) -> None:
        """The fault plan dropped a message at send time (no matching
        send/deliver pair will appear)."""
        if self.sink:
            self.sink.emit({"ev": "net.drop", "v": V_FAULTS, "t": t,
                            "tag": tag, "block": block, "src": src,
                            "dst": dst})

    def net_dup(self, seq: int, tag: str, block: int, src: int, dst: int,
                t: int, arrival: int) -> None:
        """An extra copy scheduled by the fault plan; its deliver event
        carries this seq, which no send event carries."""
        if self.sink:
            self.sink.emit({"ev": "net.dup", "v": V_FAULTS, "t": t,
                            "seq": seq, "tag": tag, "block": block,
                            "src": src, "dst": dst, "arrival": arrival})

    def retry(self, node: int, block: int, tag: str, dst: int,
              attempt: int, t: int, state: Optional[str] = None) -> None:
        """The watchdog re-injected one captured request message."""
        if self.metrics is not None and state is not None:
            self.metrics.record_retry(state, tag)
        if self.sink:
            event = {"ev": "retry", "v": V_FAULTS, "t": t, "node": node,
                     "block": block, "tag": tag, "dst": dst,
                     "attempt": attempt}
            if state is not None:
                event["state"] = state
            self.sink.emit(event)

    def timeout(self, node: int, block: int, attempt: int, waited: int,
                t: int) -> None:
        """A blocked access fault's watchdog timer expired."""
        if self.sink:
            self.sink.emit({"ev": "timeout", "v": V_FAULTS, "t": t,
                            "node": node, "block": block,
                            "attempt": attempt, "waited": waited})

    # -- faults ------------------------------------------------------------

    def fault_begin(self, node: int, block: int, tag: str, t: int) -> None:
        if self.sink:
            self.sink.emit({"ev": "fault_begin", "v": V_CORE,
                            "t": t, "node": node,
                            "block": block, "tag": tag})

    def fault_end(self, node: int, block: int, start: int, t: int,
                  sync: bool = False) -> None:
        if self.sink:
            self.sink.emit({"ev": "fault_end", "v": V_CORE,
                            "t": t, "node": node,
                            "block": block, "start": start,
                            "wait": t - start, "sync": sync})

    # -- state and dispositions --------------------------------------------

    def state_change(self, node: int, block: int, old: str, new: str,
                     args: tuple, t: int) -> None:
        if self.sink:
            event = {"ev": "state", "v": V_CORE, "t": t,
                     "node": node, "block": block,
                     "from": old, "to": new}
            if args:
                event["args"] = [repr(a) for a in args]
            self.sink.emit(event)

    def queue_defer(self, node: int, block: int, tag: str, depth: int,
                    t: int) -> None:
        current = self._current
        if self.metrics is not None and current is not None:
            self.metrics.record_queue(current[0], current[1], depth)
        if self.sink:
            event = {"ev": "queue", "v": V_CORE, "t": t,
                     "node": node, "block": block,
                     "tag": tag, "depth": depth}
            self._attribute(event)
            self.sink.emit(event)

    def queue_replay(self, node: int, block: int, tag: str, src: int,
                     t: int) -> None:
        """A deferred message leaves the block's queue for redelivery.

        Emitted between the handler whose state change re-enabled the
        queue and the handler the replayed message dispatches to; the
        causal analysis pairs it with the earlier ``queue`` event so a
        chain survives the defer/redeliver hop.
        """
        if self.sink:
            self.sink.emit({"ev": "replay", "v": V_CORE, "t": t,
                            "node": node, "block": block,
                            "tag": tag, "src": src})

    def nack(self, node: int, block: int, tag: str, dst: int,
             t: int) -> None:
        if self.sink:
            event = {"ev": "nack", "v": V_CORE, "t": t,
                     "node": node, "block": block,
                     "tag": tag, "dst": dst}
            self._attribute(event)
            self.sink.emit(event)

    def error(self, node: int, text: str, t: int) -> None:
        if self.sink:
            event = {"ev": "error", "v": V_CORE, "t": t,
                     "node": node, "text": text}
            self._attribute(event)
            self.sink.emit(event)

    def _attribute(self, event: dict) -> None:
        if self._current is not None:
            event["state"], event["msg"] = self._current
