"""Observability: structured tracing and metrics for runs and checks.

The paper's evaluation is built on *seeing* protocol behaviour --
Tables 1-2 count continuation/queue allocations and fault-wait time,
Figure 11 reconstructs a message-reordering interleaving, and Section 7
prints counterexample traces.  This package provides that visibility as
a first-class, zero-dependency subsystem:

- :mod:`repro.obs.sinks` -- the :class:`TraceSink` interface with a
  near-zero-overhead :class:`NullSink` default, a :class:`JsonlSink`
  (one structured event per line), and a :class:`ChromeTraceSink` whose
  output loads directly in ``chrome://tracing`` / Perfetto;
- :mod:`repro.obs.metrics` -- a :class:`MetricsRegistry` of per-handler
  counters and cycle histograms keyed by ``(state, message)``;
- :mod:`repro.obs.observer` -- the :class:`Observer` facade the
  simulator, runtime, and checker call into;
- :mod:`repro.obs.analyze` -- the trace-analysis engine behind
  ``teapot analyze``: happens-before vector clocks, causal chains,
  critical-path fault attribution, handler coverage, and trace diffs;
- :mod:`repro.obs.profile` -- the checker-side exploration profiler
  (``verify --profile-out`` / ``analyze check-profile``): per-phase
  hot-loop attribution, dispatch cost tables, states/s timelines, and
  parallel wave accounting.

Nothing here is imported on the hot path unless tracing is enabled: the
simulator and interpreter guard every emit site with a single
``obs is None`` test, so default runs are cycle- and allocation-
identical to a build without this package.
"""

from repro.obs.metrics import MetricsRegistry, format_metrics
from repro.obs.observer import Observer
from repro.obs.profile import (
    CheckProfile,
    CheckProfiler,
    diff_profiles,
    format_profile,
    load_profile,
)
from repro.obs.sinks import (
    MIN_SCHEMA_VERSION,
    SCHEMA_VERSION,
    ChromeTraceSink,
    JsonlSink,
    NullSink,
    TraceSink,
    open_sink,
)

__all__ = [
    "CheckProfile",
    "CheckProfiler",
    "ChromeTraceSink",
    "JsonlSink",
    "MetricsRegistry",
    "MIN_SCHEMA_VERSION",
    "NullSink",
    "Observer",
    "SCHEMA_VERSION",
    "TraceSink",
    "diff_profiles",
    "format_metrics",
    "format_profile",
    "load_profile",
    "open_sink",
]
