"""Per-handler metrics: dispatch counts, cycle histograms, allocations.

A :class:`MetricsRegistry` aggregates by ``(state, message)`` -- the
handler granularity the paper reasons at -- and answers "which handler
burned the cycles?" without a trace file.  Machine-level aggregates
(Table 1/2's columns) delegate to the same :class:`RuntimeCounters`
the statistics module always kept, so enabling metrics changes no
reported number.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Optional

from repro.runtime.context import RuntimeCounters

# Cycle histograms use power-of-two buckets; bucket i counts dispatches
# that took [2**(i-1), 2**i) cycles (bucket 0: zero cycles).
N_BUCKETS = 24


@dataclass
class HandlerMetrics:
    """Aggregates for one (state, message) handler."""

    dispatches: int = 0
    cycles: int = 0
    min_cycles: Optional[int] = None
    max_cycles: int = 0
    hist: list = field(default_factory=lambda: [0] * N_BUCKETS)
    suspends: int = 0
    cont_allocs: int = 0
    static_conts: int = 0
    resumes: int = 0
    queue_allocs: int = 0
    queue_hwm: int = 0
    retries: int = 0

    def record_dispatch(self, cycles: int) -> None:
        self.dispatches += 1
        self.cycles += cycles
        if self.min_cycles is None or cycles < self.min_cycles:
            self.min_cycles = cycles
        if cycles > self.max_cycles:
            self.max_cycles = cycles
        bucket = min(cycles.bit_length(), N_BUCKETS - 1)
        self.hist[bucket] += 1

    @property
    def mean_cycles(self) -> float:
        return self.cycles / self.dispatches if self.dispatches else 0.0


class MetricsRegistry:
    """Counters and cycle histograms keyed by (protocol, state, handler)."""

    def __init__(self, protocol: str = ""):
        self.protocol = protocol
        self.handlers: dict[tuple[str, str], HandlerMetrics] = {}
        self.totals: dict[str, int] = {}
        self.gauges: dict[str, float] = {}

    def handler(self, state: str, msg: str) -> HandlerMetrics:
        key = (state, msg)
        metrics = self.handlers.get(key)
        if metrics is None:
            metrics = self.handlers[key] = HandlerMetrics()
        return metrics

    # -- recording ---------------------------------------------------------

    def record_dispatch(self, state: str, msg: str, cycles: int) -> None:
        self.handler(state, msg).record_dispatch(cycles)

    def record_suspend(self, state: str, msg: str, static: bool) -> None:
        metrics = self.handler(state, msg)
        metrics.suspends += 1
        if static:
            metrics.static_conts += 1
        else:
            metrics.cont_allocs += 1

    def record_resume(self, state: str, msg: str) -> None:
        self.handler(state, msg).resumes += 1

    def record_queue(self, state: str, msg: str, depth: int) -> None:
        metrics = self.handler(state, msg)
        metrics.queue_allocs += 1
        if depth > metrics.queue_hwm:
            metrics.queue_hwm = depth

    def record_retry(self, state: str, msg: str) -> None:
        """A watchdog re-sent a request ``msg`` while the faulted block
        sat in protocol state ``state``; attributed to that arm so the
        report shows where retries pile up."""
        self.handler(state, msg).retries += 1

    def gauge(self, name: str, value: float) -> None:
        self.gauges[name] = value

    def ingest_counters(self, counters: RuntimeCounters) -> None:
        """Adopt the machine-level totals Tables 1 and 2 are built from.

        Pure delegation: the values are read from the same
        :class:`RuntimeCounters` the simulator always maintained, so
        they match ``MachineStats.summary()`` exactly.
        """
        for name in counters.__dataclass_fields__:
            self.totals[name] = getattr(counters, name)

    # -- export ------------------------------------------------------------

    def to_json(self) -> dict:
        return {
            "protocol": self.protocol,
            "handlers": [
                {
                    "state": state,
                    "msg": msg,
                    "dispatches": m.dispatches,
                    "cycles": m.cycles,
                    "min_cycles": m.min_cycles,
                    "mean_cycles": round(m.mean_cycles, 2),
                    "max_cycles": m.max_cycles,
                    "hist": m.hist,
                    "suspends": m.suspends,
                    "cont_allocs": m.cont_allocs,
                    "static_conts": m.static_conts,
                    "resumes": m.resumes,
                    "queue_allocs": m.queue_allocs,
                    "queue_hwm": m.queue_hwm,
                    "retries": m.retries,
                }
                for (state, msg), m in sorted(
                    self.handlers.items(),
                    key=lambda item: -item[1].cycles)
            ],
            "totals": dict(self.totals),
            "gauges": dict(self.gauges),
        }

    def save(self, path: str) -> None:
        with open(path, "w") as handle:
            json.dump(self.to_json(), handle, indent=2, sort_keys=False)
            handle.write("\n")

    def report(self) -> str:
        return format_metrics(self.to_json())


def format_metrics(data: dict) -> str:
    """Pretty-print an exported metrics dict (``teapot report``)."""
    lines = []
    protocol = data.get("protocol") or "<unknown>"
    lines.append(f"protocol: {protocol}")
    handlers = data.get("handlers", [])
    if handlers:
        show_retries = any(row.get("retries") for row in handlers)
        retry_head = f" {'retry':>6s}" if show_retries else ""
        lines.append(
            f"{'handler':34s} {'calls':>7s} {'cycles':>10s} {'mean':>8s} "
            f"{'max':>7s} {'susp':>5s} {'conts':>7s} {'queue':>7s}"
            + retry_head)
        for row in handlers:
            name = f"{row['state']}.{row['msg']}"
            conts = f"{row['cont_allocs']}/{row['static_conts']}"
            queue = f"{row['queue_allocs']}/{row['queue_hwm']}"
            retry_cell = (f" {row.get('retries', 0):>6d}"
                          if show_retries else "")
            lines.append(
                f"{name:34s} {row['dispatches']:>7d} {row['cycles']:>10d} "
                f"{row['mean_cycles']:>8.1f} {row['max_cycles']:>7d} "
                f"{row['suspends']:>5d} {conts:>7s} {queue:>7s}"
                + retry_cell)
        lines.append("(conts = heap/static continuation records; "
                     "queue = allocs/high-water mark)")
    totals = data.get("totals", {})
    if totals:
        shown = [
            "handler_dispatches", "messages_sent", "data_messages_sent",
            "cont_allocs", "static_cont_uses", "queue_allocs",
            "suspends", "resumes", "direct_resumes", "nacks",
        ]
        for name in ("timeouts", "retries", "dups_absorbed"):
            if totals.get(name):
                shown.append(name)
        parts = [f"{name}={totals[name]}" for name in shown
                 if name in totals]
        lines.append("totals:  " + "  ".join(parts))
    gauges = data.get("gauges", {})
    if gauges:
        parts = [f"{name}={value}" for name, value in sorted(gauges.items())]
        lines.append("gauges:  " + "  ".join(parts))
    return "\n".join(lines)


def load_metrics(path: str) -> dict:
    with open(path) as handle:
        return json.load(handle)
