"""Checker-side profiling: where the exploration hot loop spends time.

The ROADMAP's biggest open item is making exploration 10-50x faster,
but an aggregate states/s number cannot say *what* to optimise.  This
module is the measurement layer every checker-performance change is
judged against, the same way :mod:`repro.obs` is for the simulator:

- :class:`CheckProfiler` -- the armed recorder the checkers thread
  through their hot loops.  It accumulates (a) a states/s + frontier
  timeline sampled per BFS depth (serial) or per wave (parallel),
  (b) per-phase wall-time attribution -- successor generation,
  invariant evaluation, fingerprint/encode, visited-set bookkeeping,
  checkpoint I/O -- (c) per-(state, message) dispatch cost and
  successor out-degree histograms, (d) parallel wave accounting
  (per-worker busy/barrier-wait, cross-shard traffic, queue imbalance),
  and (e) visited-set memory estimates.
- :class:`CheckProfile` -- the schema-versioned JSON artifact
  (``teapot verify --profile-out``), rendered by ``teapot analyze
  check-profile`` and diffable with ``teapot analyze diff``.

The profiler is strictly an observer.  When it is absent (the default,
``profiler=None``) the checkers run the exact code they always ran:
verdict, state count, transitions, depth, ``handler_fires``, every
fingerprint, and checkpoint content are byte-identical --
``tests/test_profile.py`` pins this with golden and property tests.
When armed it only reads clocks and counts; the exploration order and
all results are still identical, only host wall time changes
(``tools/bench_check_profile.py`` records the overhead).

Phase semantics differ by engine, on purpose:

- **serial** -- the phase times partition ``run()`` wall time; the
  unattributed remainder is reported as ``other``.
- **parallel** -- the compute phases are summed *across workers* (they
  partition total worker-busy time, not wall time), and the wall-clock
  story lives in the ``parallel`` section: per-worker busy and
  barrier-wait sum to the total wave time, and master routing +
  checkpoint I/O account for the rest of the wall.

Dispatch cost is a sub-attribution of the ``successors`` phase (every
handler runs while a successor is being generated), so the dispatch
table and the phase table answer different questions and do not sum
together.
"""

from __future__ import annotations

import json
import sys
import time
from typing import Optional

PROFILE_KIND = "teapot-check-profile"
PROFILE_VERSION = 1

# The hot-loop phases every profile reports (missing ones render as 0).
PHASES = ("successors", "invariants", "fingerprint", "visited",
          "checkpoint_io", "other")

_perf = time.perf_counter


def visited_container_bytes(visited, parents) -> int:
    """The checkers' visited-set memory estimate: container overhead of
    the visited set plus the parent-pointer table.  One definition,
    three consumers: the profiler's ``visited_bytes`` stat, the serial
    checker's ``BudgetOptions.max_visited_bytes`` cap, and the parallel
    workers' per-shard byte reports the master sums for the same cap."""
    return sys.getsizeof(visited) + sys.getsizeof(parents)


# Imported below the helper on purpose: repro.verify.checker imports
# visited_container_bytes from this module, and these imports re-enter
# repro.verify -- the helper must already be bound when they do.
from repro.obs.analyze.trace import TraceError  # noqa: E402
from repro.verify.fingerprint import (  # noqa: E402
    FINGERPRINT_BITS, expected_collisions)


class CheckProfiler:
    """Armed recorder for one exploration run.

    The checkers call the ``add_*``/``sample`` methods only when a
    profiler was passed; a fresh instance should be used per run (the
    counters are cumulative).
    """

    def __init__(self, sample_every: int = 2000):
        # A timeline sample is recorded whenever the BFS depth grows
        # (one per layer/wave) and additionally every ``sample_every``
        # newly visited states inside large layers.
        self.sample_every = max(1, sample_every)
        self.phases: dict[str, float] = {}
        self.dispatch: dict[str, list] = {}   # arm -> [count, seconds]
        self.out_degree: dict[int, int] = {}  # successors -> state count
        self.timeline: list[dict] = []
        self.visited_stats: dict = {}
        # Parallel-only accounting, populated by the master loop.
        self.waves: list[dict] = []
        self.cross_shard_entries = 0
        self.cross_shard_bytes = 0
        self.worker_totals: dict[int, dict] = {}
        self.pruned = 0
        self._t0: Optional[float] = None

    # -- recording (checker-facing) -----------------------------------------

    def begin(self) -> None:
        self._t0 = _perf()

    def add_phase(self, name: str, seconds: float) -> None:
        self.phases[name] = self.phases.get(name, 0.0) + seconds

    def add_dispatch(self, key: Optional[str], seconds: float) -> None:
        if key is None:
            return
        entry = self.dispatch.get(key)
        if entry is None:
            self.dispatch[key] = [1, seconds]
        else:
            entry[0] += 1
            entry[1] += seconds

    def add_out_degree(self, degree: int) -> None:
        self.out_degree[degree] = self.out_degree.get(degree, 0) + 1

    def add_pruned(self, count: int) -> None:
        """Transitions skipped by partial-order reduction."""
        self.pruned += count

    def timed_successors(self, generator):
        """Wrap a ``_successors`` generator so the time spent *inside*
        it (handler dispatch included) lands in the ``successors``
        phase while the caller's per-successor bookkeeping does not."""
        add = self.add_phase
        while True:
            t0 = _perf()
            try:
                item = next(generator)
            except StopIteration:
                add("successors", _perf() - t0)
                return
            add("successors", _perf() - t0)
            yield item

    def sample(self, states: int, frontier: int, depth: int,
               transitions: int, pruned: Optional[int] = None) -> None:
        t = (_perf() - self._t0) if self._t0 is not None else 0.0
        point = {
            "t": round(t, 6),
            "states": states,
            "frontier": frontier,
            "depth": depth,
            "transitions": transitions,
            "states_per_s": round(states / t, 1) if t > 0 else 0.0,
        }
        # Reduction timeline (POR runs only): omitted entirely for
        # unreduced runs so existing profile artifacts are unchanged.
        if pruned is not None:
            point["pruned"] = pruned
        self.timeline.append(point)

    def set_visited(self, entries: int, mode: str,
                    container_bytes: int = 0) -> None:
        """Visited-set memory accounting (collision stats for
        fingerprint tables are finalized in :meth:`build`)."""
        self.visited_stats = {"entries": entries, "mode": mode,
                              "container_bytes": container_bytes}

    # -- recording (parallel master-facing) ---------------------------------

    def record_wave(self, wave: int, wall_seconds: float,
                    workers: list[dict]) -> None:
        """One completed wave: master round-trip wall time plus each
        worker's self-reported busy time and accepted-state count."""
        self.waves.append({
            "wave": wave,
            "wall_seconds": round(wall_seconds, 6),
            "workers": workers,
        })
        for entry in workers:
            totals = self.worker_totals.setdefault(
                entry["id"], {"busy_seconds": 0.0,
                              "barrier_wait_seconds": 0.0,
                              "accepted": 0})
            totals["busy_seconds"] += entry["busy_seconds"]
            totals["barrier_wait_seconds"] += max(
                0.0, wall_seconds - entry["busy_seconds"])
            totals["accepted"] += entry["accepted"]

    def add_cross_shard(self, entries: int, payload_bytes: int) -> None:
        """Fingerprint-only exchange: ``entries`` counts routed metadata
        candidates (``entries=0`` for an adopt batch that ships states),
        ``payload_bytes`` covers both metadata and adopted states."""
        self.cross_shard_entries += entries
        self.cross_shard_bytes += payload_bytes

    def merge_worker(self, payload: Optional[dict]) -> None:
        """Fold one worker's phase/dispatch/out-degree accumulations
        (shipped in its ``finish`` reply) into this master profiler."""
        if not payload:
            return
        for name, seconds in payload["phases"].items():
            self.add_phase(name, seconds)
        for key, (count, seconds) in payload["dispatch"].items():
            entry = self.dispatch.setdefault(key, [0, 0.0])
            entry[0] += count
            entry[1] += seconds
        for degree, count in payload["out_degree"].items():
            degree = int(degree)
            self.out_degree[degree] = self.out_degree.get(degree, 0) + count
        self.pruned += payload.get("pruned", 0)
        stats = self.visited_stats or {"entries": 0, "mode": "fingerprint",
                                       "container_bytes": 0}
        stats["entries"] = stats.get("entries", 0) + payload["visited_entries"]
        stats["container_bytes"] = (stats.get("container_bytes", 0)
                                    + payload["visited_bytes"])
        self.visited_stats = stats

    def worker_payload(self) -> dict:
        """This (worker-side) profiler's accumulations, for the finish
        reply back to the master."""
        return {
            "phases": dict(self.phases),
            "dispatch": {key: list(entry)
                         for key, entry in self.dispatch.items()},
            "out_degree": {str(k): v for k, v in self.out_degree.items()},
            "visited_entries": self.visited_stats.get("entries", 0),
            "visited_bytes": self.visited_stats.get("container_bytes", 0),
            "pruned": self.pruned,
        }

    # -- building the artifact ----------------------------------------------

    def build(self, result) -> "CheckProfile":
        """Finalize into a :class:`CheckProfile` for a finished
        :class:`~repro.verify.checker.CheckResult`."""
        wall = result.elapsed_seconds
        phases = {name: round(self.phases.get(name, 0.0), 6)
                  for name in PHASES if name != "other"}
        parallel = None
        if result.workers > 1 or self.waves:
            wave_total = sum(w["wall_seconds"] for w in self.waves)
            checkpoint_io = phases.get("checkpoint_io", 0.0)
            busy_total = sum(t["busy_seconds"]
                             for t in self.worker_totals.values())
            accepted = [t["accepted"] for t in self.worker_totals.values()]
            mean_accepted = (sum(accepted) / len(accepted)
                             if accepted else 0.0)
            parallel = {
                "waves": len(self.waves),
                "wave_seconds_total": round(wave_total, 6),
                "master_routing_seconds": round(
                    max(0.0, wall - wave_total - checkpoint_io), 6),
                "workers": [
                    {"id": wid,
                     "busy_seconds": round(t["busy_seconds"], 6),
                     "barrier_wait_seconds": round(
                         t["barrier_wait_seconds"], 6),
                     "accepted": t["accepted"]}
                    for wid, t in sorted(self.worker_totals.items())
                ],
                "busy_seconds_total": round(busy_total, 6),
                "cross_shard": {"entries": self.cross_shard_entries,
                                "bytes": self.cross_shard_bytes},
                "imbalance_max_over_mean_accepted": round(
                    max(accepted) / mean_accepted, 3)
                if mean_accepted else 1.0,
                "per_wave": self.waves,
            }
            # Compute phases are worker-CPU sums; close the partition
            # against total busy time, not wall (see module docstring).
            attributed = sum(v for k, v in phases.items()
                             if k != "checkpoint_io")
            phases["other"] = round(max(0.0, busy_total - attributed), 6)
        else:
            phases["other"] = round(
                max(0.0, wall - sum(phases.values())), 6)
        visited = dict(self.visited_stats)
        if visited.get("mode") == "fingerprint":
            visited["fingerprint_bits"] = FINGERPRINT_BITS
            visited["expected_collisions"] = expected_collisions(
                visited.get("entries", 0))
        result_section = {
            "ok": result.ok,
            "states": result.states_explored,
            "transitions": result.transitions,
            "max_depth": result.max_depth,
            "states_per_second": round(
                result.states_explored / wall, 1) if wall > 0 else 0.0,
        }
        # Reduction accounting: present only when a reduction ran, so
        # unreduced profiles are byte-identical to previous builds.
        if getattr(result, "canonical_states", None) is not None:
            result_section["canonical_states"] = result.canonical_states
        if getattr(result, "pruned_transitions", 0):
            result_section["pruned_transitions"] = result.pruned_transitions
        return CheckProfile(
            protocol=result.protocol_name,
            nodes=result.n_nodes,
            addresses=result.n_blocks,
            reorder=result.reorder_bound,
            workers=result.workers,
            wall_seconds=round(wall, 6),
            result=result_section,
            phases=phases,
            timeline=list(self.timeline),
            dispatch={key: {"count": entry[0],
                            "seconds": round(entry[1], 6)}
                      for key, entry in self.dispatch.items()},
            out_degree={str(k): v
                        for k, v in sorted(self.out_degree.items())},
            visited=visited,
            parallel=parallel,
        )


class CheckProfile:
    """The schema-versioned JSON profile artifact."""

    def __init__(self, protocol: str, nodes: int, addresses: int,
                 reorder: int, workers: int, wall_seconds: float,
                 result: dict, phases: dict, timeline: list,
                 dispatch: dict, out_degree: dict, visited: dict,
                 parallel: Optional[dict] = None):
        self.protocol = protocol
        self.nodes = nodes
        self.addresses = addresses
        self.reorder = reorder
        self.workers = workers
        self.wall_seconds = wall_seconds
        self.result = result
        self.phases = phases
        self.timeline = timeline
        self.dispatch = dispatch
        self.out_degree = out_degree
        self.visited = visited
        self.parallel = parallel

    def to_json(self) -> dict:
        payload = {
            "kind": PROFILE_KIND,
            "version": PROFILE_VERSION,
            "protocol": self.protocol,
            "nodes": self.nodes,
            "addresses": self.addresses,
            "reorder": self.reorder,
            "workers": self.workers,
            "wall_seconds": self.wall_seconds,
            "result": self.result,
            "phases": self.phases,
            "timeline": self.timeline,
            "dispatch": self.dispatch,
            "out_degree": self.out_degree,
            "visited": self.visited,
        }
        if self.parallel is not None:
            payload["parallel"] = self.parallel
        return payload

    def save(self, path: str) -> None:
        # Insertion order, not sort_keys: the kind/version header must
        # stay in the first bytes so `analyze diff` can sniff the file.
        with open(path, "w") as handle:
            json.dump(self.to_json(), handle, indent=2)
            handle.write("\n")

    @classmethod
    def from_json(cls, payload: dict, path: str = "<profile>"
                  ) -> "CheckProfile":
        if payload.get("kind") != PROFILE_KIND:
            raise TraceError(
                f"{path}: not a check profile (kind="
                f"{payload.get('kind')!r}); expected a `verify "
                f"--profile-out` export")
        if payload.get("version") != PROFILE_VERSION:
            raise TraceError(
                f"{path}: check profile version "
                f"{payload.get('version')!r}, expected {PROFILE_VERSION} "
                "-- regenerate with this build's `verify --profile-out`")
        return cls(
            protocol=payload.get("protocol", "?"),
            nodes=payload.get("nodes", 0),
            addresses=payload.get("addresses", 0),
            reorder=payload.get("reorder", 0),
            workers=payload.get("workers", 0),
            wall_seconds=payload.get("wall_seconds", 0.0),
            result=dict(payload.get("result", {})),
            phases=dict(payload.get("phases", {})),
            timeline=list(payload.get("timeline", [])),
            dispatch=dict(payload.get("dispatch", {})),
            out_degree=dict(payload.get("out_degree", {})),
            visited=dict(payload.get("visited", {})),
            parallel=payload.get("parallel"),
        )


def load_profile(path: str) -> CheckProfile:
    """Read a saved check profile, with friendly one-line errors."""
    try:
        with open(path) as handle:
            text = handle.read()
    except FileNotFoundError:
        raise TraceError(f"{path}: no such file") from None
    except OSError as error:
        raise TraceError(f"{path}: {error.strerror}") from None
    if not text.strip():
        raise TraceError(f"{path}: empty file")
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as error:
        raise TraceError(f"{path}: not valid JSON ({error.msg})") from None
    if not isinstance(payload, dict):
        raise TraceError(f"{path}: not a check profile (not an object)")
    return CheckProfile.from_json(payload, path)


# -- rendering ------------------------------------------------------------------

def _fmt_seconds(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:.2f}s"
    if seconds >= 1e-3:
        return f"{seconds * 1e3:.1f}ms"
    return f"{seconds * 1e6:.0f}us"


def _bar(fraction: float, width: int = 24) -> str:
    return "#" * max(0, round(fraction * width))


def format_profile(profile: CheckProfile, top: int = 10) -> str:
    """The ``teapot analyze check-profile`` view: top-k cost tables,
    the exploration timeline, and (parallel) the imbalance report."""
    result = profile.result
    verdict = "PASS" if result.get("ok") else "FAIL"
    engine = ("serial" if profile.workers <= 1 and profile.parallel is None
              else f"{profile.workers} workers")
    lines = [
        f"check profile: {profile.protocol}  (nodes={profile.nodes} "
        f"addresses={profile.addresses} reorder={profile.reorder} "
        f"engine={engine})",
        f"verdict: {verdict}  states={result.get('states')} "
        f"transitions={result.get('transitions')} "
        f"depth={result.get('max_depth')}  "
        f"wall={_fmt_seconds(profile.wall_seconds)}  "
        f"{result.get('states_per_second', 0.0):.0f} states/s",
    ]
    phase_total = sum(profile.phases.values()) or 1.0
    basis = ("of wall time" if profile.parallel is None
             else "of worker busy time")
    lines.append(f"phases ({basis}):")
    for name in sorted(profile.phases,
                       key=lambda n: -profile.phases[n]):
        seconds = profile.phases[name]
        share = seconds / phase_total
        lines.append(f"  {name:14s} {_fmt_seconds(seconds):>9s}  "
                     f"{share:6.1%}  {_bar(share)}")

    if profile.dispatch:
        ranked = sorted(profile.dispatch.items(),
                        key=lambda item: -item[1]["seconds"])[:top]
        lines.append(f"top {len(ranked)} dispatch costs "
                     "(sub-attribution of the successors phase):")
        for key, entry in ranked:
            mean = entry["seconds"] / entry["count"] if entry["count"] else 0
            lines.append(
                f"  {key:40s} {entry['count']:>8} fires  "
                f"{_fmt_seconds(entry['seconds']):>9s} total  "
                f"{_fmt_seconds(mean):>8s} mean")

    if profile.out_degree:
        pairs = sorted(((int(k), v) for k, v in profile.out_degree.items()))
        total_states = sum(v for _, v in pairs)
        weighted = sum(k * v for k, v in pairs)
        lines.append(
            f"successor out-degree: mean "
            f"{weighted / total_states:.2f} over {total_states} expanded "
            "states; histogram "
            + " ".join(f"{k}:{v}" for k, v in pairs))

    if profile.timeline:
        lines.append("timeline (depth-sampled):")
        lines.append(f"  {'t':>8s} {'states':>8s} {'frontier':>8s} "
                     f"{'depth':>5s} {'states/s':>9s}")
        samples = profile.timeline
        if len(samples) > 2 * top:
            # Keep the shape readable: first, evenly thinned middle, last.
            step = max(1, len(samples) // (2 * top))
            samples = samples[::step] + [profile.timeline[-1]]
        for point in samples:
            lines.append(
                f"  {point['t']:8.3f} {point['states']:>8} "
                f"{point['frontier']:>8} {point['depth']:>5} "
                f"{point['states_per_s']:>9.0f}")

    visited = profile.visited
    if visited:
        detail = f"{visited.get('entries', 0)} entries"
        if visited.get("container_bytes"):
            detail += f", ~{visited['container_bytes'] / 1024:.0f} KiB"
        detail += f" ({visited.get('mode', '?')} keys"
        if "expected_collisions" in visited:
            detail += (f"; expected 64-bit collisions "
                       f"{visited['expected_collisions']:.2e}")
        detail += ")"
        lines.append(f"visited set: {detail}")

    if profile.parallel is not None:
        par = profile.parallel
        lines.append(
            f"parallel: {par['waves']} waves, "
            f"wave time {_fmt_seconds(par['wave_seconds_total'])}, "
            f"master routing "
            f"{_fmt_seconds(par['master_routing_seconds'])}, "
            f"imbalance(max/mean accepted)="
            f"{par['imbalance_max_over_mean_accepted']:.2f}")
        for worker in par["workers"]:
            busy = worker["busy_seconds"]
            barrier = worker["barrier_wait_seconds"]
            total = busy + barrier
            busy_share = busy / total if total else 0.0
            lines.append(
                f"  w{worker['id']}: busy {_fmt_seconds(busy):>9s} "
                f"({busy_share:5.1%})  barrier "
                f"{_fmt_seconds(barrier):>9s}  "
                f"accepted={worker['accepted']}")
        cross = par["cross_shard"]
        lines.append(
            f"  cross-shard: {cross['entries']} candidates routed, "
            f"~{cross['bytes'] / 1024:.1f} KiB (metadata + adopted states)")
    return "\n".join(lines) + "\n"


def diff_profiles(a: CheckProfile, b: CheckProfile,
                  top: int = 8) -> str:
    """Compare two check profiles (``teapot analyze diff a b``)."""

    def config(p: CheckProfile) -> str:
        return (f"{p.protocol} nodes={p.nodes} addresses={p.addresses} "
                f"reorder={p.reorder} workers={p.workers}")

    lines = [f"a: {config(a)}", f"b: {config(b)}"]
    if config(a) != config(b):
        lines.append("note: configurations differ; deltas compare "
                     "different explorations")

    def delta(name, va, vb, unit=""):
        change = ""
        if va:
            change = f"  ({(vb - va) / va:+.1%})"
        return f"  {name:24s} {va:>12.6g} -> {vb:>12.6g}{unit}{change}"

    lines.append("headline:")
    lines.append(delta("states/s",
                       a.result.get("states_per_second", 0.0),
                       b.result.get("states_per_second", 0.0)))
    lines.append(delta("wall_seconds", a.wall_seconds, b.wall_seconds))
    lines.append(delta("states", a.result.get("states", 0),
                       b.result.get("states", 0)))
    lines.append(delta("transitions", a.result.get("transitions", 0),
                       b.result.get("transitions", 0)))

    lines.append("phases (seconds):")
    for name in PHASES:
        va = a.phases.get(name, 0.0)
        vb = b.phases.get(name, 0.0)
        if va or vb:
            lines.append(delta(name, va, vb))

    movers = sorted(
        set(a.dispatch) | set(b.dispatch),
        key=lambda key: -abs(b.dispatch.get(key, {}).get("seconds", 0.0)
                             - a.dispatch.get(key, {}).get("seconds", 0.0)))
    movers = [key for key in movers
              if (a.dispatch.get(key, {}).get("seconds", 0.0)
                  or b.dispatch.get(key, {}).get("seconds", 0.0))][:top]
    if movers:
        lines.append(f"dispatch movers (top {len(movers)} by |delta|):")
        for key in movers:
            lines.append(delta(
                key,
                a.dispatch.get(key, {}).get("seconds", 0.0),
                b.dispatch.get(key, {}).get("seconds", 0.0)))

    ea = a.visited.get("entries", 0)
    eb = b.visited.get("entries", 0)
    if ea or eb:
        lines.append("visited set:")
        lines.append(delta("entries", ea, eb))
    return "\n".join(lines) + "\n"
