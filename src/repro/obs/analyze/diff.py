"""Comparing two traces, or two coverage reports.

The paper's comparisons are always pairwise -- stache vs stache_nack,
optimised vs unoptimised, FIFO vs reordering -- so ``diff`` renders the
deltas that matter between two runs of the same workload: event volume
by kind, handler dispatch mix, message mix, reorderings, suspends split
static/heap, and end-of-run time.
"""

from __future__ import annotations

from repro.obs.analyze.coverage import CoverageReport
from repro.obs.analyze.trace import Trace


def _counts_by(trace: Trace, key_of) -> dict[str, int]:
    counts: dict[str, int] = {}
    for event in trace.events:
        key = key_of(event)
        if key is not None:
            counts[key] = counts.get(key, 0) + 1
    return counts


def _delta_table(title: str, a: dict[str, int], b: dict[str, int],
                 lines: list[str]) -> None:
    keys = sorted(set(a) | set(b))
    if not keys:
        return
    lines.append(f"{title}:")
    for key in keys:
        left, right = a.get(key, 0), b.get(key, 0)
        delta = right - left
        mark = f"{delta:+d}" if delta else "="
        lines.append(f"  {key:40s} {left:>8} -> {right:<8} {mark}")


def diff_traces(a: Trace, b: Trace) -> str:
    """Human-readable delta between two traces (A -> B)."""
    lines = [
        f"A: {a.path}  ({len(a.events)} events)",
        f"B: {b.path}  ({len(b.events)} events)",
        "",
    ]

    def max_t(trace: Trace) -> int:
        return max((e.get("t", 0) for e in trace.events), default=0)

    def scalar(label: str, left, right) -> None:
        delta = right - left
        mark = f"{delta:+d}" if delta else "="
        lines.append(f"  {label:40s} {left:>8} -> {right:<8} {mark}")

    lines.append("totals:")
    scalar("events", len(a.events), len(b.events))
    scalar("last timestamp", max_t(a), max_t(b))
    scalar("reordered deliveries",
           sum(1 for e in a.events
               if e["ev"] == "deliver" and e.get("reorder")),
           sum(1 for e in b.events
               if e["ev"] == "deliver" and e.get("reorder")))
    scalar("static suspends",
           sum(1 for e in a.events
               if e["ev"] == "suspend" and e.get("static")),
           sum(1 for e in b.events
               if e["ev"] == "suspend" and e.get("static")))
    scalar("heap suspends",
           sum(1 for e in a.events
               if e["ev"] == "suspend" and not e.get("static")),
           sum(1 for e in b.events
               if e["ev"] == "suspend" and not e.get("static")))
    lines.append("")

    _delta_table("events by kind",
                 _counts_by(a, lambda e: e["ev"]),
                 _counts_by(b, lambda e: e["ev"]), lines)
    lines.append("")

    def handler_key(event: dict):
        if event["ev"] == "handler_entry":
            return f"{event['state']}.{event['msg']}"
        return None

    _delta_table("handler dispatches",
                 _counts_by(a, handler_key),
                 _counts_by(b, handler_key), lines)
    lines.append("")

    def send_key(event: dict):
        return event["tag"] if event["ev"] == "send" else None

    _delta_table("messages sent by tag",
                 _counts_by(a, send_key),
                 _counts_by(b, send_key), lines)
    return "\n".join(line.rstrip() for line in lines) + "\n"


def diff_coverage(a: CoverageReport, b: CoverageReport) -> str:
    """Delta between two coverage reports (A -> B)."""
    lines = [
        f"A: {a.protocol} ({a.source}) "
        f"{a.covered}/{len(a.arms)} arms",
        f"B: {b.protocol} ({b.source}) "
        f"{b.covered}/{len(b.arms)} arms",
        "",
    ]
    gained = sorted(set(a.unreached) - set(b.unreached))
    lost = sorted(set(b.unreached) - set(a.unreached))
    if gained:
        lines.append("newly covered in B:")
        lines.extend(f"  {arm}" for arm in gained)
    if lost:
        lines.append("no longer covered in B:")
        lines.extend(f"  {arm}" for arm in lost)
    if not gained and not lost:
        lines.append("same arms covered in both")
    lines.append("")
    _delta_table("fires per arm", a.fired, b.fired, lines)
    return "\n".join(line.rstrip() for line in lines) + "\n"
