"""Trace analysis: asking questions of the JSONL events PR 1 emits.

The paper's evaluation is built from exactly such questions: Figure 11
reconstructs a message-reordering interleaving (``causal``), Tables 1-2
attribute fault-wait time to protocol behaviour (``critical-path``), and
Section 7's claim rests on the checker having exercised every handler
(``coverage``).  ``diff`` compares two traces or two coverage reports.

Entry points::

    trace   = load_trace("run.jsonl")
    clocks  = vector_clocks(trace)              # happens-before order
    chain   = causal_chain(trace, target_idx)   # Figure-11 style
    faults  = fault_paths(trace)                # per-fault wait split
    report  = coverage_from_trace(trace, protocol)
    report  = coverage_from_checker(protocol, result, ...)
"""

from repro.obs.analyze.trace import Trace, TraceError, load_trace
from repro.obs.analyze.order import (
    causal_edges,
    happens_before,
    vector_clocks,
)
from repro.obs.analyze.causal import causal_chain, format_causal
from repro.obs.analyze.critpath import (
    FaultPath,
    Segment,
    fault_paths,
    format_critical_path,
)
from repro.obs.analyze.coverage import (
    CoverageReport,
    arm_universe,
    coverage_from_checker,
    coverage_from_trace,
    fault_only_arms,
    format_fault_only,
    load_coverage,
)
from repro.obs.analyze.diff import diff_coverage, diff_traces

__all__ = [
    "Trace",
    "TraceError",
    "load_trace",
    "vector_clocks",
    "happens_before",
    "causal_edges",
    "causal_chain",
    "format_causal",
    "FaultPath",
    "Segment",
    "fault_paths",
    "format_critical_path",
    "CoverageReport",
    "arm_universe",
    "coverage_from_trace",
    "coverage_from_checker",
    "fault_only_arms",
    "format_fault_only",
    "load_coverage",
    "diff_traces",
    "diff_coverage",
]
