"""The happens-before partial order over trace events.

Lamport's formulation, specialised to our event kinds: event a happens
before event b iff a precedes b on the same node's timeline (program
order -- nodes are single processors, so their emission order is their
execution order), or a is the ``send`` whose message b ``deliver``s
(matched by the message seq), or a is the ``suspend`` whose continuation
b ``resume``s (matched by continuation identity), or a is the ``queue``
defer whose message b ``replay``s, or transitively through such pairs.

Implemented as vector clocks: one pass over the trace in file order
(a topological order -- :mod:`repro.obs.analyze.trace`) assigns each
event a clock, and ``happens_before`` is then a componentwise
comparison.  Concurrency (neither order) is exactly what Figure 11's
reordering windows exhibit.
"""

from __future__ import annotations

from typing import Optional

from repro.obs.analyze.trace import Trace, TraceError


def cross_edge(trace: Trace, index: int) -> Optional[int]:
    """The non-program-order predecessor of event ``index``, if any."""
    event = trace.events[index]
    kind = event["ev"]
    if kind == "deliver":
        return trace.send_of_seq.get(event["seq"])
    if kind == "resume":
        return trace.suspend_of.get(index)
    if kind == "replay":
        return trace.queue_of_replay.get(index)
    return None


def causal_edges(trace: Trace) -> list[tuple[int, int, str]]:
    """Every happens-before edge as (src index, dst index, kind).

    Kinds: ``po`` (program order, adjacent same-node events), ``msg``
    (send -> deliver), ``cont`` (suspend -> resume), ``queue``
    (defer -> replay).
    """
    edges: list[tuple[int, int, str]] = []
    last_on_node: dict[int, int] = {}
    kind_of = {"deliver": "msg", "resume": "cont", "replay": "queue"}
    for index in range(len(trace.events)):
        node = trace.location(index)
        if node is None:
            continue
        if node in last_on_node:
            edges.append((last_on_node[node], index, "po"))
        last_on_node[node] = index
        source = cross_edge(trace, index)
        if source is not None:
            edges.append((source, index,
                          kind_of[trace.events[index]["ev"]]))
    return edges


def vector_clocks(trace: Trace) -> list[Optional[tuple[int, ...]]]:
    """One vector clock per event (None for unlocated checker events).

    Clock[i][n] counts the events on node n's timeline that happen
    before or at event i.  ``a happens-before b`` iff clock[a] <=
    clock[b] componentwise and a != b.
    """
    n_nodes = trace.n_nodes
    clocks: list[Optional[tuple[int, ...]]] = [None] * len(trace.events)
    current: dict[int, list[int]] = {}
    for index in range(len(trace.events)):
        node = trace.location(index)
        if node is None:
            continue
        clock = list(current.get(node, [0] * n_nodes))
        source = cross_edge(trace, index)
        if source is not None:
            source_clock = clocks[source]
            if source_clock is None:
                raise TraceError(
                    f"{trace.path}: event {index} depends on event "
                    f"{source}, which has no clock (trace out of order?)")
            for n in range(n_nodes):
                if source_clock[n] > clock[n]:
                    clock[n] = source_clock[n]
        clock[node] += 1
        clocks[index] = tuple(clock)
        current[node] = clock
    return clocks


def happens_before(clock_a: tuple[int, ...],
                   clock_b: tuple[int, ...]) -> bool:
    """Strict happens-before between two vector clocks."""
    return all(a <= b for a, b in zip(clock_a, clock_b)) and clock_a != clock_b
