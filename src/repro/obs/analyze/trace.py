"""Loading a JSONL trace into an indexed event model.

A trace is the list of event dicts a :class:`~repro.obs.sinks.JsonlSink`
wrote, in emission order.  Emission order is the simulator's execution
order, so it is a valid topological order of the happens-before relation
(every cross edge -- send before deliver, suspend before resume, queue
before replay -- points backwards in file order); the analyses in this
package rely on that.

Every event must carry the schema-version field ``v`` inside the range
[:data:`~repro.obs.sinks.MIN_SCHEMA_VERSION`,
:data:`~repro.obs.sinks.SCHEMA_VERSION`] (each kind is stamped with the
version in which it last changed); traces from other builds are
rejected with a :class:`TraceError` asking for regeneration rather than
silently misread.
"""

from __future__ import annotations

import json
from typing import Optional

from repro.lang.errors import TeapotError
from repro.obs.sinks import MIN_SCHEMA_VERSION, SCHEMA_VERSION


class TraceError(TeapotError):
    """A trace file is missing, empty, malformed, or wrong-schema."""


# Event kinds located on a node timeline, and the field that names the
# node.  send happens on the sender; deliver on the receiver.  Checker
# events (checker_step, violation) have no timeline location.
_LOCATION_FIELD = {
    "handler_entry": "node",
    "handler_exit": "node",
    "suspend": "node",
    "resume": "node",
    "send": "src",
    "deliver": "dst",
    "fault_begin": "node",
    "fault_end": "node",
    "state": "node",
    "queue": "node",
    "replay": "node",
    "nack": "node",
    "error": "node",
    "net.drop": "src",
    "net.dup": "src",
    "retry": "node",
    "timeout": "node",
}


def load_events(path: str) -> list[dict]:
    """Read and validate one JSONL trace file."""
    try:
        with open(path) as handle:
            lines = handle.readlines()
    except FileNotFoundError:
        raise TraceError(f"{path}: no such file") from None
    except OSError as error:
        raise TraceError(f"{path}: {error.strerror}") from None
    events: list[dict] = []
    for lineno, line in enumerate(lines, 1):
        if not line.strip():
            continue
        try:
            event = json.loads(line)
        except json.JSONDecodeError as error:
            raise TraceError(
                f"{path}:{lineno}: not valid JSON ({error.msg}); "
                "expected one event object per line") from None
        if not isinstance(event, dict) or "ev" not in event:
            raise TraceError(
                f"{path}:{lineno}: not a trace event (no 'ev' field)")
        version = event.get("v")
        if version is None:
            raise TraceError(
                f"{path}:{lineno}: unversioned event (schema v1?); "
                "regenerate the trace with this build's --trace")
        if not (MIN_SCHEMA_VERSION <= version <= SCHEMA_VERSION):
            raise TraceError(
                f"{path}:{lineno}: schema version {version}, but this "
                f"build reads versions {MIN_SCHEMA_VERSION}.."
                f"{SCHEMA_VERSION}")
        events.append(event)
    if not events:
        raise TraceError(f"{path}: empty trace (no events)")
    return events


class Trace:
    """An indexed trace: events plus the pairings the analyses need.

    Indexes (all built eagerly; traces are small relative to the runs
    that made them):

    - ``send_of_seq`` / ``deliver_of_seq``: message seq -> event index.
    - ``resume_of`` / ``suspend_of``: suspend index <-> resume index,
      paired per (node, block, cont) in FIFO order.
    - ``queue_of_replay``: replay index -> the queue event it redelivers,
      paired per (node, block, tag) in FIFO order.
    - ``fault_pairs``: (fault_begin index, fault_end index) per node in
      order (one outstanding fault per node at a time).
    - ``handler_spans``: (handler_entry index, handler_exit index) per
      node in order (handlers never nest on a node).
    """

    def __init__(self, events: list[dict], path: str = "<trace>"):
        self.events = events
        self.path = path
        self.send_of_seq: dict[int, int] = {}
        self.deliver_of_seq: dict[int, int] = {}
        self.resume_of: dict[int, int] = {}
        self.suspend_of: dict[int, int] = {}
        self.queue_of_replay: dict[int, int] = {}
        self.fault_pairs: list[tuple[int, Optional[int]]] = []
        self.handler_spans: list[tuple[int, Optional[int]]] = []
        self._build()

    # -- basics ------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.events)

    def location(self, index: int) -> Optional[int]:
        """The node whose timeline event ``index`` belongs to."""
        event = self.events[index]
        f = _LOCATION_FIELD.get(event["ev"])
        return event[f] if f is not None else None

    @property
    def n_nodes(self) -> int:
        best = -1
        for index in range(len(self.events)):
            loc = self.location(index)
            if loc is not None and loc > best:
                best = loc
        return best + 1

    # -- index construction ------------------------------------------------

    def _build(self) -> None:
        pending_suspends: dict[tuple, list[int]] = {}
        pending_queues: dict[tuple, list[int]] = {}
        open_fault: dict[int, int] = {}
        open_handler: dict[int, int] = {}
        fault_slot: dict[int, int] = {}
        handler_slot: dict[int, int] = {}
        for index, event in enumerate(self.events):
            kind = event["ev"]
            if kind == "send":
                self.send_of_seq[event["seq"]] = index
            elif kind == "deliver":
                self.deliver_of_seq[event["seq"]] = index
            elif kind == "suspend":
                key = (event["node"], event["block"], event["cont"])
                pending_suspends.setdefault(key, []).append(index)
            elif kind == "resume":
                key = (event["node"], event["block"], event["cont"])
                stack = pending_suspends.get(key)
                if stack:
                    suspend_index = stack.pop(0)
                    self.suspend_of[index] = suspend_index
                    self.resume_of[suspend_index] = index
            elif kind == "queue":
                key = (event["node"], event["block"], event["tag"])
                pending_queues.setdefault(key, []).append(index)
            elif kind == "replay":
                key = (event["node"], event["block"], event["tag"])
                stack = pending_queues.get(key)
                if stack:
                    self.queue_of_replay[index] = stack.pop(0)
            elif kind == "fault_begin":
                node = event["node"]
                fault_slot[node] = len(self.fault_pairs)
                open_fault[node] = index
                self.fault_pairs.append((index, None))
            elif kind == "fault_end":
                node = event["node"]
                if node in open_fault:
                    slot = fault_slot.pop(node)
                    begin = open_fault.pop(node)
                    self.fault_pairs[slot] = (begin, index)
            elif kind == "handler_entry":
                node = event["node"]
                handler_slot[node] = len(self.handler_spans)
                open_handler[node] = index
                self.handler_spans.append((index, None))
            elif kind == "handler_exit":
                node = event["node"]
                if node in open_handler:
                    slot = handler_slot.pop(node)
                    open_handler.pop(node)
                    self.handler_spans[slot] = (
                        self.handler_spans[slot][0], index)

    # -- queries -----------------------------------------------------------

    def indices(self, *kinds: str) -> list[int]:
        wanted = set(kinds)
        return [i for i, e in enumerate(self.events) if e["ev"] in wanted]

    def describe(self, index: int) -> str:
        """One compact human line for an event (used by renderers)."""
        e = self.events[index]
        kind = e["ev"]
        if kind == "handler_entry":
            return f"[ {e['state']}.{e['msg']} b{e['block']}"
        if kind == "handler_exit":
            return f"] {e['state']}.{e['msg']} ({e['cycles']}cy)"
        if kind == "send":
            data = "+data " if e["data"] else ""
            return (f"send #{e['seq']} {e['tag']} b{e['block']} "
                    f"{data}-> n{e['dst']}")
        if kind == "deliver":
            flag = " (reordered)" if e.get("reorder") else ""
            return (f"recv #{e['seq']} {e['tag']} b{e['block']} "
                    f"<- n{e['src']}{flag}")
        if kind == "suspend":
            return f"suspend {e['cont']} -> {e['to']}"
        if kind == "resume":
            flag = " (direct)" if e.get("direct") else ""
            return f"resume {e['cont']}{flag}"
        if kind == "queue":
            return f"defer {e['tag']} (depth {e['depth']})"
        if kind == "replay":
            return f"replay {e['tag']} b{e['block']}"
        if kind == "state":
            return f"state {e['from']} -> {e['to']}"
        if kind == "fault_begin":
            return f"fault {e['tag']} b{e['block']}"
        if kind == "fault_end":
            return f"fault done b{e['block']} (wait {e['wait']})"
        if kind == "nack":
            return f"nack {e['tag']} -> n{e['dst']}"
        if kind == "error":
            return f"error: {e['text']}"
        if kind == "net.drop":
            return f"DROP {e['tag']} b{e['block']} -> n{e['dst']}"
        if kind == "net.dup":
            return f"DUP #{e['seq']} {e['tag']} b{e['block']} -> n{e['dst']}"
        if kind == "retry":
            return (f"retry {e['tag']} b{e['block']} -> n{e['dst']} "
                    f"(attempt {e['attempt']})")
        if kind == "timeout":
            return (f"timeout b{e['block']} after {e['waited']}cy "
                    f"(attempt {e['attempt']})")
        return kind


def load_trace(path: str) -> Trace:
    """Load and index one JSONL trace."""
    return Trace(load_events(path), path)
