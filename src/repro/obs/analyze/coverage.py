"""Handler-coverage: which (state, message) arms a run actually fired.

Two sources feed the same report: a simulator trace (counting
``handler_entry`` events) and a checker exploration (the per-arm fire
counts :class:`~repro.verify.checker.ModelChecker` accumulates across
every dispatch, including queue redeliveries).  An arm that never fires
under an *exhaustive* exploration is dead code -- exactly the Section 7
assurance the paper claims from model checking, inverted: the checker
not only found no bad transition, it exercised every good one.

Error guards -- DEFAULT (or explicit) handlers whose entire body is an
``Error`` call -- are excluded from the denominator: they exist to make
unexpected messages loud, so a passing verification *must* never fire
them.  They are listed separately so they stay visible.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.compiler.ir import ICall
from repro.obs.analyze.trace import Trace, TraceError
from repro.runtime.protocol import CompiledProtocol

# On-disk format marker for saved coverage reports (analyze coverage -o,
# analyze diff).  Independent of the trace SCHEMA_VERSION.
COVERAGE_KIND = "teapot-coverage"
COVERAGE_VERSION = 1


def is_error_guard(handler) -> bool:
    """True when the handler's whole body is a single ``Error`` call."""
    entry = handler.blocks[handler.entry]
    if len(entry.ops) != 1 or entry.successors():
        return False
    op = entry.ops[0]
    return isinstance(op, ICall) and op.name == "Error"


def arm_universe(protocol: CompiledProtocol
                 ) -> tuple[list[str], list[str]]:
    """(coverable arms, error guards), each as sorted "State.MSG" keys."""
    arms: list[str] = []
    guards: list[str] = []
    for (state_name, message_name), handler in protocol.handlers.items():
        key = f"{state_name}.{message_name}"
        (guards if is_error_guard(handler) else arms).append(key)
    return sorted(arms), sorted(guards)


@dataclass
class CoverageReport:
    """Per-arm fire counts against a protocol's full arm universe."""

    protocol: str
    source: str                     # e.g. "trace:run.jsonl" or "checker"
    config: dict = field(default_factory=dict)
    fired: dict = field(default_factory=dict)   # "State.MSG" -> count
    arms: list = field(default_factory=list)    # coverable universe
    guards: list = field(default_factory=list)  # excluded error guards

    @property
    def unreached(self) -> list[str]:
        return [arm for arm in self.arms if not self.fired.get(arm)]

    @property
    def covered(self) -> int:
        return sum(1 for arm in self.arms if self.fired.get(arm))

    @property
    def fraction(self) -> float:
        return self.covered / len(self.arms) if self.arms else 1.0

    def headline(self) -> str:
        line = (f"handler coverage: {self.covered}/{len(self.arms)} arms "
                f"fired ({self.fraction:.1%})")
        if self.guards:
            line += f"; {len(self.guards)} error guards excluded"
        return line

    def summary_line(self) -> str:
        line = self.headline()
        unreached = self.unreached
        if 0 < len(unreached) <= 8:
            line += "; never fired: " + ", ".join(unreached)
        elif unreached:
            line += f"; {len(unreached)} arms never fired"
        return line

    def format(self) -> str:
        lines = [
            f"protocol: {self.protocol}  (source: {self.source}"
            + "".join(f" {k}={v}" for k, v in sorted(self.config.items()))
            + ")",
            self.headline(),
        ]
        unreached = self.unreached
        if unreached:
            lines.append("never fired:")
            lines.extend(f"  {arm}" for arm in unreached)
        fired = [(arm, self.fired[arm]) for arm in self.arms
                 if self.fired.get(arm)]
        # Guards should never fire; if one did (a failing run's trace,
        # say), surface it loudly rather than hiding it.
        fired += [(guard, self.fired[guard]) for guard in self.guards
                  if self.fired.get(guard)]
        if fired:
            lines.append("fires per arm:")
            for arm, count in sorted(fired,
                                     key=lambda item: (-item[1], item[0])):
                marker = "  [error guard!]" if arm in self.guards else ""
                lines.append(f"  {arm:40s} {count:>8}{marker}")
        return "\n".join(lines) + "\n"

    # -- persistence -------------------------------------------------------

    def to_json(self) -> dict:
        return {
            "kind": COVERAGE_KIND,
            "version": COVERAGE_VERSION,
            "protocol": self.protocol,
            "source": self.source,
            "config": self.config,
            "fired": self.fired,
            "arms": self.arms,
            "guards": self.guards,
        }

    def save(self, path: str) -> None:
        with open(path, "w") as handle:
            json.dump(self.to_json(), handle, indent=2, sort_keys=True)
            handle.write("\n")

    @classmethod
    def from_json(cls, payload: dict, path: str = "<coverage>"
                  ) -> "CoverageReport":
        if payload.get("kind") != COVERAGE_KIND:
            raise TraceError(
                f"{path}: not a coverage report (kind="
                f"{payload.get('kind')!r})")
        if payload.get("version") != COVERAGE_VERSION:
            raise TraceError(
                f"{path}: coverage report version "
                f"{payload.get('version')!r}, expected {COVERAGE_VERSION}")
        return cls(
            protocol=payload.get("protocol", "?"),
            source=payload.get("source", "?"),
            config=dict(payload.get("config", {})),
            fired=dict(payload.get("fired", {})),
            arms=list(payload.get("arms", [])),
            guards=list(payload.get("guards", [])),
        )


def load_coverage(path: str) -> CoverageReport:
    """Read a saved coverage report, with friendly errors."""
    try:
        with open(path) as handle:
            text = handle.read()
    except FileNotFoundError:
        raise TraceError(f"{path}: no such file") from None
    except OSError as error:
        raise TraceError(f"{path}: {error.strerror}") from None
    if not text.strip():
        raise TraceError(f"{path}: empty file")
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as error:
        raise TraceError(f"{path}: not valid JSON ({error.msg})") from None
    if not isinstance(payload, dict):
        raise TraceError(f"{path}: not a coverage report (not an object)")
    return CoverageReport.from_json(payload, path)


def coverage_from_trace(trace: Trace,
                        protocol: CompiledProtocol) -> CoverageReport:
    """Count each handler_entry of a simulator trace against the arms."""
    arms, guards = arm_universe(protocol)
    known = set(arms) | set(guards)
    fired: dict[str, int] = {}
    for index in trace.indices("handler_entry"):
        event = trace.events[index]
        key = f"{event['state']}.{event['msg']}"
        if key not in known:
            raise TraceError(
                f"{trace.path}: trace fires {key}, which protocol "
                f"{protocol.name} does not define -- wrong protocol?")
        fired[key] = fired.get(key, 0) + 1
    return CoverageReport(
        protocol=protocol.name,
        source=f"trace:{trace.path}",
        fired=fired,
        arms=arms,
        guards=guards,
    )


def coverage_from_checker(protocol: CompiledProtocol, result
                          ) -> CoverageReport:
    """Wrap a CheckResult's fire counts (its ``handler_fires`` field)."""
    arms, guards = arm_universe(protocol)
    config = {
        "nodes": result.n_nodes,
        "addrs": result.n_blocks,
        "reorder": result.reorder_bound,
        "states": result.states_explored,
    }
    budget = getattr(result, "fault_budget", (0, 0))
    if budget != (0, 0):
        config["faults"] = f"drop={budget[0]},dup={budget[1]}"
    return CoverageReport(
        protocol=protocol.name,
        source="checker",
        config=config,
        fired=dict(result.handler_fires),
        arms=arms,
        guards=guards,
    )


def fault_only_arms(base: CoverageReport,
                    faulted: CoverageReport) -> list[str]:
    """Arms (including error guards) that fired under a fault budget but
    never in the fault-free exploration -- code that exists purely to
    handle lossy/duplicating networks, or guards a fault can trip."""
    if base.protocol != faulted.protocol:
        raise TraceError(
            f"cannot compare coverage of {base.protocol} against "
            f"{faulted.protocol}")
    return sorted(
        arm for arm, count in faulted.fired.items()
        if count and not base.fired.get(arm))


def format_fault_only(base: CoverageReport, faulted: CoverageReport,
                      budget: str) -> str:
    """Human-readable fault-only coverage comparison."""
    only = fault_only_arms(base, faulted)
    lines = [
        f"protocol: {base.protocol}",
        f"fault-free exploration: {base.headline()}",
        f"under {budget}: {faulted.headline()}",
    ]
    if only:
        lines.append(f"arms reachable only under faults ({len(only)}):")
        for arm in only:
            marker = "  [error guard]" if arm in faulted.guards else ""
            lines.append(f"  {arm}{marker}")
    else:
        lines.append("no arm fired under faults that the fault-free "
                     "exploration missed")
    return "\n".join(lines) + "\n"
