"""Critical-path decomposition of fault waits.

For every access fault the trace records, split its wait window
[fault_begin.t, fault_end.t] into labelled segments saying what the
faulting thread was actually waiting *on* at each instant:

- ``handler State.MSG @nN`` -- a protocol handler for the same block was
  executing on node N (the remote home servicing the request, or the
  local fault handler itself);
- ``queued TAG @nN`` -- a message for the block sat in node N's deferred
  queue (the block was in a transient state);
- ``network TAG nA->nB`` -- a message for the block was in flight;
- ``wait (unattributed)`` -- none of the above (scheduling gaps:
  the servicing processor was busy with other blocks, or the woken
  thread had not been rescheduled yet).

When instants are covered by several causes the most specific wins
(handler > queued > network > idle), so the segments of each fault
partition its window exactly and their lengths sum to its wait.
Summing the async waits per node reproduces the simulator's
``fault_wait_cycles`` (and hence Table 1's fault_time_fraction)
-- the analysis is a decomposition of that number, not an estimate.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.obs.analyze.trace import Trace

_PRI_HANDLER = 3
_PRI_QUEUED = 2
_PRI_NETWORK = 1
IDLE_LABEL = "wait (unattributed)"


@dataclass
class Segment:
    """One labelled slice of a fault's wait window."""

    label: str
    start: int
    end: int

    @property
    def cycles(self) -> int:
        return self.end - self.start


@dataclass
class FaultPath:
    """One fault's full wait decomposition."""

    node: int
    block: int
    tag: str
    start: int
    end: int
    sync: bool
    segments: list[Segment]

    @property
    def wait(self) -> int:
        return self.end - self.start


def _block_intervals(trace: Trace, block: int
                     ) -> list[tuple[int, int, int, str]]:
    """All (priority, start, end, label) intervals touching ``block``."""
    intervals: list[tuple[int, int, int, str]] = []
    for entry_index, exit_index in trace.handler_spans:
        if exit_index is None:
            continue
        entry = trace.events[entry_index]
        if entry["block"] != block:
            continue
        exit_event = trace.events[exit_index]
        intervals.append((
            _PRI_HANDLER, entry["t"], exit_event["t"],
            f"handler {entry['state']}.{entry['msg']} @n{entry['node']}"))
    for seq, send_index in trace.send_of_seq.items():
        send = trace.events[send_index]
        if send["block"] != block:
            continue
        intervals.append((
            _PRI_NETWORK, send["t"], send["arrival"],
            f"network {send['tag']} n{send['src']}->n{send['dst']}"))
    for replay_index, queue_index in trace.queue_of_replay.items():
        queue = trace.events[queue_index]
        if queue["block"] != block:
            continue
        replay = trace.events[replay_index]
        intervals.append((
            _PRI_QUEUED, queue["t"], replay["t"],
            f"queued {queue['tag']} @n{queue['node']}"))
    return intervals


def _decompose(window_start: int, window_end: int,
               intervals: list[tuple[int, int, int, str]]) -> list[Segment]:
    """Partition [window_start, window_end) by highest-priority cover."""
    clipped = [
        (priority, max(start, window_start), min(end, window_end), label)
        for priority, start, end, label in intervals
        if max(start, window_start) < min(end, window_end)
    ]
    boundaries = sorted({window_start, window_end}
                        | {s for _p, s, _e, _l in clipped}
                        | {e for _p, _s, e, _l in clipped})
    segments: list[Segment] = []
    for left, right in zip(boundaries, boundaries[1:]):
        covering = [(priority, start, label)
                    for priority, start, end, label in clipped
                    if start <= left and end >= right]
        if covering:
            # Most specific cause wins; among equals the latest-started
            # (the proximate one); then the label for determinism.
            _, _, label = max(covering,
                              key=lambda c: (c[0], c[1], c[2]))
        else:
            label = IDLE_LABEL
        if segments and segments[-1].label == label:
            segments[-1].end = right
        else:
            segments.append(Segment(label, left, right))
    return segments


def fault_paths(trace: Trace) -> list[FaultPath]:
    """Decompose every completed fault in the trace."""
    paths: list[FaultPath] = []
    interval_cache: dict[int, list] = {}
    for begin_index, end_index in trace.fault_pairs:
        if end_index is None:
            continue  # trace ended mid-fault
        begin = trace.events[begin_index]
        end = trace.events[end_index]
        block = begin["block"]
        if block not in interval_cache:
            interval_cache[block] = _block_intervals(trace, block)
        paths.append(FaultPath(
            node=begin["node"],
            block=block,
            tag=begin["tag"],
            start=begin["t"],
            end=end["t"],
            sync=bool(end.get("sync")),
            segments=_decompose(begin["t"], end["t"],
                                interval_cache[block]),
        ))
    return paths


def aggregate(paths: list[FaultPath]) -> dict[str, int]:
    """Total cycles per cause label across all faults."""
    totals: dict[str, int] = {}
    for path in paths:
        for segment in path.segments:
            totals[segment.label] = (
                totals.get(segment.label, 0) + segment.cycles)
    return totals


def format_critical_path(trace: Trace, per_fault: int = 0) -> str:
    """Render the decomposition: aggregate table plus per-fault detail.

    ``per_fault`` limits how many individual faults are expanded
    (0 = aggregate only); the longest-waiting faults are shown first.
    """
    paths = fault_paths(trace)
    if not paths:
        return "no completed faults in trace\n"
    total_wait = sum(path.wait for path in paths)
    async_wait = sum(path.wait for path in paths if not path.sync)
    lines = [
        f"critical path: {len(paths)} faults, total wait "
        f"{total_wait} cycles "
        f"({async_wait} async = the simulator's fault_wait_cycles)",
        "",
        "by cause:",
    ]
    totals = aggregate(paths)
    for label, cycles in sorted(totals.items(),
                                key=lambda item: (-item[1], item[0])):
        share = 100.0 * cycles / total_wait if total_wait else 0.0
        lines.append(f"  {label:44s} {cycles:>8}  {share:5.1f}%")
    expanded = sorted(paths, key=lambda p: (-p.wait, p.start,
                                            p.node))[:per_fault]
    for path in expanded:
        lines.append("")
        lines.append(
            f"fault n{path.node} b{path.block} {path.tag} "
            f"t={path.start}..{path.end} wait={path.wait}"
            + (" (sync)" if path.sync else ""))
        for segment in path.segments:
            lines.append(
                f"  {segment.start:>7}..{segment.end:<7} "
                f"{segment.label:44s} {segment.cycles:>7}")
    return "\n".join(line.rstrip() for line in lines) + "\n"
