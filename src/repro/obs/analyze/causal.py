"""Causal-chain extraction and the Figure-11-style lane rendering.

``causal_chain`` walks the happens-before relation backwards from a
target event (typically an error, nack, or delivery of interest) and
keeps only the events on its causal past that explain it: the message
that triggered each handler, the send that produced each delivery, the
suspend behind each resume, the defer behind each replay.  The result is
rendered as one ASCII lane per node -- the same shape as the paper's
Figure 11 reconstruction of a message-reordering window.
"""

from __future__ import annotations

from typing import Optional

from repro.obs.analyze.order import cross_edge
from repro.obs.analyze.trace import Trace, TraceError

_CROSS_KIND = {"deliver": "msg", "resume": "cont", "replay": "queue"}

# Event kinds that trigger the handler_entry that immediately follows
# them on the same node: a delivery, a queue redelivery, or a fault trap.
_TRIGGERS = ("deliver", "replay", "fault_begin")


def _context_maps(trace: Trace):
    """Per-event handler context, from one pass in file order.

    Returns (enclosing, last_entry, prev_on_node): the handler_entry
    whose span covers each event (None outside spans), the most recent
    handler_entry on the event's node (even if its span closed), and the
    immediately preceding event on the same node.
    """
    enclosing: list[Optional[int]] = [None] * len(trace.events)
    last_entry: list[Optional[int]] = [None] * len(trace.events)
    prev_on_node: list[Optional[int]] = [None] * len(trace.events)
    open_entry: dict[int, int] = {}
    recent_entry: dict[int, int] = {}
    last_seen: dict[int, int] = {}
    for index, event in enumerate(trace.events):
        node = trace.location(index)
        if node is None:
            continue
        prev_on_node[index] = last_seen.get(node)
        last_seen[node] = index
        kind = event["ev"]
        if kind == "handler_entry":
            open_entry[node] = index
            recent_entry[node] = index
        else:
            enclosing[index] = open_entry.get(node)
            last_entry[index] = recent_entry.get(node)
            if kind == "handler_exit":
                open_entry.pop(node, None)
    return enclosing, last_entry, prev_on_node


def causal_chain(trace: Trace, target: int
                 ) -> tuple[list[int], list[tuple[int, int, str]]]:
    """The causal past of ``target`` that explains it.

    Returns (sorted event indices including the target, edges) where
    each edge is (src index, dst index, kind) with kind one of ``msg``,
    ``cont``, ``queue``, ``trigger`` (the event that caused a handler
    dispatch), and ``po`` (program-order context: the handler whose
    execution emitted the event).
    """
    if not (0 <= target < len(trace.events)):
        raise TraceError(
            f"{trace.path}: event index {target} out of range "
            f"(trace has {len(trace.events)} events)")
    if trace.location(target) is None:
        raise TraceError(
            f"{trace.path}: event {target} "
            f"({trace.events[target]['ev']}) has no timeline location")
    enclosing, last_entry, prev_on_node = _context_maps(trace)

    def predecessors(index: int) -> list[tuple[int, str]]:
        event = trace.events[index]
        kind = event["ev"]
        found: list[tuple[int, str]] = []
        source = cross_edge(trace, index)
        if source is not None:
            found.append((source, _CROSS_KIND[kind]))
        if kind == "handler_entry":
            previous = prev_on_node[index]
            if previous is not None:
                trigger = trace.events[previous]
                if (trigger["ev"] in _TRIGGERS
                        and trigger["block"] == event["block"]):
                    found.append((previous, "trigger"))
        elif kind == "replay":
            # Caused by the handler whose state change freed the queue
            # (its span already closed, so use the most recent entry).
            if last_entry[index] is not None:
                found.append((last_entry[index], "po"))
        elif kind == "fault_end":
            for begin, end in trace.fault_pairs:
                if end == index:
                    found.append((begin, "po"))
                    break
        elif enclosing[index] is not None:
            found.append((enclosing[index], "po"))
        return found

    members = {target}
    edges: list[tuple[int, int, str]] = []
    worklist = [target]
    while worklist:
        index = worklist.pop()
        for source, kind in predecessors(index):
            edges.append((source, index, kind))
            if source not in members:
                members.add(source)
                worklist.append(source)
    edges.sort()
    return sorted(members), edges


def format_causal(trace: Trace, target: int) -> str:
    """Render the chain as one timeline lane per node (Figure 11)."""
    members, edges = causal_chain(trace, target)
    nodes = sorted({trace.location(i) for i in members})
    lane_of = {node: lane for lane, node in enumerate(nodes)}
    descriptions = {i: trace.describe(i) for i in members}
    width = max(22, max(len(d) for d in descriptions.values()) + 4)

    lines = [
        f"causal chain: {len(members)} events ending at "
        f"#{target} ({trace.describe(target)})",
        "",
        "   #       t  " + "".join(
            f"node {node}".ljust(width) for node in nodes),
        "  --  ------  " + "".join(("-" * (width - 2) + "  ")
                                   for _ in nodes),
    ]
    for index in members:
        lane = lane_of[trace.location(index)]
        marker = "*" if index == target else " "
        text = descriptions[index] + (" <-- target" if index == target
                                      else "")
        lines.append(
            f"{marker}{index:>3}  {trace.events[index].get('t', 0):>6}  "
            + " " * (width * lane) + text)
    cross = [e for e in edges if e[2] in ("msg", "cont", "queue",
                                          "trigger")]
    if cross:
        lines.append("")
        lines.append("cross edges (happens-before):")
        for source, dest, kind in cross:
            lines.append(f"  {kind:8}#{source:>3} -> #{dest:<3} "
                         f"{descriptions[source]}  ==>  "
                         f"{descriptions[dest]}")
    return "\n".join(line.rstrip() for line in lines) + "\n"
