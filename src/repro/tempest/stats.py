"""Measurement counters for simulated runs.

These back the columns of Tables 1 and 2: execution time in cycles,
continuation/queue records allocated, and the fraction of time spent
waiting on faults and message handlers.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.runtime.context import RuntimeCounters


@dataclass
class NodeStats:
    """Per-node accounting."""

    node: int
    counters: RuntimeCounters = field(default_factory=RuntimeCounters)
    protocol_cycles: int = 0     # time inside protocol handlers
    app_cycles: int = 0          # time executing application operations
    fault_wait_cycles: int = 0   # time the app thread sat blocked on a fault
    barrier_wait_cycles: int = 0
    faults: int = 0
    read_hits: int = 0
    write_hits: int = 0
    finish_time: int = 0


@dataclass
class MachineStats:
    """Whole-machine accounting, aggregated from the nodes."""

    nodes: list[NodeStats] = field(default_factory=list)
    execution_cycles: int = 0
    messages: int = 0

    @property
    def counters(self) -> RuntimeCounters:
        total = RuntimeCounters()
        for node in self.nodes:
            total.merge(node.counters)
        return total

    @property
    def alloc_records(self) -> int:
        """Continuation + queue records allocated on all nodes."""
        return self.counters.alloc_records

    @property
    def fault_time_fraction(self) -> float:
        """Unweighted average across nodes of each node's own
        (fault wait time / run time) fraction.

        A node's run time is its ``finish_time`` when recorded (nodes
        finish at different times, so dividing everyone by the global
        ``execution_cycles`` would understate the fault share of nodes
        that finished early); ``execution_cycles`` is the fallback for
        nodes without a finish time.  Nodes with no run time at all
        contribute a fraction of zero rather than dividing by zero.
        """
        if not self.nodes:
            return 0.0
        fractions = []
        for node in self.nodes:
            run_time = node.finish_time or self.execution_cycles
            if run_time <= 0:
                fractions.append(0.0)
            else:
                fractions.append(node.fault_wait_cycles / run_time)
        return sum(fractions) / len(fractions)

    @property
    def total_faults(self) -> int:
        return sum(node.faults for node in self.nodes)

    def summary(self) -> str:
        counters = self.counters
        return (
            f"cycles={self.execution_cycles} "
            f"msgs={self.messages} "
            f"faults={self.total_faults} "
            f"cont_allocs={counters.cont_allocs} "
            f"queue_allocs={counters.queue_allocs} "
            f"fault_time={self.fault_time_fraction:.1%}"
        )

    def to_metrics(self, protocol: str = ""):
        """Export these stats as a :class:`~repro.obs.MetricsRegistry`.

        The registry *delegates* to the same counters ``summary()``
        reads, so the exported totals always match the Table 1/2
        numbers; per-handler breakdowns are only present when a run was
        observed with a metrics-carrying Observer (the machine fills
        those in directly).
        """
        from repro.obs.metrics import MetricsRegistry

        registry = MetricsRegistry(protocol)
        registry.ingest_counters(self.counters)
        registry.gauge("execution_cycles", self.execution_cycles)
        registry.gauge("messages", self.messages)
        registry.gauge("faults", self.total_faults)
        registry.gauge("fault_time_fraction",
                       round(self.fault_time_fraction, 4))
        return registry
