"""Measurement counters for simulated runs.

These back the columns of Tables 1 and 2: execution time in cycles,
continuation/queue records allocated, and the fraction of time spent
waiting on faults and message handlers.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.runtime.context import RuntimeCounters


@dataclass
class NodeStats:
    """Per-node accounting."""

    node: int
    counters: RuntimeCounters = field(default_factory=RuntimeCounters)
    protocol_cycles: int = 0     # time inside protocol handlers
    app_cycles: int = 0          # time executing application operations
    fault_wait_cycles: int = 0   # time the app thread sat blocked on a fault
    barrier_wait_cycles: int = 0
    faults: int = 0
    read_hits: int = 0
    write_hits: int = 0
    finish_time: int = 0


@dataclass
class MachineStats:
    """Whole-machine accounting, aggregated from the nodes."""

    nodes: list[NodeStats] = field(default_factory=list)
    execution_cycles: int = 0
    messages: int = 0

    @property
    def counters(self) -> RuntimeCounters:
        total = RuntimeCounters()
        for node in self.nodes:
            total.merge(node.counters)
        return total

    @property
    def alloc_records(self) -> int:
        """Continuation + queue records allocated on all nodes."""
        return self.counters.alloc_records

    @property
    def fault_time_fraction(self) -> float:
        """Average across nodes of (fault wait time / execution time)."""
        if not self.nodes or self.execution_cycles == 0:
            return 0.0
        fractions = [
            node.fault_wait_cycles / self.execution_cycles
            for node in self.nodes
        ]
        return sum(fractions) / len(fractions)

    @property
    def total_faults(self) -> int:
        return sum(node.faults for node in self.nodes)

    def summary(self) -> str:
        counters = self.counters
        return (
            f"cycles={self.execution_cycles} "
            f"msgs={self.messages} "
            f"faults={self.total_faults} "
            f"cont_allocs={counters.cont_allocs} "
            f"queue_allocs={counters.queue_allocs} "
            f"fault_time={self.fault_time_fraction:.1%}"
        )
