"""The interconnection network: latency, and optional message reordering.

Section 2 highlights that "message reordering in a network further adds
to the complexity" of protocols; Section 7 limits the amount of
reordering when model checking.  The simulated network supports both
regimes: FIFO channels (per src->dst pair) and bounded random reordering
driven by a seeded RNG, so simulations are reproducible.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.runtime.context import Message


@dataclass
class NetworkConfig:
    latency: int = 220       # base transit cycles
    jitter: int = 0          # max extra random delay (enables reordering)
    fifo: bool = True        # enforce per-channel FIFO delivery
    seed: int = 12345


class Network:
    """Computes arrival times; the machine's event queue does delivery.

    With a :class:`repro.faults.FaultPlan` attached the network becomes
    lossy: ``deliveries`` consults the plan (whose decisions come from
    the plan's own RNG, never this network's jitter RNG) and may drop,
    duplicate, delay, or stall-defer each message.  Without a plan,
    ``arrival_time`` is the whole story and behaviour is bit-for-bit
    what it was before fault injection existed.
    """

    def __init__(self, config: NetworkConfig, plan=None):
        self.config = config
        self.plan = plan
        self._rng = random.Random(config.seed)
        # Last scheduled arrival per (src, dst), for FIFO clamping.
        self._last_arrival: dict[tuple[int, int], int] = {}
        self.messages_carried = 0

    def arrival_time(self, message: Message, send_time: int) -> int:
        """When ``message``, injected at ``send_time``, reaches its target."""
        delay = self.config.latency
        if self.config.jitter > 0:
            delay += self._rng.randrange(self.config.jitter + 1)
        arrival = send_time + delay
        if self.config.fifo:
            channel = (message.src, message.dst)
            arrival = max(arrival, self._last_arrival.get(channel, 0) + 1)
            self._last_arrival[channel] = arrival
        self.messages_carried += 1
        return arrival

    def deliveries(self, message: Message, send_time: int) -> list:
        """Fault-aware arrivals for one send: ``[(arrival, kind)]`` with
        kind ``"deliver"`` or ``"dup"``; an empty list means dropped.

        A dropped message still travels the wire (it consumes a jitter
        draw and advances the FIFO clamp) -- it is lost at the receiver,
        so the timing of every *other* message is unchanged whether or
        not the drop happened.
        """
        plan = self.plan
        decision = plan.decide(message, send_time)
        arrival = self.arrival_time(message, send_time)
        if decision.drop:
            return []
        arrival = plan.hold_until(message.dst, arrival + decision.extra_delay)
        out = [(arrival, "deliver")]
        for _ in range(decision.duplicates):
            dup_arrival = plan.hold_until(
                message.dst, self.arrival_time(message, send_time))
            out.append((dup_arrival, "dup"))
        return out
