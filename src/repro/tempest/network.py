"""The interconnection network: latency, and optional message reordering.

Section 2 highlights that "message reordering in a network further adds
to the complexity" of protocols; Section 7 limits the amount of
reordering when model checking.  The simulated network supports both
regimes: FIFO channels (per src->dst pair) and bounded random reordering
driven by a seeded RNG, so simulations are reproducible.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.runtime.context import Message


@dataclass
class NetworkConfig:
    latency: int = 220       # base transit cycles
    jitter: int = 0          # max extra random delay (enables reordering)
    fifo: bool = True        # enforce per-channel FIFO delivery
    seed: int = 12345


class Network:
    """Computes arrival times; the machine's event queue does delivery."""

    def __init__(self, config: NetworkConfig):
        self.config = config
        self._rng = random.Random(config.seed)
        # Last scheduled arrival per (src, dst), for FIFO clamping.
        self._last_arrival: dict[tuple[int, int], int] = {}
        self.messages_carried = 0

    def arrival_time(self, message: Message, send_time: int) -> int:
        """When ``message``, injected at ``send_time``, reaches its target."""
        delay = self.config.latency
        if self.config.jitter > 0:
            delay += self._rng.randrange(self.config.jitter + 1)
        arrival = send_time + delay
        if self.config.fifo:
            channel = (message.src, message.dst)
            arrival = max(arrival, self._last_arrival.get(channel, 0) + 1)
            self._last_arrival[channel] = arrival
        self.messages_carried += 1
        return arrival
