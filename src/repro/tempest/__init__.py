"""A Tempest-interface multiprocessor simulator.

The paper runs its protocols on Blizzard-E (a CM-5 implementation of the
Tempest interface) and, for the analysis in Section 6, on "a detailed
architectural simulator of a multiprocessor that implements the Tempest
interface".  This package is that class of substrate: fine-grain access
control, user-level message passing, and per-block protocol dispatch,
with an explicit cycle cost model.
"""

from repro.tempest.machine import Machine, MachineConfig, SimResult
from repro.tempest.network import Network, NetworkConfig
from repro.tempest.memory import AccessTag, BlockStore
from repro.tempest.stats import MachineStats, NodeStats

__all__ = [
    "Machine",
    "MachineConfig",
    "SimResult",
    "Network",
    "NetworkConfig",
    "AccessTag",
    "BlockStore",
    "MachineStats",
    "NodeStats",
]
