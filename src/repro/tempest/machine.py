"""The simulated multiprocessor: event loop, network, and barriers.

Discrete-event simulation with a single global event queue.  Events are
message deliveries and application-thread continuations; each node's
``busy_until`` serialises the work mapped onto its single processor.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.faults import FaultPlan, RecoveryConfig
from repro.lang.errors import RuntimeProtocolError, SimulationLimitError
from repro.obs import Observer
from repro.runtime.context import CostModel, Message
from repro.runtime.protocol import CompiledProtocol
from repro.tempest.memory import AccessTag
from repro.tempest.network import Network, NetworkConfig
from repro.tempest.node import Node
from repro.tempest.stats import MachineStats


@dataclass
class MachineConfig:
    """Configuration of the simulated machine."""

    n_nodes: int = 8
    n_blocks: int = 64
    block_words: int = 4
    costs: CostModel = field(default_factory=CostModel)
    network: NetworkConfig = field(default_factory=NetworkConfig)
    max_events: int = 5_000_000
    capture_prints: bool = False
    # Optional custom home mapping (block -> node); default is striping.
    home_map: Optional[Callable[[int], int]] = None
    # Observability: None (the default) runs fully uninstrumented and is
    # guaranteed cycle-identical to a build without repro.obs.
    observer: Optional[Observer] = None
    # Fault injection: None (the default) keeps the perfect network and
    # the exact pre-fault-injection event stream.  With a plan attached,
    # messages get wire sequence numbers and the network may drop,
    # duplicate, delay, or stall-defer them.
    faults: Optional[FaultPlan] = None
    # Timeout/retry/dedup recovery at the node layer; independent of
    # ``faults`` (retries also help on merely-slow networks).
    recovery: Optional[RecoveryConfig] = None


@dataclass
class SimResult:
    """Outcome of a simulated run."""

    stats: MachineStats
    cycles: int

    def __repr__(self) -> str:
        return f"<SimResult {self.stats.summary()}>"


class Machine:
    """A multiprocessor running one compiled protocol and one program
    per node."""

    def __init__(self, protocol: CompiledProtocol, programs: list[list],
                 config: Optional[MachineConfig] = None,
                 support: Optional[dict] = None):
        self.protocol = protocol
        self.config = config or MachineConfig()
        if len(programs) != self.config.n_nodes:
            raise ValueError(
                f"need {self.config.n_nodes} programs, got {len(programs)}")
        self.support = support or {}
        self.network = Network(self.config.network, plan=self.config.faults)
        # Wire sequence numbers exist only when faults or recovery are
        # on; otherwise messages keep seq=None and the whole fault path
        # is dead code.
        self._stamp_seqs = (self.config.faults is not None
                            or self.config.recovery is not None)
        self._wire_seq = 0
        # An Observer whose channels are all off (null sink, no metrics)
        # is dropped here so every emit site takes the uninstrumented
        # ``obs is None`` fast path -- see BENCH_obs_overhead.json.
        observer = self.config.observer
        if observer is not None and not observer.active:
            observer = None
        self.obs = observer
        self.printed: list = []
        self._events: list = []
        self._seq = 0
        self._barrier_waiting: list[tuple[int, int]] = []  # (node, time)
        # Tracing bookkeeping (touched only when self.obs is set):
        # highest event seq delivered per channel, for the reorder flag,
        # and the event-queue high-water mark.
        self._delivered_seq_hwm: dict[tuple[int, int], int] = {}
        self._event_queue_hwm = 0
        self.nodes = [
            Node(self, node_id, protocol, programs[node_id])
            for node_id in range(self.config.n_nodes)
        ]

    # -- topology ---------------------------------------------------------

    def home_of(self, block: int) -> int:
        if self.config.home_map is not None:
            return self.config.home_map(block)
        return block % self.config.n_nodes

    def initial_state_for(self, node: int, block: int):
        """(state, info, access) for a block record created on ``node``."""
        protocol = self.protocol
        if self.home_of(block) == node:
            return (protocol.initial_home_state, protocol.initial_info(),
                    AccessTag.READ_WRITE)
        return (protocol.initial_cache_state, protocol.initial_info(),
                AccessTag.INVALID)

    # -- event queue ---------------------------------------------------------

    def _push(self, time: int, kind: str, payload) -> int:
        self._seq += 1
        heapq.heappush(self._events, (time, self._seq, kind, payload))
        return self._seq

    def next_wire_seq(self) -> Optional[int]:
        if not self._stamp_seqs:
            return None
        self._wire_seq += 1
        return self._wire_seq

    def inject(self, message: Message, send_time: int) -> None:
        """Called by node contexts to transmit a protocol message."""
        network = self.network
        obs = self.obs
        if network.plan is None:
            arrival = network.arrival_time(message, send_time)
            seq = self._push(arrival, "deliver", message)
            if obs is not None:
                obs.send(seq, message.tag, message.block, message.src,
                         message.dst, message.data is not None, send_time,
                         arrival)
                if len(self._events) > self._event_queue_hwm:
                    self._event_queue_hwm = len(self._events)
            return
        arrivals = network.deliveries(message, send_time)
        if not arrivals:
            if obs is not None:
                obs.net_drop(message.tag, message.block, message.src,
                             message.dst, send_time)
            return
        for arrival, how in arrivals:
            seq = self._push(arrival, "deliver", message)
            if obs is not None:
                if how == "deliver":
                    obs.send(seq, message.tag, message.block, message.src,
                             message.dst, message.data is not None,
                             send_time, arrival)
                else:
                    obs.net_dup(seq, message.tag, message.block,
                                message.src, message.dst, send_time,
                                arrival)
        if obs is not None and len(self._events) > self._event_queue_hwm:
            self._event_queue_hwm = len(self._events)

    def schedule_app(self, node_id: int, at_time: int) -> None:
        self._push(at_time, "app", node_id)

    # -- barriers ----------------------------------------------------------------

    def barrier_arrive(self, node_id: int, at_time: int) -> bool:
        """Returns True if this arrival releases the barrier (caller
        continues synchronously); otherwise the node waits."""
        self._barrier_waiting.append((node_id, at_time))
        active = [n for n in self.nodes if not n.finished]
        if len(self._barrier_waiting) < len(active):
            return False
        release_time = max(t for _n, t in self._barrier_waiting)
        for waiting_id, arrive_time in self._barrier_waiting:
            node = self.nodes[waiting_id]
            node.at_barrier = False
            node.stats.barrier_wait_cycles += release_time - arrive_time
            if waiting_id != node_id:
                node.busy_until = max(node.busy_until, release_time)
                self.schedule_app(waiting_id, release_time)
        self._barrier_waiting = []
        self.nodes[node_id].busy_until = max(
            self.nodes[node_id].busy_until, release_time)
        return True

    # -- main loop -----------------------------------------------------------------

    def run(self) -> SimResult:
        """Run to completion; raises on protocol error or deadlock."""
        for node_id in range(self.config.n_nodes):
            self.schedule_app(node_id, 0)

        processed = 0
        obs = self.obs
        while self._events:
            processed += 1
            if processed > self.config.max_events:
                raise SimulationLimitError(
                    f"simulation exceeded {self.config.max_events} events "
                    f"at cycle {self._events[0][0]} with "
                    f"{len(self._events)} events pending; livelock?")
            time, seq, kind, payload = heapq.heappop(self._events)
            if kind == "deliver":
                message: Message = payload
                if obs is not None:
                    channel = (message.src, message.dst)
                    hwm = self._delivered_seq_hwm.get(channel, 0)
                    obs.deliver(seq, message.tag, message.block,
                                message.src, message.dst, time,
                                reorder=seq < hwm)
                    if seq > hwm:
                        self._delivered_seq_hwm[channel] = seq
                self.nodes[message.dst].handle_message(message, time)
            elif kind == "app":
                self.nodes[payload].run_app(time)
            elif kind == "watchdog":
                node_id, block, epoch, attempt = payload
                self.nodes[node_id].watchdog_fire(block, epoch, attempt,
                                                  time)
            else:  # pragma: no cover - exhaustive over event kinds
                raise RuntimeProtocolError(f"unknown event {kind!r}")

        self._check_deadlock()
        return SimResult(stats=self._collect_stats(),
                         cycles=self._execution_time())

    def _check_deadlock(self) -> None:
        stuck = [n for n in self.nodes if not n.finished]
        if not stuck:
            return
        finished = [n.node_id for n in self.nodes if n.finished]
        lines = ["deadlock: event queue drained but "
                 f"{len(stuck)} of {len(self.nodes)} nodes are unfinished"]
        for node in stuck:
            if node.blocked_on is not None:
                record = node.store.record(node.blocked_on)
                status = (f"blocked on block {node.blocked_on} "
                          f"(state {record.state_name})")
                if node.retries_exhausted:
                    status += (", retries exhausted after "
                               f"{node.stats.counters.retries} re-sends")
            elif node.at_barrier:
                status = "waiting at a barrier"
            else:
                status = "stalled"
            lines.append(f"  node {node.node_id}: pc={node.pc} {status}")
            transients = []
            for record in node.store.records():
                state = self.protocol.states.get(record.state_name)
                transient = state is not None and state.transient
                if transient or record.deferred:
                    entry = f"block {record.block} in {record.state_name}"
                    if record.deferred:
                        entry += (f" ({len(record.deferred)} queued: "
                                  + ", ".join(
                                      m.tag for m in record.deferred[:3])
                                  + ("..." if len(record.deferred) > 3
                                     else "") + ")")
                    transients.append(entry)
            if transients:
                lines.append("    " + "; ".join(transients))
        if finished:
            lines.append(f"  finished nodes: {finished}")
        plan = self.network.plan
        if plan is not None:
            lines.append(f"  fault ledger: {plan.ledger.summary()}")
        raise RuntimeProtocolError("\n".join(lines))

    def _execution_time(self) -> int:
        return max((n.busy_until for n in self.nodes), default=0)

    def _collect_stats(self) -> MachineStats:
        stats = MachineStats(nodes=[n.stats for n in self.nodes])
        stats.execution_cycles = self._execution_time()
        stats.messages = self.network.messages_carried
        obs = self.obs
        if obs is not None and obs.metrics is not None:
            obs.metrics.ingest_counters(stats.counters)
            obs.metrics.gauge("execution_cycles", stats.execution_cycles)
            obs.metrics.gauge("messages", stats.messages)
            obs.metrics.gauge("faults", stats.total_faults)
            obs.metrics.gauge("fault_time_fraction",
                              round(stats.fault_time_fraction, 4))
            obs.metrics.gauge("event_queue_hwm", self._event_queue_hwm)
        return stats

    # -- post-run assertions (used by tests) -------------------------------------

    def assert_quiescent(self) -> None:
        """After a run: no transient states, no deferred messages."""
        for node in self.nodes:
            for record in node.store.records():
                state = self.protocol.states[record.state_name]
                if state.transient:
                    raise AssertionError(
                        f"node {node.node_id} block {record.block} ended in "
                        f"transient state {record.state_name}")
                if record.deferred:
                    raise AssertionError(
                        f"node {node.node_id} block {record.block} has "
                        f"{len(record.deferred)} undelivered deferred "
                        "messages")

    def coherence_snapshot(self) -> dict[int, dict]:
        """Access-tag view per block, for coherence invariant checks."""
        view: dict[int, dict] = {}
        for node in self.nodes:
            for record in node.store.records():
                entry = view.setdefault(record.block, {})
                entry[node.node_id] = record.access
        return view

    def assert_coherent(self) -> None:
        """Single-writer / multiple-reader invariant over access tags."""
        for block, entry in self.coherence_snapshot().items():
            writers = [n for n, a in entry.items() if a is AccessTag.READ_WRITE]
            readers = [n for n, a in entry.items() if a is AccessTag.READ_ONLY]
            if len(writers) > 1:
                raise AssertionError(
                    f"block {block} writable on nodes {writers}")
            if writers and readers:
                raise AssertionError(
                    f"block {block} writable on {writers} while readable "
                    f"on {readers}")
