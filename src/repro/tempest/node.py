"""A simulated processor node: protocol engine plus application thread.

Each node owns a :class:`~repro.tempest.memory.BlockStore`, runs compiled
protocol handlers through the shared interpreter, and executes its
application program (a list of operations produced by
:mod:`repro.workloads`).  Protocol processing and application execution
share the node's single processor, serialised by ``busy_until``.
"""

from __future__ import annotations

from collections import deque
from typing import Optional

from repro.lang.errors import RuntimeProtocolError
from repro.runtime.context import Message, ProtocolContext
from repro.runtime.exec import HandlerInterpreter
from repro.tempest.memory import (
    ACCESS_CHANGE_RESULT,
    BlockStore,
    fault_event_for,
)
from repro.tempest.stats import NodeStats


class NodeContext(ProtocolContext):
    """ProtocolContext implementation backed by a simulator node."""

    def __init__(self, node: "Node"):
        self._node = node
        self._message: Optional[Message] = None
        self.now = 0
        self.counters = node.stats.counters
        self.costs = node.machine.config.costs
        self.obs = node.machine.obs

    def begin(self, message: Message, start_time: int) -> None:
        """Position the context for one protocol action."""
        self._message = message
        self.now = start_time

    # -- identity ---------------------------------------------------------

    @property
    def node(self) -> int:
        return self._node.node_id

    @property
    def current_message(self) -> Message:
        assert self._message is not None
        return self._message

    def home_node(self, block: int) -> int:
        return self._node.machine.home_of(block)

    # -- block record --------------------------------------------------------

    def _record(self):
        return self._node.store.record(self.current_message.block)

    def get_state(self) -> tuple[str, tuple]:
        record = self._record()
        return record.state_name, record.state_args

    def set_state(self, state_name: str, args: tuple) -> None:
        record = self._record()
        obs = self.obs
        if obs is not None and (
                (state_name, args) != (record.state_name, record.state_args)):
            obs.state_change(self.node, record.block, record.state_name,
                             state_name, args, self.now)
        record.set_state(state_name, args)

    def get_info(self, name: str):
        return self._record().info[name]

    def set_info(self, name: str, value) -> None:
        self._record().info[name] = value

    # -- Tempest mechanisms ------------------------------------------------------

    def send(self, dst: int, tag: str, block: int, payload: tuple,
             with_data: bool) -> None:
        data = None
        if with_data:
            data = self._node.store.record(block).data
            self.counters.data_messages_sent += 1
        self.counters.messages_sent += 1
        node = self._node
        message = Message(tag, block, src=node.node_id, dst=dst,
                          payload=payload, data=data,
                          seq=node.machine.next_wire_seq())
        if node.recovery is not None:
            node.record_output(message)
        node.machine.inject(message, self.now)

    def access_change(self, block: int, mode: str) -> None:
        tag = ACCESS_CHANGE_RESULT.get(mode)
        if tag is None:
            self.error(f"unknown access mode {mode!r}")
            return
        self._node.store.record(block).access = tag

    def recv_data(self, block: int, mode: str) -> None:
        message = self.current_message
        if message.data is None:
            self.error(
                f"RecvData but message {message.tag} carries no data")
            return
        record = self._node.store.record(block)
        record.data = message.data
        self.access_change(block, mode)

    def read_word(self, block: int, addr: int):
        data = self._node.store.record(block).data
        if not (0 <= addr < len(data)):
            self.error(f"ReadWord offset {addr} out of block bounds")
            return 0
        return data[addr]

    def write_word(self, block: int, addr: int, value) -> None:
        record = self._node.store.record(block)
        if not (0 <= addr < len(record.data)):
            self.error(f"WriteWord offset {addr} out of block bounds")
            return
        data = list(record.data)
        data[addr] = value
        record.data = tuple(data)

    def enqueue_current(self) -> None:
        self.counters.queue_allocs += 1
        record = self._record()
        record.defer(self.current_message)
        obs = self.obs
        if obs is not None:
            obs.queue_defer(self.node, record.block,
                            self.current_message.tag,
                            len(record.deferred), self.now)

    def retry_queued(self, block: int) -> None:
        self._node.store.record(block).state_changed = True

    def wakeup(self, block: int) -> None:
        self._node.request_wakeup(block, self.now)

    def error(self, message: str) -> None:
        self.counters.errors += 1
        obs = self.obs
        if obs is not None:
            obs.error(self._node.node_id, message, self.now)
        raise RuntimeProtocolError(
            f"[node {self._node.node_id} t={self.now}] {message}")

    def debug_print(self, values: list) -> None:
        if self._node.machine.config.capture_prints:
            self._node.machine.printed.append(
                (self._node.node_id, self.now, tuple(values)))

    def support_call(self, name: str, args: list):
        registry = self._node.machine.support
        fn = registry.get(name)
        if fn is None:
            return super().support_call(name, args)
        return fn(self, *args)

    def support_const(self, name: str):
        registry = self._node.machine.support
        if name not in registry:
            return super().support_const(name)
        return registry[name]

    # -- accounting -----------------------------------------------------------

    def charge(self, cycles: int) -> None:
        self.now += cycles


class Node:
    """One simulated processor."""

    def __init__(self, machine, node_id: int, protocol, program: list):
        self.machine = machine
        self.node_id = node_id
        self.protocol = protocol
        self.program = program
        self.pc = 0
        self.busy_until = 0
        self.blocked_on: Optional[int] = None
        self.fault_start = 0
        self.fault_block = -1  # block of the most recent fault (tracing)
        self.wake_pending = False
        self._in_app_fault = False
        self._pending_access: Optional[tuple] = None  # faulted read/write op
        self.at_barrier = False
        self.finished = not program
        self.observed: list[tuple[int, object]] = []  # logged read values
        self.stats = NodeStats(node_id)
        # Timeout/retry/dedup recovery (None = all of it disabled).
        self.recovery = machine.config.recovery
        self.retries_exhausted = False
        self._fault_epoch = 0                  # distinguishes fault instances
        self._fault_requests: dict[int, list] = {}   # block -> captured sends
        # At-least-once dedup: (src, seq) -> outputs of first processing.
        self._reply_cache: dict[tuple[int, int], list] = {}
        self._reply_order: deque = deque()
        self.store = BlockStore(
            node_id,
            machine.config.n_blocks,
            machine.config.block_words,
            machine.initial_state_for,
            machine.home_of,
        )
        self.ctx = NodeContext(self)
        self.interp = HandlerInterpreter(protocol, self.ctx)

    # -- protocol-side execution ----------------------------------------------

    def handle_message(self, message: Message, arrive_time: int) -> None:
        """Run one delivered message (plus any queue redelivery) atomically."""
        recovery = self.recovery
        if (recovery is not None and recovery.dedup
                and message.seq is not None):
            key = (message.src, message.seq)
            cached = self._reply_cache.get(key)
            if cached is not None:
                self._absorb_duplicate(cached, arrive_time)
                return
            self._remember(key)
        start = max(arrive_time, self.busy_until)
        end = self._protocol_action(message, start)
        self.busy_until = end
        self.stats.protocol_cycles += end - start

    def _remember(self, key: tuple[int, int]) -> None:
        """Register a first delivery; its outputs accumulate under ``key``
        (including outputs produced later, when a deferred delivery is
        finally replayed from the block's queue)."""
        self._reply_cache[key] = []
        self._reply_order.append(key)
        if len(self._reply_order) > self.recovery.dedup_cache:
            self._reply_cache.pop(self._reply_order.popleft(), None)

    def _absorb_duplicate(self, cached: list, arrive_time: int) -> None:
        """A delivery already processed once: skip the dispatch and re-send
        the outputs the first processing produced (same wire seqs, so the
        replay cascades hop by hop toward whoever lost a message)."""
        self.stats.counters.dups_absorbed += 1
        start = max(arrive_time, self.busy_until)
        now = start + self.machine.config.costs.dispatch
        for reply in tuple(cached):
            self.machine.inject(reply, now)
        self.busy_until = now
        self.stats.protocol_cycles += now - start

    def record_output(self, message: Message) -> None:
        """Attribute a sent message to the delivery being handled: app
        faults capture it for watchdog retry, stamped deliveries cache it
        for duplicate absorption."""
        cur = self.ctx.current_message
        if cur.seq is None:
            # An access fault or program event (self-dispatched,
            # unstamped): this send is part of the retryable request set.
            if cur.src == self.node_id and cur.dst == self.node_id:
                self._fault_requests.setdefault(
                    cur.block, []).append(message)
            return
        if self.recovery.dedup:
            cached = self._reply_cache.get((cur.src, cur.seq))
            if cached is not None:
                cached.append(message)

    def watchdog_fire(self, block: int, epoch: int, attempt: int,
                      now: int) -> None:
        """A retry timer expired.  Stale timers (the fault completed, or a
        newer fault superseded it) are no-ops."""
        if (self.finished or self.blocked_on != block
                or self._fault_epoch != epoch):
            return
        recovery = self.recovery
        self.stats.counters.timeouts += 1
        obs = self.machine.obs
        if obs is not None:
            obs.timeout(self.node_id, block, attempt,
                        now - self.fault_start, now)
        if attempt > recovery.max_retries:
            self.retries_exhausted = True
            return
        state_name = self.store.record(block).state_name
        for message in self._fault_requests.get(block, ()):
            self.stats.counters.retries += 1
            if obs is not None:
                obs.retry(self.node_id, block, message.tag, message.dst,
                          attempt, now, state=state_name)
            self.machine.inject(message, now)
        delay = int(recovery.timeout * (recovery.backoff ** attempt))
        self.machine._push(now + delay, "watchdog",
                           (self.node_id, block, epoch, attempt + 1))

    def _protocol_action(self, message: Message, start: int) -> int:
        """Dispatch ``message`` then redeliver deferred messages enabled by
        any state change.  Returns the finishing time."""
        record = self.store.record(message.block)
        record.state_changed = False
        self.ctx.begin(message, start)
        self.interp.dispatch()
        now = self.ctx.now

        # Queue redelivery: each state change re-enables the deferred
        # messages queued while the block sat in an intermediate state.
        while record.state_changed and record.deferred:
            record.state_changed = False
            for deferred in record.drain_deferred():
                self.stats.counters.queue_frees += 1
                now += self.machine.config.costs.queue_free
                obs = self.ctx.obs
                if obs is not None:
                    obs.queue_replay(self.node_id, deferred.block,
                                     deferred.tag, deferred.src, now)
                self.ctx.begin(deferred, now)
                self.interp.dispatch()
                now = self.ctx.now
        return now

    def request_wakeup(self, block: int, at_time: int) -> None:
        """Protocol called WakeUp(block): unblock the app thread if it is
        waiting on this block."""
        if self.blocked_on != block:
            return  # spurious wakeup; the paper's WakeUp is also a no-op here
        self.blocked_on = None
        self.wake_pending = True
        # Complete the faulted access *now*: the protocol handler that
        # called WakeUp has just installed the data and access rights, so
        # the restarted load/store succeeds at this instant.  (Deferring
        # it to the app event would open an unbounded re-fault window when
        # an invalidation lands in between -- a livelock the real Blizzard
        # avoids the same way.)
        self._complete_pending_access(block)
        if not self._in_app_fault:
            # Woken by a later message handler: resume the app thread via
            # the event queue.  (Synchronous wakes continue inline.)
            self.machine.schedule_app(self.node_id, at_time)

    def _complete_pending_access(self, block: int) -> None:
        op = self._pending_access
        if op is None:
            return
        kind = op[0]
        record = self.store.record(block)
        fault = fault_event_for(record.access, kind == "write")
        if fault is not None:
            return  # access still insufficient: the op will re-fault
        self._pending_access = None
        if kind == "write":
            self.stats.write_hits += 1
            if len(op) > 2:
                data = list(record.data)
                data[0] = op[2]
                record.data = tuple(data)
        else:
            self.stats.read_hits += 1
            if len(op) > 2 and op[2] == "log":
                self.observed.append((block, record.data[0]))
        self.pc += 1

    # -- application-side execution ----------------------------------------------

    def run_app(self, start_time: int) -> None:
        """Execute application operations until a blocking point."""
        if self.finished:
            return
        if self.blocked_on is not None:
            return  # still waiting on a fault
        now = max(start_time, self.busy_until)
        if self.wake_pending:
            self.wake_pending = False
            self.stats.fault_wait_cycles += max(0, now - self.fault_start)
            obs = self.machine.obs
            if obs is not None:
                obs.fault_end(self.node_id, self.fault_block,
                              self.fault_start, now)

        config = self.machine.config
        costs = config.costs
        while self.pc < len(self.program):
            op = self.program[self.pc]
            kind = op[0]
            if kind == "compute":
                # Yield to the event queue for the duration: messages
                # arriving during the computation must be handled before
                # the next application operation sees the block
                # (otherwise the app races ahead of the network in
                # simulated time).  busy_until stays put, so protocol
                # handlers interleave with the computation and push the
                # resumption point out by the time they consume.
                self.stats.app_cycles += op[1]
                self.pc += 1
                self.busy_until = now
                self.machine.schedule_app(self.node_id, now + op[1])
                return
            elif kind in ("read", "write"):
                block = op[1]
                record = self.store.record(block)
                fault = fault_event_for(record.access, kind == "write")
                if fault is None:
                    cost = costs.write_hit if kind == "write" else costs.read_hit
                    now += cost
                    if kind == "write":
                        self.stats.write_hits += 1
                        if len(op) > 2:  # ('write', block, value): store word 0
                            data = list(record.data)
                            data[0] = op[2]
                            record.data = tuple(data)
                    else:
                        self.stats.read_hits += 1
                        if len(op) > 2 and op[2] == "log":
                            self.observed.append((block, record.data[0]))
                    self.pc += 1
                    continue
                self._pending_access = op
                now = self._take_fault(fault, block, (), now)
                if self.blocked_on is not None:
                    self.busy_until = now
                    return
                # Woken synchronously; the access completed (and pc
                # advanced) inside request_wakeup.
            elif kind == "event":
                _kind, tag, block = op[0], op[1], op[2]
                payload = op[3] if len(op) > 3 else ()
                now = self._take_fault(tag, block, payload, now)
                self.pc += 1  # events are not retried
                if self.blocked_on is not None:
                    self.busy_until = now
                    return
            elif kind == "barrier":
                self.pc += 1
                self.busy_until = now
                released = self.machine.barrier_arrive(self.node_id, now)
                if not released:
                    self.at_barrier = True
                    return
                now = max(now, self.busy_until)
            else:
                raise RuntimeProtocolError(
                    f"unknown application operation {op!r}")
        self.finished = True
        self.busy_until = now
        self.stats.finish_time = now

    def _take_fault(self, tag: str, block: int, payload: tuple,
                    now: int) -> int:
        """Trap into the protocol for an access fault or program event.

        Blocks the app thread until the protocol calls WakeUp; the wake
        may happen inside this very action (local satisfaction) or later
        via a message handler.
        """
        self.stats.faults += 1
        now += self.machine.config.costs.fault_trap
        self.blocked_on = block
        self.fault_start = now
        self.fault_block = block
        recovery = self.recovery
        if recovery is not None:
            self._fault_epoch += 1
            self._fault_requests[block] = []
            self.retries_exhausted = False
        obs = self.machine.obs
        if obs is not None:
            obs.fault_begin(self.node_id, block, tag, now)
        message = Message(tag, block, src=self.node_id, dst=self.node_id,
                          payload=payload)
        self._in_app_fault = True
        try:
            end = self._protocol_action(message, now)
        finally:
            self._in_app_fault = False
        self.stats.protocol_cycles += end - now
        if self.blocked_on is None and self.wake_pending:
            # Satisfied without suspending: no fault wait time.
            self.wake_pending = False
            if obs is not None:
                obs.fault_end(self.node_id, block, self.fault_start, end,
                              sync=True)
        elif self.blocked_on is not None and recovery is not None:
            self.machine._push(end + recovery.timeout, "watchdog",
                               (self.node_id, block, self._fault_epoch, 1))
        return end
