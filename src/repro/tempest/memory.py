"""Fine-grain access control and per-node block storage.

Tempest's first mechanism (Section 2): "access control allows the system
to control access to memory by permitting read and write accesses only
for valid, cached data".  Each node tags every shared block with one of
three access levels; loads and stores check the tag and trap into the
protocol on a mismatch.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum, unique
from typing import Optional

from repro.lang.errors import RuntimeProtocolError
from repro.runtime.context import Message


@unique
class AccessTag(Enum):
    """Per-block access-control tag."""

    INVALID = "inv"
    READ_ONLY = "ro"
    READ_WRITE = "rw"

    def allows_read(self) -> bool:
        return self is not AccessTag.INVALID

    def allows_write(self) -> bool:
        return self is AccessTag.READ_WRITE


# AccessChange request constants (the Blk_* builtins) -> resulting tag.
ACCESS_CHANGE_RESULT = {
    "Blk_Invalidate": AccessTag.INVALID,
    "Blk_Upgrade_RO": AccessTag.READ_ONLY,
    "Blk_Upgrade_RW": AccessTag.READ_WRITE,
    "Blk_Downgrade_RO": AccessTag.READ_ONLY,
}

# Which fault event a load/store raises given the current tag.
def fault_event_for(tag: AccessTag, is_write: bool) -> Optional[str]:
    """The Tempest fault raised by an access, or None if it hits."""
    if is_write:
        if tag is AccessTag.READ_WRITE:
            return None
        if tag is AccessTag.READ_ONLY:
            return "WR_RO_FAULT"
        return "WR_FAULT"
    if tag.allows_read():
        return None
    return "RD_FAULT"


@dataclass
class BlockRecord:
    """One node's view of one shared block."""

    block: int
    state_name: str
    state_args: tuple = ()
    info: dict = field(default_factory=dict)
    access: AccessTag = AccessTag.INVALID
    data: tuple = ()
    deferred: list = field(default_factory=list)  # queued Messages
    state_changed: bool = False  # set by SetState; drives queue redelivery

    def set_state(self, name: str, args: tuple) -> None:
        if (name, args) != (self.state_name, self.state_args):
            self.state_changed = True
        self.state_name = name
        self.state_args = args

    def defer(self, message: Message) -> None:
        self.deferred.append(message)

    def drain_deferred(self) -> list:
        drained = self.deferred
        self.deferred = []
        return drained


class BlockStore:
    """All block records of one node, created lazily."""

    def __init__(self, node: int, n_blocks: int, block_words: int,
                 initial_state_for, home_of):
        self.node = node
        self.n_blocks = n_blocks
        self.block_words = block_words
        self._initial_state_for = initial_state_for
        self._home_of = home_of
        self._records: dict[int, BlockRecord] = {}

    def record(self, block: int) -> BlockRecord:
        if not (0 <= block < self.n_blocks):
            raise RuntimeProtocolError(
                f"block {block} out of range (0..{self.n_blocks - 1})")
        existing = self._records.get(block)
        if existing is not None:
            return existing
        state_name, info, access = self._initial_state_for(self.node, block)
        record = BlockRecord(
            block=block,
            state_name=state_name,
            info=info,
            access=access,
            data=(0,) * self.block_words,
        )
        self._records[block] = record
        return record

    def records(self) -> list[BlockRecord]:
        return [self._records[b] for b in sorted(self._records)]

    def is_home(self, block: int) -> bool:
        return self._home_of(block) == self.node
