"""The state-space atlas: what the explored graph *looks like*.

The ROADMAP's top item -- symmetry + partial-order reduction -- is a bet
about the *structure* of the reachable state space: that most states are
node-permutations of each other and most interleavings commute.  This
module is the measurement layer that turns the bet into numbers, the
same way :mod:`repro.obs.profile` did for hot-loop time:

- :class:`AtlasRecorder` -- the armed recorder both checkers thread
  through their hot loops.  It streams every explored transition
  ``(src_fingerprint, dst_fingerprint, label)`` and annotates every
  visited state (BFS depth, per-node protocol-state vector, network and
  deferred-queue occupancy, nonzero fault budget, symmetry-orbit key).
- :class:`StateAtlas` -- the schema-versioned JSON artifact (kind
  ``teapot-state-atlas`` v1; ``teapot verify --atlas-out``), rendered by
  ``teapot analyze atlas``, diffable with ``teapot analyze diff``, and
  exportable as filtered DOT/GraphML for small configs.
- analysis -- SCC decomposition with terminal-SCC (deadlock-basin)
  identification, depth/diameter profile, in/out-degree distributions,
  a per-(node, protocol-state) residence heatmap split
  transient-vs-stable, the **symmetry-orbit estimator** (states
  canonicalized under caching-node permutation, reusing
  :mod:`repro.verify.fingerprint`'s canonical encoding), and a sampled
  commuting-transition-pair estimate of POR headroom.

Sampling must not break engine invariance.  Above the caps a classic
reservoir would keep an arrival-order-dependent sample -- and arrival
order differs per worker count -- so the recorder keeps a *bottom-k
sketch* instead: the k records with the smallest content digests.
Fingerprints are uniform, so bottom-k is an unbiased uniform sample,
it is order-independent, and merging per-worker bottom-k sketches
yields exactly the global bottom-k.  A completed exploration therefore
produces the identical atlas at any worker count, truncated or not.

The orbit key is computed by the *production* symmetry canonicalizer
(:class:`repro.verify.fingerprint.SymmetryCanonicalizer` -- the same
complete typed remap ``CheckOptions.reduction.symmetry`` explores
under), so the atlas's estimated collapse ratio and the reduced run's
achieved ratio agree exactly on exhausted explorations
(``tools/state_atlas.py`` cross-checks them).  The one estimation
concession is the permutation cap: beyond ``DEFAULT_PERM_CAP`` free
permutations the sketch considers a prefix of the group and the ratio
becomes approximate; nothing is pruned by it here, so a capped map can
only misestimate the ratio, never corrupt a verdict.

Like the profiler, the recorder is a pure observer: absent (the
default) the checkers run the exact code they always ran -- verdicts,
fingerprint streams, and checkpoint bytes are byte-identical
(``tests/test_atlas.py`` pins this); armed, it never influences
exploration order or results.
"""

from __future__ import annotations

import heapq
import itertools
import json
import re
from collections import defaultdict
from hashlib import blake2b
from typing import Optional

from repro.obs.analyze.trace import TraceError
from repro.verify.fingerprint import (
    DEFAULT_PERM_CAP,
    SymmetryCanonicalizer,
    fingerprint,
)
from repro.verify.model import GlobalState

ATLAS_KIND = "teapot-state-atlas"
ATLAS_VERSION = 1

# Bottom-k sketch caps: exact below, uniform-sampled (with logged
# truncation) above.  A 3-node reordered exploration of the largest
# registered protocol exceeds these; Table-3-sized configs do not.
DEFAULT_STATE_CAP = 100_000
DEFAULT_EDGE_CAP = 250_000

# Historical name: the atlas grew the canonicalizer as a private orbit
# estimator; it was promoted to repro.verify.fingerprint when symmetry
# reduction landed in the checkers.  Kept as an alias because tests and
# downstream analysis code import it from here.
OrbitCanonicalizer = SymmetryCanonicalizer

# Checker rule labels (see ModelChecker._successors): deliveries and
# fault transitions carry the full message signature; application rules
# are "n{node}: {tag} b{block}".
_EDGE_LABEL = re.compile(
    r"^(deliver|drop|dup) (\S+) (\d+)->(\d+)\[(\d+)\] blk=(\d+)$")
_APP_LABEL = re.compile(r"^n(\d+): (.+?) b(\d+)$")


def parse_edge_label(label: str) -> tuple:
    """``(tag, sender, receiver, kind, block)`` from a rule label."""
    match = _EDGE_LABEL.match(label)
    if match is not None:
        return (match.group(2), int(match.group(3)), int(match.group(4)),
                match.group(1), int(match.group(6)))
    match = _APP_LABEL.match(label)
    if match is not None:
        node = int(match.group(1))
        return match.group(2), node, node, "app", int(match.group(3))
    return label, None, None, "other", None


class _BottomK:
    """The k entries with the smallest integer keys, mergeable.

    Keys here are 64-bit BLAKE2b digests, i.e. uniform, so "smallest k"
    is an unbiased uniform sample that does not depend on insertion
    order -- the property that keeps truncated atlases identical across
    engines and worker counts (a classic RNG reservoir would not be).
    """

    __slots__ = ("cap", "entries", "_heap", "seen")

    def __init__(self, cap: int):
        self.cap = max(1, int(cap))
        self.entries: dict[int, object] = {}
        self._heap: list[int] = []      # negated keys: a max-heap
        self.seen = 0

    def offer(self, key: int, value_fn) -> bool:
        """Count one observation and keep it if its key qualifies.
        ``value_fn`` is only called when the entry is kept."""
        self.seen += 1
        return self._insert(key, value_fn)

    def _insert(self, key: int, value_fn) -> bool:
        if key in self.entries:
            return False
        if len(self.entries) < self.cap:
            heapq.heappush(self._heap, -key)
        elif key >= -self._heap[0]:
            return False
        else:
            del self.entries[-heapq.heapreplace(self._heap, -key)]
        self.entries[key] = value_fn() if callable(value_fn) else value_fn
        return True

    def merge(self, seen: int, items) -> None:
        """Fold another sketch's (seen count, kept items) in; the merge
        of per-worker bottom-k sketches is exactly the global bottom-k."""
        self.seen += seen
        for key, value in items:
            self._insert(int(key), value)

    @property
    def truncated(self) -> bool:
        return self.seen > len(self.entries)


def _edge_digest(src_fp: int, dst_fp: int, label: str) -> int:
    """Content digest keying the edge sketch (order-independent)."""
    return int.from_bytes(
        blake2b(src_fp.to_bytes(8, "big") + dst_fp.to_bytes(8, "big")
                + label.encode("utf-8"), digest_size=8).digest(), "big")


class AtlasRecorder:
    """Armed recorder for one exploration run (see module docstring).

    The checkers call :meth:`visit`/:meth:`expand`/:meth:`edge` only
    when a recorder was passed; where a 64-bit fingerprint is already
    on hand (fingerprint mode, the parallel engine) they pass it so the
    recorder never recomputes one it can reuse.  For the parallel
    engine, forked workers inherit the template's recorder, accumulate
    privately, and ship :meth:`payload` back in the finish reply for
    :meth:`merge` on the master.
    """

    def __init__(self, state_cap: int = DEFAULT_STATE_CAP,
                 edge_cap: int = DEFAULT_EDGE_CAP,
                 perm_cap: int = DEFAULT_PERM_CAP):
        self.state_cap = state_cap
        self.edge_cap = edge_cap
        self.perm_cap = perm_cap
        self._states = _BottomK(state_cap)
        self._edges = _BottomK(edge_cap)
        self._canon: Optional[OrbitCanonicalizer] = None
        self._state_meta: dict[str, dict] = {}
        self._src_fp: Optional[int] = None
        # When the engine runs without hash compaction it has no
        # fingerprint to pass, and every state reaches us several
        # times (once visited, once per incoming edge, once expanded).
        # Hashing is the dominant recording cost, so compute each
        # state's fingerprint exactly once.  GlobalState is frozen and
        # hashable; the engine's visited set already keeps every state
        # alive, so this adds one dict slot per state, not a copy.
        self._fp_cache: dict = {}

    # -- recording (checker-facing) -----------------------------------------

    def bind(self, protocol, n_nodes: int, n_blocks: int) -> None:
        """Attach the protocol config (idempotent; called at run start
        by whichever engine owns this recorder)."""
        if self._canon is not None:
            return
        self._canon = OrbitCanonicalizer(protocol, n_nodes, n_blocks,
                                         perm_cap=self.perm_cap)
        self._state_meta = {
            name: {"transient": bool(info.transient)}
            for name, info in protocol.states.items()}

    def _fp_of(self, state: GlobalState, fp: Optional[int]) -> int:
        if fp is not None:
            return fp
        cached = self._fp_cache.get(state)
        if cached is None:
            cached = self._fp_cache[state] = fingerprint(state)
        return cached

    def visit(self, state: GlobalState, depth: int,
              fp: Optional[int] = None) -> int:
        """Record a newly visited state with its BFS depth."""
        fp = self._fp_of(state, fp)
        self._states.offer(fp, lambda: self._annotate(state, depth, fp))
        return fp

    def expand(self, state: GlobalState, fp: Optional[int] = None) -> None:
        """Set the source of the :meth:`edge` calls that follow."""
        self._src_fp = self._fp_of(state, fp)

    def edge(self, label: str, successor: GlobalState,
             fp: Optional[int] = None) -> int:
        """Record one transition out of the current source; returns the
        successor's fingerprint so callers can reuse it."""
        fp = self._fp_of(successor, fp)
        src = self._src_fp
        record = (src, fp, label)
        self._edges.offer(_edge_digest(src, fp, label), record)
        return fp

    def _annotate(self, state: GlobalState, depth: int, fp: int) -> dict:
        annotation = {
            "depth": depth,
            "vector": [[view.state_name for view in node_blocks]
                       for node_blocks in state.blocks],
            "inflight": state.messages_in_flight(),
            "queued": sum(len(view.queue)
                          for node_blocks in state.blocks
                          for view in node_blocks),
            "orbit": self._canon.orbit_fingerprint(state, fp),
        }
        if state.faults != (0, 0):
            annotation["faults"] = list(state.faults)
        return annotation

    # -- parallel plumbing --------------------------------------------------

    def payload(self) -> dict:
        """This (worker-side) recorder's sketches, for the finish reply."""
        return {
            "states_seen": self._states.seen,
            "states": list(self._states.entries.items()),
            "edges_seen": self._edges.seen,
            "edges": list(self._edges.entries.items()),
        }

    def merge(self, payload: Optional[dict]) -> None:
        """Fold one worker's sketches into this master recorder."""
        if not payload:
            return
        self._states.merge(payload["states_seen"], payload["states"])
        self._edges.merge(payload["edges_seen"], payload["edges"])

    # -- building the artifact ----------------------------------------------

    @property
    def truncated(self) -> bool:
        return self._states.truncated or self._edges.truncated

    def build(self, result) -> "StateAtlas":
        """Finalize into a :class:`StateAtlas` for a finished
        :class:`~repro.verify.checker.CheckResult`."""
        states = {}
        for fp in sorted(self._states.entries):
            annotation = dict(self._states.entries[fp])
            annotation["orbit"] = f"{annotation['orbit']:016x}"
            states[f"{fp:016x}"] = annotation
        edges = []
        for src, dst, label in self._edges.entries.values():
            tag, sender, receiver, kind, block = parse_edge_label(label)
            edges.append([f"{src:016x}", f"{dst:016x}", tag, sender,
                          receiver, kind, block, label])
        edges.sort(key=lambda record: (record[0], record[1], record[7]))
        canon = self._canon
        return StateAtlas(
            protocol=result.protocol_name,
            nodes=result.n_nodes,
            addresses=result.n_blocks,
            reorder=result.reorder_bound,
            workers=result.workers,
            result={
                "ok": result.ok,
                "states": result.states_explored,
                "transitions": result.transitions,
                "max_depth": result.max_depth,
                "exhausted": result.exhausted,
            },
            truncation={
                "states_seen": self._states.seen,
                "states_kept": len(self._states.entries),
                "edges_seen": self._edges.seen,
                "edges_kept": len(self._edges.entries),
                "sampled": self.truncated,
            },
            orbit={
                "method": canon.method if canon else "identity",
                "free_nodes": list(canon.free_nodes) if canon else [],
                "permutations": canon.permutations if canon else 1,
            },
            state_meta=dict(self._state_meta),
            states=states,
            edges=edges,
            fault_budget=tuple(result.fault_budget),
        )


class StateAtlas:
    """The schema-versioned JSON atlas artifact."""

    def __init__(self, protocol: str, nodes: int, addresses: int,
                 reorder: int, workers: int, result: dict,
                 truncation: dict, orbit: dict, state_meta: dict,
                 states: dict, edges: list,
                 fault_budget: tuple = (0, 0)):
        self.protocol = protocol
        self.nodes = nodes
        self.addresses = addresses
        self.reorder = reorder
        self.workers = workers
        self.result = result
        self.truncation = truncation
        self.orbit = orbit
        self.state_meta = state_meta
        self.states = states        # fp hex -> annotation
        self.edges = edges          # [src, dst, tag, sender, receiver,
        self.fault_budget = tuple(fault_budget)  # kind, block, label]

    @property
    def sampled(self) -> bool:
        return bool(self.truncation.get("sampled"))

    def config_line(self) -> str:
        engine = ("serial" if self.workers <= 1
                  else f"{self.workers} workers")
        text = (f"{self.protocol}  (nodes={self.nodes} "
                f"addresses={self.addresses} reorder={self.reorder} "
                f"engine={engine}")
        if self.fault_budget != (0, 0):
            text += (f" faults=drop:{self.fault_budget[0]}"
                     f"+dup:{self.fault_budget[1]}")
        return text + ")"

    def to_json(self) -> dict:
        payload = {
            "kind": ATLAS_KIND,
            "version": ATLAS_VERSION,
            "protocol": self.protocol,
            "nodes": self.nodes,
            "addresses": self.addresses,
            "reorder": self.reorder,
            "workers": self.workers,
            "result": self.result,
            "truncation": self.truncation,
            "orbit": self.orbit,
            "state_meta": self.state_meta,
            "states": self.states,
            "edges": self.edges,
        }
        if self.fault_budget != (0, 0):
            payload["fault_budget"] = list(self.fault_budget)
        return payload

    def save(self, path: str) -> None:
        # Insertion order and compact separators: the kind/version
        # header must stay in the first bytes so `analyze diff` can
        # sniff the file, and an atlas can hold 10^5 edges.
        with open(path, "w") as handle:
            json.dump(self.to_json(), handle, separators=(",", ":"))
            handle.write("\n")

    @classmethod
    def from_json(cls, payload: dict, path: str = "<atlas>") -> "StateAtlas":
        if payload.get("kind") != ATLAS_KIND:
            raise TraceError(
                f"{path}: not a state atlas (kind="
                f"{payload.get('kind')!r}); expected a `verify "
                f"--atlas-out` export")
        if payload.get("version") != ATLAS_VERSION:
            raise TraceError(
                f"{path}: state atlas version "
                f"{payload.get('version')!r}, expected {ATLAS_VERSION} "
                "-- regenerate with this build's `verify --atlas-out`")
        return cls(
            protocol=payload.get("protocol", "?"),
            nodes=payload.get("nodes", 0),
            addresses=payload.get("addresses", 0),
            reorder=payload.get("reorder", 0),
            workers=payload.get("workers", 0),
            result=dict(payload.get("result", {})),
            truncation=dict(payload.get("truncation", {})),
            orbit=dict(payload.get("orbit", {})),
            state_meta=dict(payload.get("state_meta", {})),
            states=dict(payload.get("states", {})),
            edges=[list(record) for record in payload.get("edges", [])],
            fault_budget=tuple(payload.get("fault_budget", (0, 0))),
        )


def load_atlas(path: str) -> StateAtlas:
    """Read a saved state atlas, with friendly one-line errors."""
    try:
        with open(path) as handle:
            text = handle.read()
    except FileNotFoundError:
        raise TraceError(f"{path}: no such file") from None
    except OSError as error:
        raise TraceError(f"{path}: {error.strerror}") from None
    if not text.strip():
        raise TraceError(f"{path}: empty file")
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as error:
        raise TraceError(f"{path}: not valid JSON ({error.msg})") from None
    if not isinstance(payload, dict):
        raise TraceError(f"{path}: not a state atlas (not an object)")
    return StateAtlas.from_json(payload, path)


# -- structural analysis --------------------------------------------------------

def scc_decomposition(atlas: StateAtlas) -> list[list[str]]:
    """Strongly connected components of the kept subgraph (iterative
    Tarjan; returned in reverse topological order, members sorted)."""
    nodes = set(atlas.states)
    adjacency: dict[str, list[str]] = defaultdict(list)
    for record in atlas.edges:
        if record[0] in nodes and record[1] in nodes:
            adjacency[record[0]].append(record[1])

    index: dict[str, int] = {}
    low: dict[str, int] = {}
    on_stack: set[str] = set()
    stack: list[str] = []
    sccs: list[list[str]] = []
    counter = 0
    for root in sorted(nodes):
        if root in index:
            continue
        work: list[list] = [[root, 0]]
        while work:
            node, _ = work[-1]
            if work[-1][1] == 0 and node not in index:
                index[node] = low[node] = counter
                counter += 1
                stack.append(node)
                on_stack.add(node)
            advanced = False
            successors = adjacency.get(node, ())
            while work[-1][1] < len(successors):
                successor = successors[work[-1][1]]
                work[-1][1] += 1
                if successor not in index:
                    work.append([successor, 0])
                    advanced = True
                    break
                if successor in on_stack:
                    low[node] = min(low[node], index[successor])
            if advanced:
                continue
            work.pop()
            if low[node] == index[node]:
                component = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                sccs.append(sorted(component))
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[node])
    return sccs


def analyze_structure(atlas: StateAtlas) -> dict:
    """SCC/terminal/deadlock/degree/depth summary of the kept graph.

    A *terminal* SCC has no edge leaving it: once entered, the run
    stays there forever, so terminal SCCs are the exploration's
    deadlock basins (singleton, no successors) and recurrent classes
    (everything else).  On a sampled atlas these are properties of the
    kept subgraph, flagged as such by the caller.
    """
    nodes = set(atlas.states)
    out_degree = {node: 0 for node in nodes}
    in_degree = {node: 0 for node in nodes}
    for record in atlas.edges:
        if record[0] in nodes:
            out_degree[record[0]] += 1
        if record[1] in nodes:
            in_degree[record[1]] += 1

    sccs = scc_decomposition(atlas)
    component_of = {member: i for i, component in enumerate(sccs)
                    for member in component}
    has_exit = [False] * len(sccs)
    for record in atlas.edges:
        src, dst = record[0], record[1]
        if src in component_of and dst in component_of:
            if component_of[src] != component_of[dst]:
                has_exit[component_of[src]] = True
    terminal = [sccs[i] for i in range(len(sccs)) if not has_exit[i]]
    deadlocks = sorted(node for node, degree in out_degree.items()
                       if degree == 0)

    depths = defaultdict(int)
    for annotation in atlas.states.values():
        depths[annotation["depth"]] += 1
    depth_profile = [depths[d] for d in range(max(depths) + 1)] \
        if depths else []

    def histogram(degrees: dict) -> dict[int, int]:
        out: dict[int, int] = defaultdict(int)
        for degree in degrees.values():
            out[degree] += 1
        return dict(sorted(out.items()))

    def mean(degrees: dict) -> float:
        return (sum(degrees.values()) / len(degrees)) if degrees else 0.0

    return {
        "sccs": len(sccs),
        "largest_scc": max((len(c) for c in sccs), default=0),
        "terminal_sccs": len(terminal),
        "terminal_sizes": sorted((len(c) for c in terminal), reverse=True),
        "terminal_members": terminal,
        "deadlock_states": deadlocks,
        "out_degree": {"mean": mean(out_degree),
                       "max": max(out_degree.values(), default=0),
                       "histogram": histogram(out_degree)},
        "in_degree": {"mean": mean(in_degree),
                      "max": max(in_degree.values(), default=0),
                      "histogram": histogram(in_degree)},
        "diameter": max(depths) if depths else 0,
        "depth_profile": depth_profile,
    }


def residence_heatmap(atlas: StateAtlas) -> dict:
    """Per-(node, protocol-state) residence counts over kept states,
    split transient vs stable via the embedded state metadata."""
    counts: dict[tuple[int, str], int] = defaultdict(int)
    for annotation in atlas.states.values():
        for node, names in enumerate(annotation["vector"]):
            for name in names:
                counts[(node, name)] += 1
    transient = {name for name, meta in atlas.state_meta.items()
                 if meta.get("transient")}
    by_state: dict[str, list[int]] = {}
    for (node, name), count in counts.items():
        row = by_state.setdefault(name, [0] * atlas.nodes)
        row[node] = count
    total = len(atlas.states)
    transient_residence = sum(
        count for (node, name), count in counts.items()
        if name in transient)
    all_residence = sum(counts.values()) or 1
    return {
        "states": total,
        "rows": dict(sorted(by_state.items())),
        "transient_states": sorted(transient),
        "transient_fraction": transient_residence / all_residence,
    }


def orbit_summary(atlas: StateAtlas) -> dict:
    """The symmetry-orbit estimate: distinct orbit keys over kept
    states and the collapse ratio a symmetry reduction could reach."""
    orbits: dict[str, int] = defaultdict(int)
    for annotation in atlas.states.values():
        orbits[annotation["orbit"]] += 1
    states = len(atlas.states)
    count = len(orbits)
    return {
        "states": states,
        "orbits": count,
        "ratio": (states / count) if count else 1.0,
        "largest_orbit": max(orbits.values(), default=0),
        "method": atlas.orbit.get("method", "identity"),
        "free_nodes": atlas.orbit.get("free_nodes", []),
        "permutations": atlas.orbit.get("permutations", 1),
    }


def por_estimate(atlas: StateAtlas, max_pairs: int = 20_000) -> dict:
    """Sampled commuting-transition-pair (diamond) estimate of POR
    headroom.

    For state s with edges a: s->sa and b: s->sb (distinct
    index-normalized labels), the pair *commutes* when some t closes
    the diamond: sa -t-> via b's normalized label and sb -t-> via a's.
    Labels are normalized to (tag, sender, receiver, kind, block) --
    delivery indices shift when the other message leaves the channel
    first, so the raw label cannot match across the diamond.  The
    commuting fraction approximates how many interleavings an ample/
    sleep-set reduction could avoid exploring.
    """
    out: dict[str, list] = defaultdict(list)
    for record in atlas.edges:
        out[record[0]].append((tuple(record[2:7]), record[1]))
    checked = 0
    commuting = 0
    capped = False
    for src in sorted(out):
        successors = out[src]
        if len(successors) < 2:
            continue
        for i in range(len(successors)):
            for j in range(i + 1, len(successors)):
                key_a, mid_a = successors[i]
                key_b, mid_b = successors[j]
                if key_a == key_b:
                    continue
                # Both mid-states need recorded out-edges to witness
                # the diamond; absent ones (terminal or sampled away)
                # count as non-commuting, keeping the estimate
                # conservative.
                checked += 1
                closes_a = {dst for key, dst in out.get(mid_a, ())
                            if key == key_b}
                closes_b = {dst for key, dst in out.get(mid_b, ())
                            if key == key_a}
                if closes_a & closes_b:
                    commuting += 1
                if checked >= max_pairs:
                    capped = True
                    break
            if capped:
                break
        if capped:
            break
    return {
        "checked_pairs": checked,
        "commuting_pairs": commuting,
        "fraction": (commuting / checked) if checked else 0.0,
        "capped": capped,
    }


# -- rendering ------------------------------------------------------------------

def format_atlas(atlas: StateAtlas, top: int = 10) -> str:
    """The ``teapot analyze atlas`` structural report."""
    result = atlas.result
    verdict = "PASS" if result.get("ok") else "FAIL"
    if not result.get("exhausted", True):
        verdict += " (state limit reached)"
    lines = [
        f"state atlas: {atlas.config_line()}",
        f"verdict: {verdict}  states={result.get('states')} "
        f"transitions={result.get('transitions')} "
        f"depth={result.get('max_depth')}",
    ]
    trunc = atlas.truncation
    if atlas.sampled:
        lines.append(
            f"coverage: SAMPLED -- kept {trunc.get('states_kept')}/"
            f"{trunc.get('states_seen')} states, "
            f"{trunc.get('edges_kept')}/{trunc.get('edges_seen')} edges "
            "(bottom-k by digest; structural numbers below describe the "
            "kept subgraph)")
    else:
        lines.append(
            f"coverage: exact -- {trunc.get('states_kept')} states, "
            f"{trunc.get('edges_kept')} edges recorded")

    structure = analyze_structure(atlas)
    profile = structure["depth_profile"]
    if profile:
        peak = max(profile)
        lines.append(
            f"depth: diameter={structure['diameter']}, frontier width "
            f"peaks at {peak} (depth {profile.index(peak)})")
        shown = profile if len(profile) <= 2 * top else (
            profile[:2 * top - 1] + [profile[-1]])
        widths = " ".join(str(w) for w in shown[:2 * top - 1])
        if len(profile) > 2 * top:
            widths += f" ... {profile[-1]}"
        lines.append(f"  states per depth: {widths}")
    out_deg, in_deg = structure["out_degree"], structure["in_degree"]
    lines.append(
        f"degrees: out mean {out_deg['mean']:.2f} max {out_deg['max']}; "
        f"in mean {in_deg['mean']:.2f} max {in_deg['max']}")
    terminal_sizes = structure["terminal_sizes"]
    sizes = ", ".join(str(size) for size in terminal_sizes[:top])
    if len(terminal_sizes) > top:
        sizes += ", ..."
    lines.append(
        f"SCCs: {structure['sccs']} total (largest "
        f"{structure['largest_scc']} states); terminal "
        f"{structure['terminal_sccs']} [{sizes}]"
        " -- a terminal SCC is a basin the run can never leave")
    deadlocks = structure["deadlock_states"]
    if deadlocks:
        shown = " ".join(deadlocks[:top])
        lines.append(
            f"deadlock states (out-degree 0): {len(deadlocks)}: {shown}")
    else:
        lines.append("deadlock states (out-degree 0): none")

    heat = residence_heatmap(atlas)
    lines.append(
        f"residence heatmap (% of {heat['states']} kept states per "
        f"(node, protocol-state); * = transient):")
    header = "  " + " " * 26 + "".join(
        f"{'n' + str(node):>7s}" for node in range(atlas.nodes))
    lines.append(header)
    transient = set(heat["transient_states"])
    rows = sorted(heat["rows"].items(),
                  key=lambda item: -sum(item[1]))[:max(top, 4)]
    for name, row in rows:
        marker = "*" if name in transient else " "
        cells = "".join(
            f"{100 * count / heat['states']:6.1f}%" if heat["states"]
            else f"{0:6.1f}%" for count in row)
        lines.append(f"  {marker}{name:<25.25s}{cells}")
    if len(heat["rows"]) > len(rows):
        lines.append(f"  ... {len(heat['rows']) - len(rows)} more states")
    lines.append(
        f"  transient residence: {heat['transient_fraction']:.1%} of all "
        "(node, state) observations -- the FSM-to-PDA suspend states, "
        "measured")

    orbit = orbit_summary(atlas)
    lines.append(
        f"symmetry orbits (estimator): {orbit['states']} states -> "
        f"{orbit['orbits']} orbits, collapse ratio {orbit['ratio']:.2f}x "
        f"(largest orbit {orbit['largest_orbit']}; "
        f"{orbit['permutations']} permutation(s) of free nodes "
        f"{orbit['free_nodes']}, method {orbit['method']})")
    if orbit["method"] == "identity":
        lines.append(
            "  note: fewer than two permutable (non-home) nodes at this "
            "config; every orbit is a singleton.  Re-run with --nodes 3 "
            "or more for a meaningful ratio.")

    por = por_estimate(atlas)
    capped = " (pair cap hit)" if por["capped"] else ""
    lines.append(
        f"POR headroom (diamond estimate): {por['fraction']:.1%} of "
        f"{por['checked_pairs']} sampled transition pairs "
        f"commute{capped}")
    return "\n".join(lines) + "\n"


def diff_atlases(a: StateAtlas, b: StateAtlas, top: int = 5) -> str:
    """Compare two atlases (``teapot analyze diff a b``): which states
    and edges appeared or vanished, plus structural deltas."""
    lines = [f"a: {a.config_line()}", f"b: {b.config_line()}"]
    if (a.protocol, a.nodes, a.addresses, a.reorder) != (
            b.protocol, b.nodes, b.addresses, b.reorder):
        lines.append("note: configurations differ; deltas compare "
                     "different explorations")
    if a.sampled or b.sampled:
        lines.append("note: at least one atlas is sampled; appeared/"
                     "vanished counts reflect the kept subgraphs")

    states_a, states_b = set(a.states), set(b.states)
    appeared = sorted(states_b - states_a)
    vanished = sorted(states_a - states_b)
    lines.append(
        f"states: {len(states_a)} -> {len(states_b)}  "
        f"(+{len(appeared)} appeared, -{len(vanished)} vanished)")

    def describe(atlas: StateAtlas, fp: str) -> str:
        annotation = atlas.states[fp]
        vector = " ".join(
            f"n{node}:" + "/".join(names)
            for node, names in enumerate(annotation["vector"]))
        return f"    {fp}  depth={annotation['depth']}  {vector}"

    for label, fps, atlas in (("appeared", appeared, b),
                              ("vanished", vanished, a)):
        for fp in fps[:top]:
            lines.append(describe(atlas, fp))
        if len(fps) > top:
            lines.append(f"    ... {len(fps) - top} more {label}")

    edges_a = {tuple(record[:2]) + (record[7],) for record in a.edges}
    edges_b = {tuple(record[:2]) + (record[7],) for record in b.edges}
    lines.append(
        f"edges: {len(edges_a)} -> {len(edges_b)}  "
        f"(+{len(edges_b - edges_a)} appeared, "
        f"-{len(edges_a - edges_b)} vanished)")

    orbit_a, orbit_b = orbit_summary(a), orbit_summary(b)
    lines.append(
        f"orbits: {orbit_a['orbits']} -> {orbit_b['orbits']}  "
        f"(collapse ratio {orbit_a['ratio']:.2f}x -> "
        f"{orbit_b['ratio']:.2f}x)")
    structure_a, structure_b = analyze_structure(a), analyze_structure(b)
    lines.append(
        f"terminal SCCs: {structure_a['terminal_sccs']} -> "
        f"{structure_b['terminal_sccs']}; deadlock states "
        f"{len(structure_a['deadlock_states'])} -> "
        f"{len(structure_b['deadlock_states'])}; diameter "
        f"{structure_a['diameter']} -> {structure_b['diameter']}")
    return "\n".join(lines) + "\n"


# -- graph export ---------------------------------------------------------------

def _filtered_states(atlas: StateAtlas, max_depth: Optional[int] = None,
                     protocol_state: Optional[str] = None) -> dict:
    kept = {}
    for fp, annotation in atlas.states.items():
        if max_depth is not None and annotation["depth"] > max_depth:
            continue
        if protocol_state is not None and not any(
                name == protocol_state
                for names in annotation["vector"] for name in names):
            continue
        kept[fp] = annotation
    return kept


def _vector_label(annotation: dict) -> str:
    return " | ".join(
        "/".join(names) for names in annotation["vector"])


def _export_graph(atlas: StateAtlas, max_depth: Optional[int],
                  protocol_state: Optional[str], collapse_orbits: bool):
    """The (nodes, edges) the DOT and GraphML exports share."""
    kept = _filtered_states(atlas, max_depth, protocol_state)
    transient = {name for name, meta in atlas.state_meta.items()
                 if meta.get("transient")}

    def is_transient(annotation: dict) -> bool:
        return any(name in transient
                   for names in annotation["vector"] for name in names)

    if collapse_orbits:
        groups: dict[str, list[str]] = defaultdict(list)
        for fp in sorted(kept):
            groups[kept[fp]["orbit"]].append(fp)
        orbit_of = {fp: orbit for orbit, fps in groups.items()
                    for fp in fps}
        nodes = []
        for orbit, fps in sorted(groups.items()):
            representative = kept[min(fps)]
            label = _vector_label(representative)
            if len(fps) > 1:
                label += f"  (x{len(fps)})"
            nodes.append((orbit, {
                "label": label,
                "depth": min(kept[fp]["depth"] for fp in fps),
                "size": len(fps),
                "shape": "box" if is_transient(representative)
                else "ellipse",
            }))
        seen = set()
        edges = []
        for record in atlas.edges:
            src, dst = record[0], record[1]
            if src not in orbit_of or dst not in orbit_of:
                continue
            key = (orbit_of[src], orbit_of[dst], record[2], record[5])
            if key in seen or key[0] == key[1]:
                continue
            seen.add(key)
            attrs = {"label": record[2], "kind": record[5]}
            if record[5] in ("drop", "dup"):
                attrs["style"] = "dashed"
            edges.append((key[0], key[1], attrs))
        return nodes, edges

    nodes = []
    for fp in sorted(kept):
        annotation = kept[fp]
        attrs = {
            "label": f"d{annotation['depth']}  {_vector_label(annotation)}",
            "depth": annotation["depth"],
            "orbit": annotation["orbit"],
            "shape": "box" if is_transient(annotation) else "ellipse",
        }
        if annotation["depth"] == 0:
            attrs["peripheries"] = 2
        nodes.append((fp, attrs))
    edges = []
    for record in atlas.edges:
        if record[0] not in kept or record[1] not in kept:
            continue
        attrs = {"label": record[2], "kind": record[5]}
        if record[5] in ("drop", "dup"):
            attrs["style"] = "dashed"
        edges.append((record[0], record[1], attrs))
    return nodes, edges


def atlas_to_dot(atlas: StateAtlas, max_depth: Optional[int] = None,
                 protocol_state: Optional[str] = None,
                 collapse_orbits: bool = False) -> str:
    """Filtered Graphviz export of the explored graph (small configs)."""
    from repro.analysis.graphio import dot_graph

    nodes, edges = _export_graph(atlas, max_depth, protocol_state,
                                 collapse_orbits)
    return dot_graph(f"{atlas.protocol} atlas", nodes, edges,
                     extra_lines=("node [fontsize=10];",))


def atlas_to_graphml(atlas: StateAtlas, max_depth: Optional[int] = None,
                     protocol_state: Optional[str] = None,
                     collapse_orbits: bool = False) -> str:
    """Filtered GraphML export (yEd / Gephi / NetworkX importable)."""
    from repro.analysis.graphio import graphml_graph

    nodes, edges = _export_graph(atlas, max_depth, protocol_state,
                                 collapse_orbits)
    return graphml_graph(f"{atlas.protocol} atlas", nodes, edges)
