"""64-bit state fingerprints and a portable state codec.

The checker's visited set traditionally stores whole
:class:`~repro.verify.model.GlobalState` objects.  A fingerprint is an
8-byte BLAKE2b digest of a *canonical encoding* of the state, so the
visited set shrinks to a set of small ints (an order of magnitude less
memory -- the classic Stern/Dill hash-compaction trade) and, crucially,
the value is stable across processes and across runs: it does not
depend on ``PYTHONHASHSEED``, object identity, or pickle memoisation.
That stability is what lets the parallel checker hash-partition the
state space across worker processes and what makes checkpoint files
resumable.

The trade-off of compaction is that two distinct states could collide
and one of them would be silently merged (probability ~ n^2 / 2^65 for
n visited states).  The violation path therefore re-validates traces by
replay (:func:`repro.verify.checker.replay_labels`); a collision that
corrupts a counterexample is detected, not silently reported.

The module also provides a pure-JSON codec for states
(:func:`state_to_jsonable` / :func:`state_from_jsonable`) used by the
checkpoint format, so checkpoints contain no pickles.
"""

from __future__ import annotations

from hashlib import blake2b

from repro.runtime.context import Message
from repro.runtime.continuation import ContinuationRecord
from repro.verify.model import AppView, BlockView, GlobalState

FINGERPRINT_BITS = 64


class StateCodecError(TypeError):
    """A value inside a GlobalState that the codec does not model."""


def _encode_value(value, out: bytearray) -> None:
    """Append a canonical, prefix-free encoding of ``value``."""
    if value is None:
        out += b"N"
    elif value is True:
        out += b"T"
    elif value is False:
        out += b"F"
    elif isinstance(value, int):
        out += b"i%d;" % value
    elif isinstance(value, str):
        raw = value.encode("utf-8")
        out += b"s%d:" % len(raw)
        out += raw
    elif isinstance(value, tuple):
        out += b"(%d:" % len(value)
        for item in value:
            _encode_value(item, out)
        out += b")"
    elif isinstance(value, frozenset):
        # Canonical order: sort members by their own encoding.
        parts = []
        for item in value:
            buf = bytearray()
            _encode_value(item, buf)
            parts.append(bytes(buf))
        parts.sort()
        out += b"{%d:" % len(parts)
        for part in parts:
            out += part
        out += b"}"
    elif isinstance(value, Message):
        out += b"m"
        _encode_value((value.tag, value.block, value.src, value.dst,
                       value.payload, value.data), out)
    elif isinstance(value, ContinuationRecord):
        out += b"c"
        _encode_value((value.handler, value.site_id, value.saved,
                       value.is_static), out)
    else:
        raise StateCodecError(
            f"cannot fingerprint value of type {type(value).__name__}: "
            f"{value!r}")


def encode_state(state: GlobalState) -> bytes:
    """The canonical byte encoding a fingerprint digests."""
    out = bytearray(b"G")
    for node_blocks in state.blocks:
        for view in node_blocks:
            out += b"B"
            _encode_value(view.state_name, out)
            _encode_value(view.state_args, out)
            _encode_value(view.info, out)
            _encode_value(view.access, out)
            _encode_value(view.queue, out)
    for app in state.apps:
        out += b"A"
        _encode_value(app.blocked_on, out)
        _encode_value(app.gen, out)
    for row in state.channels:
        for channel in row:
            out += b"C"
            _encode_value(channel, out)
    # Remaining fault budget distinguishes otherwise-identical states
    # (a state reached after spending a drop must not merge with the
    # same configuration reached fault-free).  Encoded only when
    # nonzero so fault-free fingerprints -- and every checkpoint written
    # before fault budgets existed -- are byte-identical.
    if state.faults != (0, 0):
        out += b"F"
        _encode_value(tuple(state.faults), out)
    return bytes(out)


def fingerprint(state: GlobalState) -> int:
    """Stable 64-bit fingerprint of a global state."""
    return int.from_bytes(
        blake2b(encode_state(state), digest_size=8).digest(), "big")


def expected_collisions(entries: int,
                        bits: int = FINGERPRINT_BITS) -> float:
    """Birthday-bound estimate of silent merges in a table of
    ``entries`` distinct states keyed by ``bits``-bit fingerprints
    (n(n-1)/2 / 2^bits).  Exact detection would require keeping the
    full states that compaction exists to discard; the check-profile
    artifact reports this estimate instead."""
    return entries * (entries - 1) / 2 / 2 ** bits


# -- JSON codec (checkpoints) ---------------------------------------------------
#
# Tagged arrays keep tuples, sets, messages, and continuation records
# apart from plain JSON lists; scalars pass through unchanged.  The
# format is deliberately pickle-free so loading a checkpoint never
# executes anything.

def _to_jsonable(value):
    if value is None or isinstance(value, (bool, int, str)):
        return value
    if isinstance(value, tuple):
        return ["t", [_to_jsonable(item) for item in value]]
    if isinstance(value, frozenset):
        items = [_to_jsonable(item) for item in value]
        items.sort(key=repr)
        return ["fs", items]
    if isinstance(value, Message):
        return ["m", value.tag, value.block, value.src, value.dst,
                _to_jsonable(value.payload), _to_jsonable(value.data)]
    if isinstance(value, ContinuationRecord):
        return ["c", value.handler, value.site_id,
                _to_jsonable(value.saved), value.is_static]
    raise StateCodecError(
        f"cannot serialise value of type {type(value).__name__}: {value!r}")


def _from_jsonable(value):
    if value is None or isinstance(value, (bool, int, str)):
        return value
    tag = value[0]
    if tag == "t":
        return tuple(_from_jsonable(item) for item in value[1])
    if tag == "fs":
        return frozenset(_from_jsonable(item) for item in value[1])
    if tag == "m":
        return Message(value[1], value[2], value[3], value[4],
                       payload=_from_jsonable(value[5]),
                       data=_from_jsonable(value[6]))
    if tag == "c":
        return ContinuationRecord(value[1], value[2],
                                  _from_jsonable(value[3]), value[4])
    raise StateCodecError(f"unknown codec tag {tag!r}")


def state_to_jsonable(state: GlobalState) -> dict:
    """A pure-JSON rendering of a state (checkpoint frontier entries)."""
    return {
        "blocks": [
            [
                {
                    "state": view.state_name,
                    "args": _to_jsonable(view.state_args),
                    "info": _to_jsonable(view.info),
                    "access": view.access,
                    "queue": _to_jsonable(view.queue),
                }
                for view in node_blocks
            ]
            for node_blocks in state.blocks
        ],
        "apps": [
            {"blocked_on": app.blocked_on, "gen": _to_jsonable(app.gen)}
            for app in state.apps
        ],
        "channels": [
            [_to_jsonable(channel) for channel in row]
            for row in state.channels
        ],
        # Fault budget is written only when nonzero: fault-free
        # checkpoints keep the pre-fault schema exactly.
        **({"faults": list(state.faults)}
           if state.faults != (0, 0) else {}),
    }


def state_from_jsonable(payload: dict) -> GlobalState:
    """Inverse of :func:`state_to_jsonable`."""
    return GlobalState(
        blocks=tuple(
            tuple(
                BlockView(
                    state_name=view["state"],
                    state_args=_from_jsonable(view["args"]),
                    info=_from_jsonable(view["info"]),
                    access=view["access"],
                    queue=_from_jsonable(view["queue"]),
                )
                for view in node_blocks
            )
            for node_blocks in payload["blocks"]
        ),
        apps=tuple(
            AppView(blocked_on=app["blocked_on"],
                    gen=_from_jsonable(app["gen"]))
            for app in payload["apps"]
        ),
        channels=tuple(
            tuple(_from_jsonable(channel) for channel in row)
            for row in payload["channels"]
        ),
        faults=tuple(payload.get("faults", (0, 0))),
    )
