"""64-bit state fingerprints and a portable state codec.

The checker's visited set traditionally stores whole
:class:`~repro.verify.model.GlobalState` objects.  A fingerprint is an
8-byte BLAKE2b digest of a *canonical encoding* of the state, so the
visited set shrinks to a set of small ints (an order of magnitude less
memory -- the classic Stern/Dill hash-compaction trade) and, crucially,
the value is stable across processes and across runs: it does not
depend on ``PYTHONHASHSEED``, object identity, or pickle memoisation.
That stability is what lets the parallel checker hash-partition the
state space across worker processes and what makes checkpoint files
resumable.

The trade-off of compaction is that two distinct states could collide
and one of them would be silently merged (probability ~ n^2 / 2^65 for
n visited states).  The violation path therefore re-validates traces by
replay (:func:`repro.verify.checker.replay_labels`); a collision that
corrupts a counterexample is detected, not silently reported.

The module also provides a pure-JSON codec for states
(:func:`state_to_jsonable` / :func:`state_from_jsonable`) used by the
checkpoint format, so checkpoints contain no pickles.
"""

from __future__ import annotations

import itertools
from hashlib import blake2b
from typing import Optional

from repro.lang.builtins import T_CONT, T_NODE, T_SHARERS
from repro.runtime.context import Message
from repro.runtime.continuation import ContinuationRecord
from repro.verify.model import AppView, BlockView, GlobalState

FINGERPRINT_BITS = 64

# Free-node permutations considered per state by the *estimator* (the
# atlas's orbit statistics); 6! = 720 keeps it exact through 6
# permutable caching nodes.  The production canonicalizer the checker
# uses passes ``perm_cap=None`` (the full group): a capped group is not
# closed under composition, so capped canonicalization would not be
# idempotent and two states in one orbit could map to different keys.
DEFAULT_PERM_CAP = 720


class StateCodecError(TypeError):
    """A value inside a GlobalState that the codec does not model."""


def _encode_value(value, out: bytearray) -> None:
    """Append a canonical, prefix-free encoding of ``value``."""
    if value is None:
        out += b"N"
    elif value is True:
        out += b"T"
    elif value is False:
        out += b"F"
    elif isinstance(value, int):
        out += b"i%d;" % value
    elif isinstance(value, str):
        raw = value.encode("utf-8")
        out += b"s%d:" % len(raw)
        out += raw
    elif isinstance(value, tuple):
        out += b"(%d:" % len(value)
        for item in value:
            _encode_value(item, out)
        out += b")"
    elif isinstance(value, frozenset):
        # Canonical order: sort members by their own encoding.
        parts = []
        for item in value:
            buf = bytearray()
            _encode_value(item, buf)
            parts.append(bytes(buf))
        parts.sort()
        out += b"{%d:" % len(parts)
        for part in parts:
            out += part
        out += b"}"
    elif isinstance(value, Message):
        out += b"m"
        _encode_value((value.tag, value.block, value.src, value.dst,
                       value.payload, value.data), out)
    elif isinstance(value, ContinuationRecord):
        out += b"c"
        _encode_value((value.handler, value.site_id, value.saved,
                       value.is_static), out)
    else:
        raise StateCodecError(
            f"cannot fingerprint value of type {type(value).__name__}: "
            f"{value!r}")


def encode_state(state: GlobalState) -> bytes:
    """The canonical byte encoding a fingerprint digests."""
    out = bytearray(b"G")
    for node_blocks in state.blocks:
        for view in node_blocks:
            out += b"B"
            _encode_value(view.state_name, out)
            _encode_value(view.state_args, out)
            _encode_value(view.info, out)
            _encode_value(view.access, out)
            _encode_value(view.queue, out)
    for app in state.apps:
        out += b"A"
        _encode_value(app.blocked_on, out)
        _encode_value(app.gen, out)
    for row in state.channels:
        for channel in row:
            out += b"C"
            _encode_value(channel, out)
    # Remaining fault budget distinguishes otherwise-identical states
    # (a state reached after spending a drop must not merge with the
    # same configuration reached fault-free).  Encoded only when
    # nonzero so fault-free fingerprints -- and every checkpoint written
    # before fault budgets existed -- are byte-identical.
    if state.faults != (0, 0):
        out += b"F"
        _encode_value(tuple(state.faults), out)
    return bytes(out)


def fingerprint(state: GlobalState) -> int:
    """Stable 64-bit fingerprint of a global state."""
    return int.from_bytes(
        blake2b(encode_state(state), digest_size=8).digest(), "big")


def expected_collisions(entries: int,
                        bits: int = FINGERPRINT_BITS) -> float:
    """Birthday-bound estimate of silent merges in a table of
    ``entries`` distinct states keyed by ``bits``-bit fingerprints
    (n(n-1)/2 / 2^bits).  Exact detection would require keeping the
    full states that compaction exists to discard; the check-profile
    artifact reports this estimate instead."""
    return entries * (entries - 1) / 2 / 2 ** bits


# -- symmetry canonicalization --------------------------------------------------
#
# Every registered protocol is symmetric in its caching nodes: renaming
# the non-home ("free") nodes by any permutation maps reachable states
# to reachable states, transitions to transitions, and invariant
# verdicts to identical verdicts.  Canonicalizing each state under that
# group before the visited-set lookup is Murphi's scalarset reduction:
# the checker explores one representative per orbit.
#
# Soundness hinges on the remap being *complete*: ``permute`` must
# produce exactly the renamed state, or two inequivalent states could
# be merged.  Node ids are therefore rewritten everywhere the
# protocol's own type declarations locate them -- Message.src/dst,
# NODE/SharerList-typed info fields and message payload parameters,
# NODE/SharerList-typed parameterized-state args
# (CompiledStateInfo.params), and suspended-continuation frames (saved
# variables typed via the handler's IR tables, recursing through
# CONT-typed captures).  Application views are permuted as whole rows;
# event-generator states are node-free by construction (choices are
# generated per node).  The gating differential suite pins reduced and
# unreduced verdicts identical across every registered protocol.

def _node_kind(type_name: str) -> Optional[str]:
    if type_name == T_NODE:
        return "node"
    if type_name == T_SHARERS:
        return "sharers"
    if type_name == T_CONT:
        return "cont"
    return None


class SymmetryCanonicalizer:
    """Canonicalize states under home-fixing caching-node permutation.

    The canonical key of a state is the minimum fingerprint over the
    considered permutations of the *free* (non-home) nodes; states in
    one orbit share a key.  With fewer than two free nodes only the
    identity remains and every orbit is a singleton (ratio 1.0) --
    interesting ratios need a third node (see ``tools/state_atlas.py``).

    ``perm_cap`` bounds the group for estimation use (the atlas);
    ``perm_cap=None`` keeps the full group, which is what exploration
    requires: only a full (closed) group makes canonicalization
    idempotent and orbit-invariant.
    """

    def __init__(self, protocol, n_nodes: int, n_blocks: int,
                 perm_cap: Optional[int] = DEFAULT_PERM_CAP):
        self.n_nodes = n_nodes
        homes = {block % n_nodes for block in range(n_blocks)}
        self.free_nodes = [n for n in range(n_nodes) if n not in homes]
        free = self.free_nodes
        self.perms: list[tuple] = []
        if len(free) < 2:
            self.method = "identity"
        else:
            count = 1
            for i in range(2, len(free) + 1):
                count *= i
            self.method = ("exact" if perm_cap is None or count <= perm_cap
                           else "capped")
            images = itertools.permutations(free)
            if self.method == "capped":
                images = itertools.islice(images, perm_cap)
            for image in images:
                if image == tuple(free):
                    continue            # the identity is the state itself
                mapping = list(range(n_nodes))
                for old, new in zip(free, image):
                    mapping[old] = new
                self.perms.append(tuple(mapping))
        # Where node ids live, per the protocol's own declarations.
        self._protocol = protocol
        self.info_kinds = {
            name: kind for name, type_name in protocol.info_vars.items()
            if (kind := _node_kind(type_name)) is not None}
        self.payload_kinds = {
            tag: tuple(_node_kind(type_name) for type_name in types)
            for tag, types in protocol.messages.items()}
        self.state_arg_kinds = {
            name: tuple(_node_kind(type_name)
                        for _pname, type_name in info.params)
            for name, info in protocol.states.items()}
        # handler qualname "State.Message" -> {var -> kind}; built
        # lazily because most states carry no continuation records.
        self._frame_kinds: dict = {}

    # Back-compat: atlas code and tests historically used this name.
    @property
    def node_fields(self):
        return {n for n, k in self.info_kinds.items() if k == "node"}

    @property
    def sharer_fields(self):
        return {n for n, k in self.info_kinds.items() if k == "sharers"}

    @property
    def permutations(self) -> int:
        """Permutations considered per state, identity included."""
        return len(self.perms) + 1

    def _map_node(self, mapping: tuple, value):
        # Nobody (-1) and any non-node value pass through untouched.
        if (isinstance(value, int) and not isinstance(value, bool)
                and 0 <= value < self.n_nodes):
            return mapping[value]
        return value

    def _frame_kinds_for(self, handler: str) -> dict:
        kinds = self._frame_kinds.get(handler)
        if kinds is None:
            state_name, _, message_name = handler.partition(".")
            ir = self._protocol.handlers.get((state_name, message_name))
            kinds = {}
            if ir is not None:
                for table in (ir.state_params, ir.locals, ir.param_types):
                    for name, type_name in table.items():
                        kind = _node_kind(type_name)
                        if kind is not None:
                            kinds[name] = kind
            self._frame_kinds[handler] = kinds
        return kinds

    def _remap_cont(self, mapping: tuple,
                    record: ContinuationRecord) -> ContinuationRecord:
        kinds = self._frame_kinds_for(record.handler)
        saved = tuple(
            (name, self._remap_typed(mapping, value, kinds.get(name)))
            for name, value in record.saved)
        if saved == record.saved:
            return record
        return ContinuationRecord(record.handler, record.site_id, saved,
                                  record.is_static)

    def _remap_typed(self, mapping: tuple, value, kind: Optional[str]):
        if kind == "node":
            return self._map_node(mapping, value)
        if kind == "sharers" and isinstance(value, frozenset):
            return frozenset(self._map_node(mapping, member)
                             for member in value)
        # CONT-typed captures, and continuation records reached through
        # untyped positions, both recurse into their own frame tables.
        if isinstance(value, ContinuationRecord):
            return self._remap_cont(mapping, value)
        return value

    def _remap_message(self, mapping: tuple, msg: Message) -> Message:
        payload = msg.payload
        if payload:
            kinds = self.payload_kinds.get(msg.tag)
            payload = tuple(
                self._remap_typed(
                    mapping, item,
                    kinds[i] if kinds and i < len(kinds) else None)
                for i, item in enumerate(payload))
        src = self._map_node(mapping, msg.src)
        dst = self._map_node(mapping, msg.dst)
        if payload == msg.payload and src == msg.src and dst == msg.dst:
            return msg
        return Message(msg.tag, msg.block, src=src, dst=dst,
                       payload=payload, data=msg.data)

    def _remap_view(self, mapping: tuple, view: BlockView) -> BlockView:
        info_kinds = self.info_kinds
        info = tuple(
            (name, self._remap_typed(mapping, value,
                                     info_kinds.get(name)))
            for name, value in view.info)
        state_args = view.state_args
        if state_args:
            kinds = self.state_arg_kinds.get(view.state_name) or ()
            state_args = tuple(
                self._remap_typed(mapping, value,
                                  kinds[i] if i < len(kinds) else None)
                for i, value in enumerate(state_args))
        queue = tuple(self._remap_message(mapping, msg)
                      for msg in view.queue)
        return BlockView(view.state_name, state_args, info,
                         view.access, queue)

    def permute(self, state: GlobalState, mapping: tuple) -> GlobalState:
        """The state with node ``old`` renamed to ``mapping[old]``."""
        n = self.n_nodes
        inverse = [0] * n
        for old, new in enumerate(mapping):
            inverse[new] = old
        blocks = tuple(
            tuple(self._remap_view(mapping, view)
                  for view in state.blocks[inverse[new]])
            for new in range(n))
        apps = tuple(state.apps[inverse[new]] for new in range(n))
        channels = tuple(
            tuple(
                tuple(self._remap_message(mapping, msg)
                      for msg in state.channels[inverse[i]][inverse[j]])
                for j in range(n))
            for i in range(n))
        return GlobalState(blocks=blocks, apps=apps, channels=channels,
                           faults=state.faults)

    def orbit_fingerprint(self, state: GlobalState, fp: int) -> int:
        """The orbit key: min fingerprint over considered permutations.
        ``fp`` is the state's own (identity) fingerprint, passed so a
        caller that already computed it never pays it twice."""
        if not self.perms:
            return fp
        best = fp
        for mapping in self.perms:
            candidate = fingerprint(self.permute(state, mapping))
            if candidate < best:
                best = candidate
        return best

    def canonical_fingerprint(self, state: GlobalState) -> int:
        """The visited-set key symmetry reduction explores under."""
        return self.orbit_fingerprint(state, fingerprint(state))

    def canonical_state(self, state: GlobalState) -> GlobalState:
        """The orbit representative (argmin-fingerprint image).  With
        the full group this is idempotent: the representative's own
        canonical state is itself."""
        if not self.perms:
            return state
        best, best_fp = state, fingerprint(state)
        for mapping in self.perms:
            candidate = self.permute(state, mapping)
            candidate_fp = fingerprint(candidate)
            if candidate_fp < best_fp:
                best, best_fp = candidate, candidate_fp
        return best


def canonical_fingerprint_fn(protocol, n_nodes: int, n_blocks: int):
    """The symmetry-reduced fingerprint function exploration keys by.

    Returns a ``state -> int`` callable computing the min fingerprint
    over the full home-fixing free-node permutation group, caching the
    result on the (frozen, interned) state object the same way the
    checker caches congestion counts -- repeat lookups of one state are
    an attribute read.
    """
    canon = SymmetryCanonicalizer(protocol, n_nodes, n_blocks,
                                  perm_cap=None)

    def canonical_fp(state: GlobalState, _canon=canon) -> int:
        cached = state.__dict__.get("_canon_fp")
        if cached is None:
            cached = _canon.canonical_fingerprint(state)
            object.__setattr__(state, "_canon_fp", cached)
        return cached

    canonical_fp.canonicalizer = canon
    return canonical_fp


# -- JSON codec (checkpoints) ---------------------------------------------------
#
# Tagged arrays keep tuples, sets, messages, and continuation records
# apart from plain JSON lists; scalars pass through unchanged.  The
# format is deliberately pickle-free so loading a checkpoint never
# executes anything.

def _to_jsonable(value):
    if value is None or isinstance(value, (bool, int, str)):
        return value
    if isinstance(value, tuple):
        return ["t", [_to_jsonable(item) for item in value]]
    if isinstance(value, frozenset):
        items = [_to_jsonable(item) for item in value]
        items.sort(key=repr)
        return ["fs", items]
    if isinstance(value, Message):
        return ["m", value.tag, value.block, value.src, value.dst,
                _to_jsonable(value.payload), _to_jsonable(value.data)]
    if isinstance(value, ContinuationRecord):
        return ["c", value.handler, value.site_id,
                _to_jsonable(value.saved), value.is_static]
    raise StateCodecError(
        f"cannot serialise value of type {type(value).__name__}: {value!r}")


def _from_jsonable(value):
    if value is None or isinstance(value, (bool, int, str)):
        return value
    tag = value[0]
    if tag == "t":
        return tuple(_from_jsonable(item) for item in value[1])
    if tag == "fs":
        return frozenset(_from_jsonable(item) for item in value[1])
    if tag == "m":
        return Message(value[1], value[2], value[3], value[4],
                       payload=_from_jsonable(value[5]),
                       data=_from_jsonable(value[6]))
    if tag == "c":
        return ContinuationRecord(value[1], value[2],
                                  _from_jsonable(value[3]), value[4])
    raise StateCodecError(f"unknown codec tag {tag!r}")


def state_to_jsonable(state: GlobalState) -> dict:
    """A pure-JSON rendering of a state (checkpoint frontier entries)."""
    return {
        "blocks": [
            [
                {
                    "state": view.state_name,
                    "args": _to_jsonable(view.state_args),
                    "info": _to_jsonable(view.info),
                    "access": view.access,
                    "queue": _to_jsonable(view.queue),
                }
                for view in node_blocks
            ]
            for node_blocks in state.blocks
        ],
        "apps": [
            {"blocked_on": app.blocked_on, "gen": _to_jsonable(app.gen)}
            for app in state.apps
        ],
        "channels": [
            [_to_jsonable(channel) for channel in row]
            for row in state.channels
        ],
        # Fault budget is written only when nonzero: fault-free
        # checkpoints keep the pre-fault schema exactly.
        **({"faults": list(state.faults)}
           if state.faults != (0, 0) else {}),
    }


def state_from_jsonable(payload: dict) -> GlobalState:
    """Inverse of :func:`state_to_jsonable`."""
    return GlobalState(
        blocks=tuple(
            tuple(
                BlockView(
                    state_name=view["state"],
                    state_args=_from_jsonable(view["args"]),
                    info=_from_jsonable(view["info"]),
                    access=view["access"],
                    queue=_from_jsonable(view["queue"]),
                )
                for view in node_blocks
            )
            for node_blocks in payload["blocks"]
        ),
        apps=tuple(
            AppView(blocked_on=app["blocked_on"],
                    gen=_from_jsonable(app["gen"]))
            for app in payload["apps"]
        ),
        channels=tuple(
            tuple(_from_jsonable(channel) for channel in row)
            for row in payload["channels"]
        ),
        faults=tuple(payload.get("faults", (0, 0))),
    )
