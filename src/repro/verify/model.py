"""The checker's global-state model and its ProtocolContext.

A :class:`GlobalState` is an immutable, hashable snapshot of the whole
machine: every node's view of every block (protocol state, info record,
access tag, deferred queue), every network channel's contents, and every
node's application status.  Rules execute against a :class:`MutableState`
working copy through :class:`CheckerContext`, then freeze the result.

The paper's configuration -- "a minimal machine with 2 processor nodes
and 2 shared memory addresses ... our verifications did not test actual
data values" -- is the default here too; block data is not modelled.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.runtime.context import Message, ProtocolContext, RuntimeCounters, ZERO_COSTS
from repro.runtime.protocol import CompiledProtocol
from repro.tempest.memory import ACCESS_CHANGE_RESULT, AccessTag, fault_event_for


@dataclass(frozen=True)
class BlockView:
    """One node's frozen view of one block."""

    state_name: str
    state_args: tuple
    info: tuple          # sorted (name, value) pairs
    access: str          # AccessTag.value
    queue: tuple         # deferred Messages

    def __hash__(self):
        # Views are shared across thousands of states (see the intern
        # table below) and hashed on every visited-set insert; compute
        # once on the same basis as the dataclass-generated hash.
        cached = self.__dict__.get("_hash")
        if cached is None:
            cached = hash((self.state_name, self.state_args, self.info,
                           self.access, self.queue))
            object.__setattr__(self, "_hash", cached)
        return cached


@dataclass(frozen=True)
class AppView:
    """One node's frozen application status."""

    blocked_on: Optional[int]
    gen: tuple           # event-generator-specific state

    def __hash__(self):
        cached = self.__dict__.get("_hash")
        if cached is None:
            cached = hash((self.blocked_on, self.gen))
            object.__setattr__(self, "_hash", cached)
        return cached


# -- interning -------------------------------------------------------------
#
# The exploration hot loop builds millions of views, messages, and
# channel tuples whose values recur constantly (a protocol has a handful
# of reachable block configurations, and the same messages fly between
# the same nodes on every path).  Interning canonicalizes each immutable
# substructure to one shared object, so successor states share storage
# with their parents, equality checks hit the identity fast path inside
# tuple comparison, and cached hashes are computed once per distinct
# value instead of once per state.  The tables are process-global and
# never evicted: the working set is bounded by the number of *distinct*
# substructures, which is tiny compared to the number of states.

_VIEW_INTERN: dict = {}
_MESSAGE_INTERN: dict = {}
_CHANNEL_INTERN: dict = {}


def intern_view(state_name: str, state_args: tuple, info: tuple,
                access: str, queue: tuple) -> BlockView:
    """The canonical BlockView for these field values."""
    key = (state_name, state_args, info, access, queue)
    view = _VIEW_INTERN.get(key)
    if view is None:
        view = _VIEW_INTERN[key] = BlockView(
            state_name=state_name, state_args=state_args, info=info,
            access=access, queue=queue)
    return view


def intern_message(message: Message) -> Message:
    """The canonical Message equal to ``message``."""
    return _MESSAGE_INTERN.setdefault(message, message)


def intern_channel(channel: tuple) -> tuple:
    """The canonical tuple equal to ``channel`` (a message sequence)."""
    return _CHANNEL_INTERN.setdefault(channel, channel)


@dataclass(frozen=True)
class GlobalState:
    """A hashable snapshot of the entire verified system."""

    blocks: tuple        # blocks[node][block] -> BlockView
    apps: tuple          # apps[node] -> AppView
    channels: tuple      # channels[src][dst] -> tuple[Message, ...]
    # Remaining fault budget (drops, dups) the exploration may still
    # spend on this path; (0, 0) -- the default -- is fault-free
    # checking and keeps fingerprints/checkpoints byte-compatible.
    faults: tuple = (0, 0)

    def __hash__(self):
        # Hashing recurses over every view, message, and queue; the
        # checker's visited set (and any observer keyed by state) asks
        # for it several times per snapshot, so compute once.  Same
        # basis as the dataclass-generated hash, hence the same
        # equal-implies-equal-hash contract.
        cached = self.__dict__.get("_hash")
        if cached is None:
            cached = hash((self.blocks, self.apps, self.channels,
                           self.faults))
            object.__setattr__(self, "_hash", cached)
        return cached

    def channel(self, src: int, dst: int) -> tuple:
        return self.channels[src][dst]

    def messages_in_flight(self) -> int:
        return sum(
            len(channel) for row in self.channels for channel in row)

    def fingerprint(self) -> int:
        """Stable 64-bit digest of this state (hash compaction /
        parallel sharding); independent of PYTHONHASHSEED."""
        from repro.verify.fingerprint import fingerprint

        return fingerprint(self)

    def summary(self) -> str:
        parts = []
        for node, node_blocks in enumerate(self.blocks):
            for block, view in enumerate(node_blocks):
                parts.append(f"n{node}b{block}:{view.state_name}")
        blocked = [
            f"n{n}!b{a.blocked_on}" for n, a in enumerate(self.apps)
            if a.blocked_on is not None
        ]
        inflight = self.messages_in_flight()
        text = " ".join(parts)
        if blocked:
            text += "  blocked: " + ",".join(blocked)
        if inflight:
            text += f"  in-flight: {inflight}"
        if self.faults != (0, 0):
            text += f"  fault-budget: drop={self.faults[0]} dup={self.faults[1]}"
        return text


class MutableState:
    """A working copy of a :class:`GlobalState` that rules mutate."""

    def __init__(self, state: GlobalState, n_nodes: int, n_blocks: int):
        self.n_nodes = n_nodes
        self.n_blocks = n_blocks
        self.block_state = [
            [
                {
                    "state_name": view.state_name,
                    "state_args": view.state_args,
                    "info": dict(view.info),
                    "access": view.access,
                    "queue": list(view.queue),
                    "state_changed": False,
                }
                for view in node_blocks
            ]
            for node_blocks in state.blocks
        ]
        self.apps = [
            {"blocked_on": app.blocked_on, "gen": app.gen}
            for app in state.apps
        ]
        self.channels = [
            [list(channel) for channel in row] for row in state.channels
        ]
        self.faults = state.faults

    def freeze(self) -> GlobalState:
        return GlobalState(
            blocks=tuple(
                tuple(
                    BlockView(
                        state_name=rec["state_name"],
                        state_args=rec["state_args"],
                        info=tuple(sorted(rec["info"].items())),
                        access=rec["access"],
                        queue=tuple(rec["queue"]),
                    )
                    for rec in node_blocks
                )
                for node_blocks in self.block_state
            ),
            apps=tuple(
                AppView(blocked_on=app["blocked_on"], gen=app["gen"])
                for app in self.apps
            ),
            channels=tuple(
                tuple(tuple(channel) for channel in row)
                for row in self.channels
            ),
            faults=self.faults,
        )

    def record(self, node: int, block: int) -> dict:
        return self.block_state[node][block]


class CheckerViolation(Exception):
    """Raised inside a rule when a protocol error fires; aborts the rule."""

    def __init__(self, message: str):
        super().__init__(message)
        self.message = message


class CheckerContext(ProtocolContext):
    """ProtocolContext over a MutableState (no costs, no data values)."""

    def __init__(self, protocol: CompiledProtocol, state: MutableState,
                 node: int, home_of):
        self.protocol = protocol
        self.state = state
        self._node = node
        self._home_of = home_of
        self._message: Optional[Message] = None
        self.counters = RuntimeCounters()
        self.costs = ZERO_COSTS
        self.woken: list[int] = []

    def begin(self, message: Message) -> None:
        self._message = message

    # -- identity ---------------------------------------------------------

    @property
    def node(self) -> int:
        return self._node

    @property
    def current_message(self) -> Message:
        assert self._message is not None
        return self._message

    def home_node(self, block: int) -> int:
        return self._home_of(block)

    # -- block record --------------------------------------------------------

    def _record(self) -> dict:
        return self.state.record(self._node, self.current_message.block)

    def get_state(self) -> tuple[str, tuple]:
        record = self._record()
        return record["state_name"], record["state_args"]

    def set_state(self, state_name: str, args: tuple) -> None:
        record = self._record()
        if (state_name, args) != (record["state_name"], record["state_args"]):
            record["state_changed"] = True
        record["state_name"] = state_name
        record["state_args"] = args

    def get_info(self, name: str):
        return self._record()["info"][name]

    def set_info(self, name: str, value) -> None:
        self._record()["info"][name] = value

    # -- Tempest mechanisms ------------------------------------------------------

    def send(self, dst: int, tag: str, block: int, payload: tuple,
             with_data: bool) -> None:
        self.counters.messages_sent += 1
        message = Message(tag, block, src=self._node, dst=dst,
                          payload=payload, data=() if with_data else None)
        self.state.channels[self._node][dst].append(message)

    def access_change(self, block: int, mode: str) -> None:
        tag = ACCESS_CHANGE_RESULT.get(mode)
        if tag is None:
            self.error(f"unknown access mode {mode!r}")
            return
        self.state.record(self._node, block)["access"] = tag.value

    def recv_data(self, block: int, mode: str) -> None:
        if self.current_message.data is None:
            self.error(
                f"RecvData but message {self.current_message.tag} "
                "carries no data")
            return
        self.access_change(block, mode)

    def read_word(self, block: int, addr: int):
        return 0  # data values are not modelled (Section 7)

    def write_word(self, block: int, addr: int, value) -> None:
        pass

    def enqueue_current(self) -> None:
        self.counters.queue_allocs += 1
        self._record()["queue"].append(self.current_message)

    def retry_queued(self, block: int) -> None:
        self.state.record(self._node, block)["state_changed"] = True

    def wakeup(self, block: int) -> None:
        app = self.state.apps[self._node]
        if app["blocked_on"] == block:
            app["blocked_on"] = None
            self.woken.append(block)

    def error(self, message: str) -> None:
        raise CheckerViolation(message)

    def debug_print(self, values: list) -> None:
        pass

    def support_call(self, name: str, args: list):
        raise CheckerViolation(
            f"support routine {name!r} has no checker model")

    def support_const(self, name: str):
        raise CheckerViolation(
            f"abstract constant {name!r} has no checker model")

    def charge(self, cycles: int) -> None:
        pass


class ActionScratch:
    """Mutate-and-undo working set for ONE node's atomic action.

    The legacy engine copied the *entire* global state into a
    :class:`MutableState` and froze the whole thing back per successor.
    An ``ActionScratch`` instead journals exactly what one action
    touches: block records of the acting node are copied lazily on first
    touch (the journal is the ``records`` map itself), sends accumulate
    in order, and the node's blocked-on marker is a scalar.  ``undo()``
    drops the journal, restoring the scratch to the parent state;
    ``effects()`` distils the journal into an :class:`ActionEffects`
    that can be replayed onto any structurally-equal parent.

    Handlers can only ever read or write the acting node's own records
    and application status (every read goes through
    ``ProtocolContext.get_state``/``get_info`` on the current message's
    block, and every write lands on ``record(self.node, block)``), which
    is what makes the journal -- and the effect cache built on it --
    sound.
    """

    __slots__ = ("parent", "node", "records", "blocked_on", "sends",
                 "_parent_blocks", "_parent_app")

    def __init__(self, parent: GlobalState, node: int):
        self.parent = parent
        self.node = node
        self._parent_blocks = parent.blocks[node]
        self._parent_app = parent.apps[node]
        self.records: dict = {}      # block -> working dict (the journal)
        self.blocked_on = self._parent_app.blocked_on
        self.sends: list = []        # Messages in send order

    def record(self, block: int) -> dict:
        rec = self.records.get(block)
        if rec is None:
            view = self._parent_blocks[block]
            rec = self.records[block] = {
                "state_name": view.state_name,
                "state_args": view.state_args,
                "info": dict(view.info),
                "access": view.access,
                "queue": list(view.queue),
                "state_changed": False,
            }
        return rec

    def undo(self) -> None:
        """Drop every journalled change; the scratch reads as the parent."""
        self.records.clear()
        self.sends.clear()
        self.blocked_on = self._parent_app.blocked_on

    def changed_views(self) -> tuple:
        """Interned ``(block, BlockView)`` pairs for journalled records
        whose frozen view differs from the parent's."""
        out = []
        for block in sorted(self.records):
            rec = self.records[block]
            view = intern_view(
                rec["state_name"], rec["state_args"],
                tuple(sorted(rec["info"].items())),
                rec["access"], tuple(rec["queue"]))
            if view != self._parent_blocks[block]:
                out.append((block, view))
        return tuple(out)

    def freeze(self) -> GlobalState:
        """The full successor state implied by the journal (test/debug
        surface; the checker replays :meth:`effects` incrementally)."""
        node = self.node
        blocks = self.parent.blocks
        changed = self.changed_views()
        if changed:
            row = list(blocks[node])
            for block, view in changed:
                row[block] = view
            blocks = blocks[:node] + (tuple(row),) + blocks[node + 1:]
        apps = self.parent.apps
        if self.blocked_on != self._parent_app.blocked_on:
            apps = apps[:node] + (
                AppView(blocked_on=self.blocked_on,
                        gen=self._parent_app.gen),) + apps[node + 1:]
        channels = self.parent.channels
        if self.sends:
            appended: dict = {}
            for message in self.sends:
                appended.setdefault(message.dst, []).append(message)
            row = list(channels[node])
            for dst, extra in appended.items():
                row[dst] = intern_channel(row[dst] + tuple(extra))
            channels = channels[:node] + (tuple(row),) + channels[node + 1:]
        return GlobalState(blocks=blocks, apps=apps, channels=channels,
                           faults=self.parent.faults)


class ActionEffects:
    """The replayable outcome of one atomic action.

    An action is a deterministic function of ``(node, the acting
    block's view, the message, the node's blocked-on marker)``; this
    object records everything it did so the checker can apply the same
    transition to any parent sharing those inputs without running a
    single handler.
    """

    __slots__ = ("views", "sends", "blocked_after", "fires", "error")

    def __init__(self, views: tuple, sends: tuple, blocked_after,
                 fires: tuple, error: Optional[str]):
        self.views = views              # ((block, BlockView after), ...)
        self.sends = sends              # Messages in send order
        self.blocked_after = blocked_after
        self.fires = fires              # handler-fire keys, in order
        self.error = error              # CheckerViolation message, or None


class ActionContext(ProtocolContext):
    """ProtocolContext over an :class:`ActionScratch` (the fast engine's
    counterpart of :class:`CheckerContext`; identical semantics)."""

    def __init__(self, protocol: CompiledProtocol, scratch: ActionScratch,
                 home_of):
        self.protocol = protocol
        self.scratch = scratch
        self._home_of = home_of
        self._message: Optional[Message] = None
        self.counters = RuntimeCounters()
        self.costs = ZERO_COSTS
        self.woken: list[int] = []

    def begin(self, message: Message) -> None:
        self._message = message

    @property
    def node(self) -> int:
        return self.scratch.node

    @property
    def current_message(self) -> Message:
        assert self._message is not None
        return self._message

    def home_node(self, block: int) -> int:
        return self._home_of(block)

    def _record(self) -> dict:
        return self.scratch.record(self._message.block)

    def get_state(self) -> tuple[str, tuple]:
        record = self._record()
        return record["state_name"], record["state_args"]

    def set_state(self, state_name: str, args: tuple) -> None:
        record = self._record()
        if (state_name, args) != (record["state_name"], record["state_args"]):
            record["state_changed"] = True
        record["state_name"] = state_name
        record["state_args"] = args

    def get_info(self, name: str):
        return self._record()["info"][name]

    def set_info(self, name: str, value) -> None:
        self._record()["info"][name] = value

    def send(self, dst: int, tag: str, block: int, payload: tuple,
             with_data: bool) -> None:
        self.counters.messages_sent += 1
        self.scratch.sends.append(intern_message(Message(
            tag, block, src=self.scratch.node, dst=dst,
            payload=payload, data=() if with_data else None)))

    def access_change(self, block: int, mode: str) -> None:
        tag = ACCESS_CHANGE_RESULT.get(mode)
        if tag is None:
            self.error(f"unknown access mode {mode!r}")
            return
        self.scratch.record(block)["access"] = tag.value

    def recv_data(self, block: int, mode: str) -> None:
        if self.current_message.data is None:
            self.error(
                f"RecvData but message {self.current_message.tag} "
                "carries no data")
            return
        self.access_change(block, mode)

    def read_word(self, block: int, addr: int):
        return 0  # data values are not modelled (Section 7)

    def write_word(self, block: int, addr: int, value) -> None:
        pass

    def enqueue_current(self) -> None:
        self.counters.queue_allocs += 1
        self._record()["queue"].append(self.current_message)

    def retry_queued(self, block: int) -> None:
        self.scratch.record(block)["state_changed"] = True

    def wakeup(self, block: int) -> None:
        if self.scratch.blocked_on == block:
            self.scratch.blocked_on = None
            self.woken.append(block)

    def error(self, message: str) -> None:
        raise CheckerViolation(message)

    def debug_print(self, values: list) -> None:
        pass

    def support_call(self, name: str, args: list):
        raise CheckerViolation(
            f"support routine {name!r} has no checker model")

    def support_const(self, name: str):
        raise CheckerViolation(
            f"abstract constant {name!r} has no checker model")

    def charge(self, cycles: int) -> None:
        pass


def initial_global_state(protocol: CompiledProtocol, n_nodes: int,
                         n_blocks: int, home_of, gen_initial,
                         faults: tuple = (0, 0)) -> GlobalState:
    """Build the starting state: home blocks idle/RW, caches invalid."""
    blocks = []
    for node in range(n_nodes):
        node_blocks = []
        for block in range(n_blocks):
            if home_of(block) == node:
                state_name = protocol.initial_home_state
                access = AccessTag.READ_WRITE.value
            else:
                state_name = protocol.initial_cache_state
                access = AccessTag.INVALID.value
            node_blocks.append(intern_view(
                state_name, (),
                tuple(sorted(protocol.initial_info().items())),
                access, ()))
        blocks.append(tuple(node_blocks))
    apps = tuple(
        AppView(blocked_on=None, gen=gen_initial(node))
        for node in range(n_nodes)
    )
    channels = tuple(
        tuple(() for _dst in range(n_nodes)) for _src in range(n_nodes)
    )
    return GlobalState(blocks=tuple(blocks), apps=apps, channels=channels,
                       faults=faults)


def fault_for_access(access_value: str, is_write: bool) -> Optional[str]:
    """Which fault a load/store raises given a frozen access value."""
    return fault_event_for(AccessTag(access_value), is_write)
