"""Sharded parallel breadth-first model checking.

The serial :class:`~repro.verify.checker.ModelChecker` explores one BFS
layer at a time on one core, holding every visited state in memory.
:class:`ParallelChecker` keeps the same exploration semantics but
hash-partitions the state space across N worker processes: each worker
*owns* the shard of states whose 64-bit fingerprint satisfies
``fp % workers == worker_id``, and only the owner ever stores, dedupes,
invariant-checks, or records parent pointers for a state.

Exploration proceeds in deterministic cycles (one cycle = one BFS
layer), but -- unlike the first-generation engine, which shipped every
successor *state* to its owner through the master -- the frontier
exchange is fingerprint-only:

1. ``expand``: each worker expands its accepted states (plus any tasks
   stolen from a busier peer), keeps the generated successor states in a
   local *stash*, and hands the master metadata records
   ``(fp, parent_fp, label, depth)`` batched per owner.  Full states
   never cross a pipe at this point.
2. The master routes the metadata.  ``ingest``: each owner dedupes the
   candidates against its visited set; fresh own-generated states are
   resolved from the local stash immediately, foreign ones are *staged*
   and their fingerprints listed per sender.
3. ``fetch``/``adopt``: the master collects the needed states from the
   senders' stashes -- only states that survived owner-side dedupe are
   ever serialized -- and delivers them to their owners, which accept
   them (visited set, parent pointer, invariant suite) into the next
   ready set.

Before each ``expand`` the master compares ready-set sizes and, when the
spread exceeds a threshold, relocates tasks from the richest worker to
the poorest (``donate``/``take``).  Stolen tasks are expanded by the
thief -- transition counts, handler coverage, and the successor stash
travel with the task -- while dedupe and parent pointers stay with the
shard owner, so stealing changes load balance, never results.

Determinism: the set of states in BFS layer *k* is a property of the
protocol, not of the partitioning, and every visited state is expanded
exactly once -- so verdict, reachable-state count, transition count, and
``handler_fires`` coverage are identical at any worker count.  When a
layer surfaces violations (invariant failures at acceptance, errors and
deadlocks at expansion), every worker still finishes the layer and the
master picks the canonical minimum by ``(depth, kind, message, label,
fingerprint)``, so the reported violation is worker-count independent
too.  Parent pointers are canonical as well: a state discovered by
several layer-*k* parents takes the minimum ``(parent fp, label)`` edge
-- senders keep the per-sender minimum during expansion and owners take
the minimum over the wave's proposals, so the winning edge is the global
minimum over every discovering edge, a pure function of the state graph
rather than of partitioning, arrival order, or stealing.  The
counterexample trace is rebuilt by walking the sharded parent
pointers (one owner query per hop) and then replay-validated against a
fresh serial checker; a fingerprint collision that corrupted the path
raises :class:`~repro.verify.checker.FingerprintCollisionError` instead
of reporting a bogus trace.

Checkpoints are pure JSON (no pickles; see
:mod:`repro.verify.fingerprint` for the state codec) and are written at
layer boundaries when the run truncates at ``max_states`` or is
interrupted.  The frontier in a checkpoint is materialized by fetching
the pending candidates' states from the sender stashes, so the on-disk
format is unchanged from version 1: entries are keyed by fingerprint and
a checkpoint written at one worker count can be resumed at any other.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import pickle
import sys
import time
from collections import defaultdict, deque
from typing import IO, Optional

from repro.runtime.exec import HandlerInterpreter
from repro.runtime.protocol import CompiledProtocol
from repro.verify.checker import (
    CheckResult,
    ModelChecker,
    SymmetryError,
    Violation,
    _LabelledViolation,
    _eta_seconds,
    _rolling_rate,
    format_progress_line,
)
from repro.verify.events import EventGenerator
from repro.verify.fingerprint import state_from_jsonable, state_to_jsonable
from repro.verify.invariants import Invariant
from repro.verify.model import initial_global_state

CHECKPOINT_KIND = "teapot-parallel-checkpoint"
CHECKPOINT_VERSION = 1

_DEADLOCK_MESSAGE = ("no rule enabled: all nodes blocked and no messages "
                     "in flight")

# Minimum ready-set gap (richest minus poorest worker) before the master
# relocates expansion tasks.  Below this, the barrier cost of the extra
# round-trips exceeds the imbalance.
_STEAL_THRESHOLD = 4

# Violation kinds sort alphabetically, which happens to put "deadlock"
# before "error" before "invariant"; the rank only needs to be total and
# worker-count independent, not meaningful.
def _violation_rank(record):
    kind, message, depth, fp, label = record
    return (depth, kind, message, label or "", fp)


class CheckpointError(ValueError):
    """A checkpoint file is malformed or belongs to another run."""


def load_checkpoint(path: str) -> dict:
    """Read and structurally validate a checkpoint file."""
    with open(path) as handle:
        payload = json.load(handle)
    if not isinstance(payload, dict) or payload.get("kind") != CHECKPOINT_KIND:
        raise CheckpointError(f"{path}: not a teapot parallel checkpoint")
    if payload.get("v") != CHECKPOINT_VERSION:
        raise CheckpointError(
            f"{path}: checkpoint version {payload.get('v')!r}, "
            f"expected {CHECKPOINT_VERSION}")
    return payload


def _worker_main(conn, worker_id: int, n_workers: int,
                 checker: ModelChecker) -> None:
    """One shard owner: dedupe, invariant-check, and expand its states.

    Runs a small command loop over a duplex pipe; the master is the only
    peer.  SIGINT is ignored so Ctrl-C reaches only the master, which
    finishes the layer and checkpoints before shutting workers down.
    """
    import signal

    signal.signal(signal.SIGINT, signal.SIG_IGN)
    checker._invariant_evals = {}
    checker._handler_fires = {}
    checker._named_invariants = [
        (checker._invariant_name(inv), inv) for inv in checker.invariants]
    if checker.engine == "fast":
        checker._inv_verdicts = checker._invariant_verdicts.setdefault(
            tuple(inv for _name, inv in checker._named_invariants), {})
    else:
        checker._inv_verdicts = None
    fp_fn = checker.fingerprint_fn
    atlas = checker.atlas
    if atlas is not None:
        atlas.bind(checker.protocol, checker.n_nodes, checker.n_blocks)
    prof = checker.profiler

    visited: set[int] = set()          # fps of states this shard owns
    parents: dict[int, tuple] = {}     # fp -> (parent fp | None, label)
    known: set[int] = set()            # every fp seen/routed (send dedupe)
    ready: list = []                   # (fp, state, depth) awaiting expansion
    stolen: list = []                  # tasks relocated here for this layer
    staged: dict = {}                  # fp -> (pfp, label, depth) pre-fetch
    stash: dict = {}                   # fp -> state, last expansion's sends
    transitions = 0
    max_depth = 0

    def accept(sfp, state, pfp, label, depth, violations) -> None:
        """Take ownership of a fresh state: bookkeeping, invariants,
        and a slot in the next ready set."""
        nonlocal max_depth
        t0 = time.perf_counter() if prof is not None else 0.0
        visited.add(sfp)
        known.add(sfp)
        parents[sfp] = (pfp, label)
        if depth > max_depth:
            max_depth = depth
        if atlas is not None:
            atlas.visit(state, depth, fp=sfp)
        if prof is not None:
            prof.add_phase("visited", time.perf_counter() - t0)
            t0 = time.perf_counter()
        message = checker._check_invariants(state)
        if prof is not None:
            prof.add_phase("invariants", time.perf_counter() - t0)
        if message is not None:
            violations.append(("invariant", message, depth, sfp, None))
        ready.append((sfp, state, depth))

    while True:
        command = conn.recv()
        op = command[0]

        if op == "load":                      # resume: restore this shard
            _, fps, loaded_parents = command
            visited.update(fps)
            known.update(fps)
            parents.update(loaded_parents)
            conn.send(("loaded", len(visited)))

        elif op == "seed":                    # full-state candidates
            _, entries = command              # (initial state or a resumed
            started = time.perf_counter()     # checkpoint frontier)
            violations: list = []
            # A resumed frontier can propose the same state from several
            # senders; pick the canonical-minimum parent edge so resumed
            # runs grow the same spanning tree as uninterrupted ones.
            best: dict = {}
            order: list = []
            for sfp, state, pfp, label, depth in entries:
                if sfp in visited:
                    continue
                key = (pfp if pfp is not None else -1, label or "")
                current = best.get(sfp)
                if current is None:
                    order.append(sfp)
                    best[sfp] = (key, state, pfp, label, depth)
                elif key < current[0]:
                    best[sfp] = (key, state, pfp, label, depth)
            for sfp in order:
                _key, state, pfp, label, depth = best[sfp]
                accept(sfp, state, pfp, label, depth, violations)
            conn.send(("done", {
                "visited": len(visited),
                "ready": len(ready),
                "max_depth": max_depth,
                "violations": violations,
                "inv_evals": sum(checker._invariant_evals.values()),
                "seconds": time.perf_counter() - started,
            }))

        elif op == "ingest":                  # metadata candidates
            _, entries = command
            started = time.perf_counter()
            violations = []
            need: dict = defaultdict(list)
            # All of the wave's proposals for this shard arrive in one
            # batch; a state freshly discovered by several parents takes
            # the minimum (parent fp, label) edge.  Combined with the
            # sender-side minimum kept during expansion, the winning
            # parent is the global minimum over every discovering edge
            # -- a pure function of the state graph, independent of
            # partitioning, arrival order, and work stealing.
            best = {}
            order = []
            for sfp, pfp, label, depth, sender in entries:
                if sfp in visited:
                    continue
                current = best.get(sfp)
                if current is None:
                    order.append(sfp)
                    best[sfp] = (pfp, label, depth, sender)
                elif (pfp, label) < (current[0], current[1]):
                    best[sfp] = (pfp, label, depth, sender)
            for sfp in order:
                pfp, label, depth, sender = best[sfp]
                if sender == worker_id:
                    # Own successor: the state never left this process.
                    accept(sfp, stash[sfp], pfp, label, depth, violations)
                else:
                    staged[sfp] = (pfp, label, depth)
                    need[sender].append(sfp)
            conn.send(("done", {
                "need": dict(need),
                "ready": len(ready),
                "violations": violations,
                "seconds": time.perf_counter() - started,
            }))

        elif op == "fetch":                   # serve states from the stash
            _, wanted = command
            conn.send(("states", [(fp, stash[fp]) for fp in wanted]))

        elif op == "adopt":                   # fetched foreign states
            _, entries = command
            started = time.perf_counter()
            violations = []
            for sfp, state in entries:
                pfp, label, depth = staged.pop(sfp)
                accept(sfp, state, pfp, label, depth, violations)
            conn.send(("done", {
                "visited": len(visited),
                "ready": len(ready),
                "max_depth": max_depth,
                "violations": violations,
                "inv_evals": sum(checker._invariant_evals.values()),
                "seconds": time.perf_counter() - started,
            }))

        elif op == "donate":                  # give tasks to a poorer peer
            _, count = command
            give = ready[-count:]
            del ready[-count:]
            conn.send(("tasks", give))

        elif op == "take":                    # receive relocated tasks
            _, tasks = command
            stolen.extend(tasks)
            conn.send(("taken", len(tasks)))

        elif op == "expand":
            _, wave_no = command
            started = time.perf_counter()
            tasks = ready + stolen
            ready = []
            stolen = []
            stash = {}
            proposals: dict = {}          # fp -> (parent fp, label, depth)
            route: list = []              # fps in first-generation order
            outbox: dict = defaultdict(list)
            violations = []
            certify = (checker.symmetry and checker._canon is not None
                       and checker._canon.perms)
            symmetry_error = None
            for sfp, state, depth in tasks:
                found_successor = False
                out_degree = 0
                sym_fps = ([] if certify and symmetry_error is None
                           else None)
                if atlas is not None:
                    atlas.expand(state, fp=sfp)
                try:
                    successors = checker._successors(state)
                    if prof is not None:
                        successors = prof.timed_successors(successors)
                    for label, successor in successors:
                        transitions += 1
                        out_degree += 1
                        found_successor = True
                        if prof is None:
                            fp = fp_fn(successor)
                        else:
                            t0 = time.perf_counter()
                            fp = fp_fn(successor)
                            prof.add_phase("fingerprint",
                                           time.perf_counter() - t0)
                            t0 = time.perf_counter()
                        if sym_fps is not None:
                            sym_fps.append(fp)
                        if atlas is not None:
                            # An edge per generated successor, even when
                            # its target was already routed -- the send
                            # dedupe below is not an edge dedupe.
                            atlas.edge(label, successor, fp=fp)
                        if fp in stash:
                            # Rediscovered within this wave: keep the
                            # minimum edge so this sender's proposal is
                            # its minimum over all generating edges.
                            # The stashed state moves with the edge --
                            # under symmetry reduction two edges into
                            # the same fingerprint can produce distinct
                            # concrete orbit members, and the stored
                            # state must be the winning edge's successor
                            # or the replayed trace diverges.
                            proposal = proposals[fp]
                            if (sfp, label) < (proposal[0], proposal[1]):
                                proposals[fp] = (sfp, label, depth + 1)
                                stash[fp] = successor
                            if prof is not None:
                                prof.add_phase(
                                    "visited", time.perf_counter() - t0)
                            continue
                        if fp in known:
                            if prof is not None:
                                prof.add_phase(
                                    "visited", time.perf_counter() - t0)
                            continue
                        known.add(fp)
                        stash[fp] = successor
                        proposals[fp] = (sfp, label, depth + 1)
                        route.append(fp)
                        if prof is not None:
                            prof.add_phase("visited",
                                           time.perf_counter() - t0)
                except _LabelledViolation as labelled:
                    violations.append(("error", labelled.message, depth,
                                       sfp, labelled.label))
                    continue
                if sym_fps is not None:
                    # Certify the symmetry assumption at this expanded
                    # state (see ModelChecker._certify_symmetry).  The
                    # wave finishes normally either way so accounting
                    # stays consistent; the master raises on the reply.
                    try:
                        checker._certify_symmetry(state, sym_fps)
                    except SymmetryError as error:
                        symmetry_error = str(error)
                if prof is not None:
                    prof.add_out_degree(out_degree)
                if not found_successor:
                    violations.append(("deadlock", _DEADLOCK_MESSAGE,
                                       depth, sfp, "<stuck>"))
            for fp in route:
                psfp, plabel, pdepth = proposals[fp]
                outbox[fp % n_workers].append((fp, psfp, plabel, pdepth))
            conn.send(("done", {
                "wave": wave_no,
                "accepted": len(tasks),
                "transitions": transitions,
                "max_depth": max_depth,
                "outbox": dict(outbox),
                "violations": violations,
                "symmetry_error": symmetry_error,
                "inv_evals": sum(checker._invariant_evals.values()),
                "seconds": time.perf_counter() - started,
            }))

        elif op == "parent":                  # one hop of a trace walk
            conn.send(("parent", parents.get(command[1])))

        elif op == "collect":                 # checkpoint contribution
            conn.send(("state", {
                "visited": list(visited),
                "parents": {fp: list(entry)
                            for fp, entry in parents.items()},
                "handler_fires": dict(checker._handler_fires),
                "invariant_evals": dict(checker._invariant_evals),
            }))

        elif op == "finish":
            profile_payload = None
            if checker.profiler is not None:
                checker.profiler.set_visited(
                    entries=len(visited), mode="fingerprint",
                    container_bytes=(sys.getsizeof(visited)
                                     + sys.getsizeof(parents)))
                profile_payload = checker.profiler.worker_payload()
            conn.send(("stats", {
                "handler_fires": dict(checker._handler_fires),
                "invariant_evals": dict(checker._invariant_evals),
                "profile": profile_payload,
                "atlas": atlas.payload() if atlas is not None else None,
            }))
            conn.close()
            return


class ParallelChecker:
    """Hash-partitioned parallel model checker.

    Accepts the same protocol/configuration surface as
    :class:`~repro.verify.checker.ModelChecker` plus ``workers`` (the
    number of shard-owning processes), ``checkpoint_out`` (where to dump
    a resumable JSON checkpoint if the run truncates or is
    interrupted), and ``resume`` (a checkpoint to continue from --
    written at any worker count).

    ``run()`` returns the same :class:`CheckResult`; on passing runs the
    state count, transition count, depth, and coverage maps match the
    serial checker exactly.  Requires the ``fork`` start method (worker
    checkers inherit closures the ``spawn`` pickler cannot carry).
    """

    def __init__(
        self,
        protocol: CompiledProtocol,
        n_nodes: int = 2,
        n_blocks: int = 1,
        reorder_bound: int = 0,
        events: Optional[EventGenerator] = None,
        invariants: Optional[list[Invariant]] = None,
        workers: Optional[int] = None,
        max_states: int = 2_000_000,
        channel_cap: int = 4,
        interpreter_factory=HandlerInterpreter,
        progress_stream: Optional[IO] = None,
        progress_every: int = 10_000,
        checkpoint_out: Optional[str] = None,
        resume: Optional[str] = None,
        fingerprint_fn=None,
        fault_budget=None,
        profiler=None,
        atlas=None,
        engine: str = "fast",
        symmetry: bool = False,
    ):
        if workers is None:
            workers = min(4, os.cpu_count() or 1)
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.workers = workers
        self.checkpoint_out = checkpoint_out
        self.resume = resume
        self.progress_stream = progress_stream
        self.progress_every = max(1, progress_every)
        # The master keeps this profiler; forked workers inherit the
        # template's copy of the same object but accumulate into their
        # own process memory, shipping totals back in the finish reply.
        self.profiler = profiler
        # Same inheritance story for the atlas recorder: each forked
        # worker records its shard's visits and edges privately and
        # ships bottom-k sketches back in the finish reply; merging
        # per-worker sketches is exactly the global sketch, so the
        # built atlas is identical at any worker count.
        self.atlas = atlas
        self._progress_window: deque = deque(maxlen=8)
        # One fully configured serial checker serves as the template the
        # forked workers inherit, and as the replay engine for validating
        # reconstructed counterexamples.
        # Symmetry canonicalization lives entirely in the template's
        # fingerprint_fn: workers shard and dedupe by canonical
        # fingerprint, so the orbit quotient falls out of the existing
        # exchange protocol with no new message kinds.
        self._template = ModelChecker(
            protocol, n_nodes=n_nodes, n_blocks=n_blocks,
            reorder_bound=reorder_bound, events=events,
            invariants=invariants, max_states=max_states,
            channel_cap=channel_cap,
            interpreter_factory=interpreter_factory,
            fingerprint_states=True, fingerprint_fn=fingerprint_fn,
            fault_budget=fault_budget, profiler=profiler, atlas=atlas,
            engine=engine, symmetry=symmetry)
        self.symmetry = symmetry

    # -- checkpoint plumbing ------------------------------------------------

    def _config_echo(self) -> dict:
        t = self._template
        echo = {
            "protocol": t.protocol.name,
            "n_nodes": t.n_nodes,
            "n_blocks": t.n_blocks,
            "reorder_bound": t.reorder_bound,
            "channel_cap": t.channel_cap,
            "events": type(t.events).__name__,
        }
        # Included only when nonzero so fault-free checkpoints written
        # before fault budgets existed still validate against the same
        # configuration today.
        if t.fault_budget != (0, 0):
            echo["faults"] = list(t.fault_budget)
        # Same back-compat shape: a symmetry-reduced run's visited set
        # is keyed by canonical fingerprints, so its checkpoints must
        # never resume an unreduced run (or vice versa).
        if self.symmetry:
            echo["symmetry"] = True
        return echo

    def _validate_resume(self, payload: dict) -> None:
        echo = self._config_echo()
        stored = {key: payload.get(key) for key in echo}
        if stored != echo:
            diffs = ", ".join(
                f"{key}: checkpoint={stored[key]!r} run={echo[key]!r}"
                for key in echo if stored[key] != echo[key])
            raise CheckpointError(
                f"{self.resume}: checkpoint is for a different "
                f"configuration ({diffs})")

    def _write_checkpoint(self, path, conns, meta, wave, stats) -> None:
        if self.profiler is not None:
            started = time.perf_counter()
            try:
                self._write_checkpoint_inner(
                    path, conns, meta, wave, stats)
            finally:
                self.profiler.add_phase(
                    "checkpoint_io", time.perf_counter() - started)
            return
        self._write_checkpoint_inner(path, conns, meta, wave, stats)

    def _write_checkpoint_inner(self, path, conns, meta, wave,
                                stats) -> None:
        visited: list[str] = []
        parents: dict[str, list] = {}
        invariant_evals = dict(stats["invariant_evals"])
        handler_fires = dict(stats["handler_fires"])
        for conn in conns:
            conn.send(("collect",))
            _, shard = conn.recv()
            visited.extend(f"{fp:016x}" for fp in shard["visited"])
            for fp, (pfp, label) in shard["parents"].items():
                parents[f"{fp:016x}"] = [
                    None if pfp is None else f"{pfp:016x}", label]
            for name, count in shard["invariant_evals"].items():
                invariant_evals[name] = invariant_evals.get(name, 0) + count
            for name, count in shard["handler_fires"].items():
                handler_fires[name] = handler_fires.get(name, 0) + count
        # The pending frontier is metadata; materialize the states from
        # the sender stashes so the on-disk format stays full-state.
        by_sender: dict = defaultdict(list)
        for batch in meta:
            for fp, _pfp, _label, _depth, sender in batch:
                by_sender[sender].append(fp)
        states: dict = {}
        for sender, fps in sorted(by_sender.items()):
            conns[sender].send(("fetch", fps))
            _, pairs = conns[sender].recv()
            states.update(pairs)
        frontier: list = []
        for batch in meta:
            for fp, pfp, label, depth, _sender in batch:
                frontier.append([
                    f"{fp:016x}", state_to_jsonable(states[fp]),
                    None if pfp is None else f"{pfp:016x}", label, depth])
        payload = dict(self._config_echo())
        payload.update({
            "kind": CHECKPOINT_KIND,
            "v": CHECKPOINT_VERSION,
            "wave": wave,
            "transitions": stats["transitions"],
            "max_depth": stats["max_depth"],
            "elapsed": stats["elapsed"],
            "invariant_evals": invariant_evals,
            "handler_fires": handler_fires,
            "visited": visited,
            "parents": parents,
            "frontier": frontier,
        })
        tmp = f"{path}.tmp"
        with open(tmp, "w") as handle:
            json.dump(payload, handle)
            handle.write("\n")
        os.replace(tmp, path)

    # -- trace reconstruction -----------------------------------------------

    def _trace_for(self, conns, record) -> Violation:
        kind, message, depth, fp, extra_label = record
        labels: list[str] = []
        cursor = fp
        while cursor is not None:
            conn = conns[cursor % self.workers]
            conn.send(("parent", cursor))
            _, entry = conn.recv()
            if entry is None:
                raise CheckpointError(
                    f"parent chain broken at fingerprint {cursor:016x}")
            pfp, label = entry
            if pfp is not None:
                labels.append(label)
            cursor = pfp
        labels.reverse()
        if kind == "error":
            labels.append(extra_label)
        elif kind == "deadlock":
            labels.append("<stuck>")
        elif not labels:
            labels = ["<initial>"]     # invariant violated in the initial state
        return Violation(kind, message, labels)

    # -- the master loop ----------------------------------------------------

    def run(self) -> CheckResult:
        template = self._template
        n = self.workers
        start = time.perf_counter()

        baseline = {"wave": 0, "transitions": 0, "max_depth": 0,
                    "elapsed": 0.0, "invariant_evals": {},
                    "handler_fires": {}}
        loads: list[tuple[list, dict]] = [([], {}) for _ in range(n)]
        seeds: list[list] = [[] for _ in range(n)]

        if self.resume:
            payload = load_checkpoint(self.resume)
            self._validate_resume(payload)
            for key in ("wave", "transitions", "max_depth", "elapsed",
                        "invariant_evals", "handler_fires"):
                baseline[key] = payload[key]
            for fp_hex in payload["visited"]:
                fp = int(fp_hex, 16)
                loads[fp % n][0].append(fp)
            for fp_hex, (pfp_hex, label) in payload["parents"].items():
                fp = int(fp_hex, 16)
                pfp = None if pfp_hex is None else int(pfp_hex, 16)
                loads[fp % n][1][fp] = (pfp, label)
            for fp_hex, state_json, pfp_hex, label, depth in (
                    payload["frontier"]):
                fp = int(fp_hex, 16)
                pfp = None if pfp_hex is None else int(pfp_hex, 16)
                seeds[fp % n].append(
                    (fp, state_from_jsonable(state_json), pfp, label, depth))
        else:
            initial = initial_global_state(
                template.protocol, template.n_nodes, template.n_blocks,
                template.home_of, template.events.initial,
                faults=template.fault_budget)
            fp0 = template.fingerprint_fn(initial)
            seeds[fp0 % n].append((fp0, initial, None, "<initial>", 0))

        if "fork" in multiprocessing.get_all_start_methods():
            ctx = multiprocessing.get_context("fork")
        else:  # pragma: no cover - non-Linux fallback
            ctx = multiprocessing.get_context("spawn")

        conns = []
        procs = []
        for i in range(n):
            parent_conn, child_conn = ctx.Pipe()
            proc = ctx.Process(target=_worker_main,
                               args=(child_conn, i, n, template),
                               daemon=True)
            proc.start()
            child_conn.close()
            conns.append(parent_conn)
            procs.append(proc)

        interrupted = False

        def call_all(ops):
            """Send ``ops[i]`` to worker i (None skips) and collect one
            reply each.  A Ctrl-C mid-phase flags ``interrupted`` and
            still drains the phase, so the master always reaches the
            next layer boundary with consistent worker state."""
            nonlocal interrupted
            replies: list = [None] * n
            sent = [False] * n
            while True:
                try:
                    for i, conn in enumerate(conns):
                        if ops[i] is not None and not sent[i]:
                            conn.send(ops[i])
                            sent[i] = True
                    for i, conn in enumerate(conns):
                        if ops[i] is None or replies[i] is not None:
                            continue
                        if interrupted:
                            if conn.poll(300):
                                replies[i] = conn.recv()[1]
                        else:
                            replies[i] = conn.recv()[1]
                    return replies
                except KeyboardInterrupt:
                    interrupted = True

        try:
            if self.resume:
                for i, conn in enumerate(conns):
                    conn.send(("load", loads[i][0], loads[i][1]))
                for conn in conns:
                    conn.recv()

            wave = baseline["wave"]
            transitions = baseline["transitions"]
            max_depth = baseline["max_depth"]
            hit_limit = False
            violation_record = None
            prof = self.profiler
            if prof is not None:
                prof.begin()

            def stats_now():
                return {
                    "transitions": transitions,
                    "max_depth": max_depth,
                    "elapsed": baseline["elapsed"]
                    + (time.perf_counter() - start),
                    "invariant_evals": dict(baseline["invariant_evals"]),
                    "handler_fires": dict(baseline["handler_fires"]),
                }

            # Seed the first layer: the initial state, or a resumed
            # checkpoint's frontier.  Acceptance (dedupe, parent
            # pointers, invariants) happens at the owner exactly as it
            # will for every later layer.
            seed_started = time.perf_counter()
            seed_replies = call_all([("seed", seeds[i]) for i in range(n)])
            total_states = sum(r["visited"] for r in seed_replies if r)
            max_depth = max([max_depth] + [r["max_depth"]
                                           for r in seed_replies if r])
            ready_counts = [r["ready"] if r else 0 for r in seed_replies]
            pending_violations = [v for r in seed_replies if r
                                  for v in r["violations"]]
            if prof is not None:
                prof.record_wave(
                    wave, time.perf_counter() - seed_started,
                    [{"id": i,
                      "busy_seconds": r["seconds"] if r else 0.0,
                      "accepted": 0}
                     for i, r in enumerate(seed_replies)])

            last_bucket = total_states // self.progress_every
            last_replies: list = []

            while True:
                cycle_started = time.perf_counter()

                # Balance the coming expansion: relocate tasks from the
                # richest ready set to the poorest when the gap is worth
                # the round-trips.  Based only on deterministic counts,
                # so results stay run-to-run identical.
                if n > 1 and not interrupted:
                    rich = max(range(n), key=lambda i: ready_counts[i])
                    poor = min(range(n), key=lambda i: ready_counts[i])
                    gap = ready_counts[rich] - ready_counts[poor]
                    if gap >= _STEAL_THRESHOLD:
                        count = gap // 2
                        ops: list = [None] * n
                        ops[rich] = ("donate", count)
                        tasks = call_all(ops)[rich] or []
                        if tasks:
                            ops = [None] * n
                            ops[poor] = ("take", tasks)
                            call_all(ops)
                            ready_counts[rich] -= len(tasks)
                            ready_counts[poor] += len(tasks)

                wave_no = wave
                expand_replies = call_all([("expand", wave_no)] * n)
                wave += 1
                expand_wall = time.perf_counter() - cycle_started
                last_replies = expand_replies
                transitions = baseline["transitions"] + sum(
                    r["transitions"] for r in expand_replies if r)
                max_depth = max([max_depth] + [r["max_depth"]
                                               for r in expand_replies if r])

                # Route successor metadata (fingerprints only; the
                # states wait in the sender stashes).
                meta: list[list] = [[] for _ in range(n)]
                frontier_size = 0
                for sender, reply in enumerate(expand_replies):
                    if not reply:
                        continue
                    for owner, batch in reply["outbox"].items():
                        meta[owner].extend(
                            (fp, pfp, label, depth, sender)
                            for fp, pfp, label, depth in batch)
                        frontier_size += len(batch)
                        if prof is not None:
                            prof.add_cross_shard(
                                len(batch), len(pickle.dumps(batch)))

                if prof is not None:
                    prof.sample(total_states, frontier_size, max_depth,
                                transitions)
                if (self.progress_stream is not None
                        and total_states // self.progress_every
                        > last_bucket):
                    last_bucket = total_states // self.progress_every
                    self._report_progress(
                        total_states, frontier_size, max_depth,
                        transitions, start, baseline, expand_replies)

                def record_partial_wave():
                    if prof is not None:
                        prof.record_wave(
                            wave_no, expand_wall,
                            [{"id": i,
                              "busy_seconds": r["seconds"] if r else 0.0,
                              "accepted": r["accepted"] if r else 0}
                             for i, r in enumerate(expand_replies)])

                if interrupted:
                    # The layer boundary is clean here: every accepted
                    # state is expanded, every pending candidate is in
                    # ``meta`` with its state stashed at the sender.
                    record_partial_wave()
                    if self.checkpoint_out:
                        self._write_checkpoint(
                            self.checkpoint_out, conns, meta, wave,
                            stats_now())
                    raise KeyboardInterrupt

                violations = pending_violations + [
                    v for r in expand_replies if r for v in r["violations"]]
                if violations:
                    violation_record = min(violations, key=_violation_rank)
                    record_partial_wave()
                    break
                # A concrete violation outranks a certification failure
                # (FAIL verdicts are sound regardless of symmetry); with
                # none this wave, a failed certification aborts the run
                # -- the enclosing ``finally`` tears the workers down.
                symmetry_errors = [
                    r["symmetry_error"] for r in expand_replies
                    if r and r.get("symmetry_error")]
                if symmetry_errors:
                    raise SymmetryError(min(symmetry_errors))
                if total_states >= template.max_states:
                    hit_limit = True
                    record_partial_wave()
                    if self.checkpoint_out:
                        self._write_checkpoint(
                            self.checkpoint_out, conns, meta, wave,
                            stats_now())
                    break
                if frontier_size == 0:
                    record_partial_wave()
                    break

                # Owners dedupe the candidates; fresh own-shard states
                # resolve locally, foreign ones are staged per sender.
                ingest_replies = call_all(
                    [("ingest", meta[i]) for i in range(n)])

                # Fetch only the states that survived dedupe, then hand
                # them to their owners.
                need_by_sender: list[list] = [[] for _ in range(n)]
                for owner, reply in enumerate(ingest_replies):
                    if not reply:
                        continue
                    for sender, fps in reply["need"].items():
                        need_by_sender[sender].append((owner, fps))
                fetch_ops: list = [
                    ("fetch", [fp for _owner, fps in need_by_sender[i]
                               for fp in fps])
                    if need_by_sender[i] else None
                    for i in range(n)]
                fetch_replies = call_all(fetch_ops)
                adopt_batches: list[list] = [[] for _ in range(n)]
                for sender in range(n):
                    if fetch_ops[sender] is None or not fetch_replies[sender]:
                        continue
                    fetched = dict(fetch_replies[sender])
                    for owner, fps in need_by_sender[sender]:
                        adopt_batches[owner].extend(
                            (fp, fetched[fp]) for fp in fps)
                if prof is not None:
                    for batch in adopt_batches:
                        if batch:
                            # Entries were already counted at routing;
                            # this adds the state-shipping bytes.
                            prof.add_cross_shard(0, len(pickle.dumps(batch)))
                adopt_replies = call_all(
                    [("adopt", adopt_batches[i]) for i in range(n)])

                total_states = sum(r["visited"] for r in adopt_replies if r)
                max_depth = max([max_depth] + [r["max_depth"]
                                               for r in adopt_replies if r])
                ready_counts = [r["ready"] if r else 0
                                for r in adopt_replies]
                pending_violations = (
                    [v for r in ingest_replies if r
                     for v in r["violations"]]
                    + [v for r in adopt_replies if r
                       for v in r["violations"]])
                if prof is not None:
                    prof.record_wave(
                        wave_no, time.perf_counter() - cycle_started,
                        [{"id": i,
                          "busy_seconds": (
                              (expand_replies[i]["seconds"]
                               if expand_replies[i] else 0.0)
                              + (ingest_replies[i]["seconds"]
                                 if ingest_replies[i] else 0.0)
                              + (adopt_replies[i]["seconds"]
                                 if adopt_replies[i] else 0.0)),
                          "accepted": (expand_replies[i]["accepted"]
                                       if expand_replies[i] else 0)}
                         for i in range(n)])

            violation = None
            if violation_record is not None:
                violation = self._trace_for(conns, violation_record)

            invariant_evals = dict(baseline["invariant_evals"])
            handler_fires = dict(baseline["handler_fires"])
            for conn in conns:
                conn.send(("finish",))
                _, stats = conn.recv()
                for name, count in stats["invariant_evals"].items():
                    invariant_evals[name] = (
                        invariant_evals.get(name, 0) + count)
                for name, count in stats["handler_fires"].items():
                    handler_fires[name] = handler_fires.get(name, 0) + count
                if prof is not None:
                    prof.merge_worker(stats.get("profile"))
                if self.atlas is not None:
                    self.atlas.merge(stats.get("atlas"))
            for proc in procs:
                proc.join(timeout=30)

            if violation is not None:
                # Collision guard: the trace came from fingerprint-keyed
                # parent pointers sharded across workers; it must replay.
                template.verify_violation(violation)

            if self.progress_stream is not None:
                self._report_progress(
                    total_states, 0, max_depth, transitions, start,
                    baseline, last_replies, final=True)

            result = CheckResult(
                protocol_name=template.protocol.name,
                ok=violation is None,
                states_explored=total_states,
                transitions=transitions,
                max_depth=max_depth,
                elapsed_seconds=baseline["elapsed"]
                + (time.perf_counter() - start),
                violation=violation,
                n_nodes=template.n_nodes,
                n_blocks=template.n_blocks,
                reorder_bound=template.reorder_bound,
                hit_state_limit=hit_limit,
                invariant_evals=invariant_evals,
                handler_fires=handler_fires,
                exhausted=not hit_limit,
                workers=n,
                fault_budget=template.fault_budget,
                canonical_states=(total_states if self.symmetry else None),
            )
            if prof is not None:
                result.profile = prof.build(result)
            if self.atlas is not None:
                self.atlas.bind(template.protocol, template.n_nodes,
                                template.n_blocks)
                result.atlas = self.atlas.build(result)
            return result
        finally:
            for proc in procs:
                if proc.is_alive():
                    proc.terminate()
            for proc in procs:
                proc.join(timeout=10)
            for conn in conns:
                conn.close()

    def _report_progress(self, states, frontier_size, max_depth, transitions,
                         start, baseline, replies, final=False) -> None:
        elapsed = baseline["elapsed"] + (time.perf_counter() - start)
        rate = states / elapsed if elapsed > 0 else float(states)
        rolling = _rolling_rate(self._progress_window, elapsed, states)
        eta = None
        if not final:
            eta = _eta_seconds(states, self._template.max_states,
                               rolling if rolling is not None else rate)
        inv_evals = sum(baseline["invariant_evals"].values()) + sum(
            reply["inv_evals"] for reply in replies if reply)
        per_worker = " ".join(
            f"w{i}={reply['accepted'] / reply['seconds']:.0f}/s"
            if reply and reply["seconds"] > 0 else f"w{i}=idle"
            for i, reply in enumerate(replies))
        print(
            format_progress_line(
                self._template.protocol.name, states, frontier_size,
                max_depth, transitions, inv_evals, rate, rolling, eta,
                "done" if final else "...", extra=f" [{per_worker}]"),
            file=self.progress_stream, flush=True)
