"""Sharded parallel breadth-first model checking.

The serial :class:`~repro.verify.checker.ModelChecker` explores one BFS
layer at a time on one core, holding every visited state in memory.
:class:`ParallelChecker` keeps the same exploration semantics but
hash-partitions the state space across N worker processes: each worker
*owns* the shard of states whose 64-bit fingerprint satisfies
``fp % workers == worker_id``, and only the owner ever stores, dedupes,
invariant-checks, or records parent pointers for a state.

Exploration proceeds in deterministic cycles (one cycle = one BFS
layer), but -- unlike the first-generation engine, which shipped every
successor *state* to its owner through the master -- the frontier
exchange is fingerprint-only:

1. ``expand``: each worker expands its accepted states (plus any tasks
   stolen from a busier peer), keeps the generated successor states in a
   local *stash*, and hands the master metadata records
   ``(fp, parent_fp, label, depth)`` batched per owner.  Full states
   never cross a pipe at this point.
2. The master routes the metadata.  ``ingest``: each owner dedupes the
   candidates against its visited set; fresh own-generated states are
   resolved from the local stash immediately, foreign ones are *staged*
   and their fingerprints listed per sender.
3. ``fetch``/``adopt``: the master collects the needed states from the
   senders' stashes -- only states that survived owner-side dedupe are
   ever serialized -- and delivers them to their owners, which accept
   them (visited set, parent pointer, invariant suite) into the next
   ready set.

Before each ``expand`` the master compares ready-set sizes and, when the
spread exceeds a threshold, relocates tasks from the richest worker to
the poorest (``donate``/``take``).  Stolen tasks are expanded by the
thief -- transition counts, handler coverage, and the successor stash
travel with the task -- while dedupe and parent pointers stay with the
shard owner, so stealing changes load balance, never results.

Determinism: the set of states in BFS layer *k* is a property of the
protocol, not of the partitioning, and every visited state is expanded
exactly once -- so verdict, reachable-state count, transition count, and
``handler_fires`` coverage are identical at any worker count.  When a
layer surfaces violations (invariant failures at acceptance, errors and
deadlocks at expansion), every worker still finishes the layer and the
master picks the canonical minimum by ``(depth, kind, message, label,
fingerprint)``, so the reported violation is worker-count independent
too.  Parent pointers are canonical as well: a state discovered by
several layer-*k* parents takes the minimum ``(parent fp, label)`` edge
-- senders keep the per-sender minimum during expansion and owners take
the minimum over the wave's proposals, so the winning edge is the global
minimum over every discovering edge, a pure function of the state graph
rather than of partitioning, arrival order, or stealing.  The
counterexample trace is rebuilt by walking the sharded parent
pointers (one owner query per hop) and then replay-validated against a
fresh serial checker; a fingerprint collision that corrupted the path
raises :class:`~repro.verify.checker.FingerprintCollisionError` instead
of reporting a bogus trace.

Checkpoints are pure JSON (no pickles; see
:mod:`repro.verify.fingerprint` for the state codec) and are written at
layer boundaries when the run truncates at ``max_states``, hits a
resource budget, is interrupted, or a periodic checkpoint interval
elapses (``checkpoint_interval_waves`` / ``checkpoint_interval_seconds``,
rotated through ``checkpoint_keep_last``).  Writes are sealed and atomic
(:mod:`repro.verify.checkpoint`).  The frontier in a checkpoint is
materialized by fetching the pending candidates' states from the sender
stashes, so the on-disk format is unchanged from version 1: entries are
keyed by fingerprint and a checkpoint written at one worker count can be
resumed at any other -- or by the serial checker.

Worker supervision: every barrier exchange polls the worker pipes with
liveness checks instead of blocking on ``recv``, so a SIGKILLed (or,
with ``worker_stall_timeout``, a wedged) worker surfaces as a typed
loss instead of a hang.  Under ``on_worker_loss="fail"`` (the default)
the loss raises :class:`WorkerLostError`.  Under ``"degrade"`` the
master additionally maintains a *mirror* of the exploration at each
wave barrier -- the synchronous cut where every accepted state is
expanded and every pending candidate is routed metadata -- and recovers
by tearing the fleet down, re-sharding the mirror onto one fewer
worker, reconstructing the pending frontier states by replaying their
canonical parent-label chains, and re-entering the loop.  Because the
cut is consistent and the exchange is deterministic, the recovered run
reaches the identical verdict, state count, transition count, coverage
maps, and counterexample trace as an undisturbed run; only the
observability artifacts (profile, atlas) degrade to best-effort.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import time
from collections import defaultdict, deque
from typing import IO, Optional

from repro.obs.profile import visited_container_bytes
from repro.runtime.exec import HandlerInterpreter
from repro.runtime.protocol import CompiledProtocol
from repro.verify.checker import (
    CheckResult,
    ModelChecker,
    SymmetryError,
    Violation,
    _LabelledViolation,
    TraceReplayError,
    _eta_seconds,
    _rolling_rate,
    format_progress_line,
    replay_step,
)
from repro.verify.checkpoint import (
    CHECKPOINT_KIND,
    CHECKPOINT_VERSION,
    PERIODIC_SPACING_RATIO,
    CheckpointError,
    config_echo,
    load_checkpoint,
    validate_resume,
    write_checkpoint,
)
from repro.verify.events import EventGenerator
from repro.verify.fingerprint import state_from_jsonable
from repro.verify.invariants import Invariant
from repro.verify.model import initial_global_state

__all__ = [
    "CHECKPOINT_KIND",
    "CHECKPOINT_VERSION",
    "CheckpointError",
    "ParallelChecker",
    "WorkerLostError",
    "load_checkpoint",
]

_DEADLOCK_MESSAGE = ("no rule enabled: all nodes blocked and no messages "
                     "in flight")

# Minimum ready-set gap (richest minus poorest worker) before the master
# relocates expansion tasks.  Below this, the barrier cost of the extra
# round-trips exceeds the imbalance.
_STEAL_THRESHOLD = 4

# How long a worker pipe may stay silent before the master re-checks the
# worker process is alive.  Small enough that a SIGKILLed worker is
# noticed within a fraction of a second, large enough to stay off the
# hot path (a reply normally arrives long before the first poll lapses).
_LIVENESS_POLL_SECONDS = 0.05

# Fresh worker processes are retried this many times with exponential
# backoff before the spawn is declared failed (transient EAGAIN /
# fork-bomb-limiter conditions clear quickly or not at all).
_SPAWN_ATTEMPTS = 3


# Violation kinds sort alphabetically, which happens to put "deadlock"
# before "error" before "invariant"; the rank only needs to be total and
# worker-count independent, not meaningful.
def _violation_rank(record):
    kind, message, depth, fp, label = record
    return (depth, kind, message, label or "", fp)


class WorkerLostError(RuntimeError):
    """A worker process died (or stalled past ``worker_stall_timeout``)
    and the run was configured with ``on_worker_loss="fail"``, or the
    degrade policy ran out of recovery attempts."""


class _WorkerLost(Exception):
    """Internal: a worker went silent mid-barrier.  Caught by the
    master's recovery loop, never escapes :meth:`ParallelChecker.run`."""

    def __init__(self, worker_id: int, phase: str):
        self.worker_id = worker_id
        self.phase = phase
        super().__init__(f"worker {worker_id} lost during {phase}")


def _worker_main(conn, worker_id: int, n_workers: int,
                 checker: ModelChecker) -> None:
    """One shard owner: dedupe, invariant-check, and expand its states.

    Runs a small command loop over a duplex pipe; the master is the only
    peer.  SIGINT is ignored so Ctrl-C reaches only the master, which
    finishes the layer and checkpoints before shutting workers down.
    """
    import signal

    signal.signal(signal.SIGINT, signal.SIG_IGN)
    checker._invariant_evals = {}
    checker._handler_fires = {}
    checker._named_invariants = [
        (checker._invariant_name(inv), inv) for inv in checker.invariants]
    if checker.engine == "fast":
        checker._inv_verdicts = checker._invariant_verdicts.setdefault(
            tuple(inv for _name, inv in checker._named_invariants), {})
    else:
        checker._inv_verdicts = None
    fp_fn = checker.fingerprint_fn
    atlas = checker.atlas
    if atlas is not None:
        atlas.bind(checker.protocol, checker.n_nodes, checker.n_blocks)
    prof = checker.profiler

    visited: set[int] = set()          # fps of states this shard owns
    parents: dict[int, tuple] = {}     # fp -> (parent fp | None, label)
    known: set[int] = set()            # every fp seen/routed (send dedupe)
    ready: list = []                   # (fp, state, depth) awaiting expansion
    stolen: list = []                  # tasks relocated here for this layer
    staged: dict = {}                  # fp -> (pfp, label, depth) pre-fetch
    stash: dict = {}                   # fp -> state, last expansion's sends
    transitions = 0
    max_depth = 0

    def accept(sfp, state, pfp, label, depth, violations) -> None:
        """Take ownership of a fresh state: bookkeeping, invariants,
        and a slot in the next ready set."""
        nonlocal max_depth
        t0 = time.perf_counter() if prof is not None else 0.0
        visited.add(sfp)
        known.add(sfp)
        parents[sfp] = (pfp, label)
        if depth > max_depth:
            max_depth = depth
        if atlas is not None:
            atlas.visit(state, depth, fp=sfp)
        if prof is not None:
            prof.add_phase("visited", time.perf_counter() - t0)
            t0 = time.perf_counter()
        message = checker._check_invariants(state)
        if prof is not None:
            prof.add_phase("invariants", time.perf_counter() - t0)
        if message is not None:
            violations.append(("invariant", message, depth, sfp, None))
        ready.append((sfp, state, depth))

    while True:
        command = conn.recv()
        op = command[0]

        if op == "load":                      # resume: restore this shard
            _, fps, loaded_parents = command
            visited.update(fps)
            known.update(fps)
            parents.update(loaded_parents)
            conn.send(("loaded", len(visited)))

        elif op == "seed":                    # full-state candidates
            _, entries = command              # (initial state or a resumed
            started = time.perf_counter()     # checkpoint frontier)
            violations: list = []
            # A resumed frontier can propose the same state from several
            # senders; pick the canonical-minimum parent edge so resumed
            # runs grow the same spanning tree as uninterrupted ones.
            best: dict = {}
            order: list = []
            for sfp, state, pfp, label, depth in entries:
                if sfp in visited:
                    continue
                key = (pfp if pfp is not None else -1, label or "")
                current = best.get(sfp)
                if current is None:
                    order.append(sfp)
                    best[sfp] = (key, state, pfp, label, depth)
                elif key < current[0]:
                    best[sfp] = (key, state, pfp, label, depth)
            for sfp in order:
                _key, state, pfp, label, depth = best[sfp]
                accept(sfp, state, pfp, label, depth, violations)
            conn.send(("done", {
                "visited": len(visited),
                "ready": len(ready),
                "max_depth": max_depth,
                "violations": violations,
                "inv_evals": sum(checker._invariant_evals.values()),
                "seconds": time.perf_counter() - started,
            }))

        elif op == "ingest":                  # metadata candidates
            _, entries = command
            started = time.perf_counter()
            violations = []
            need: dict = defaultdict(list)
            # All of the wave's proposals for this shard arrive in one
            # batch; a state freshly discovered by several parents takes
            # the minimum (parent fp, label) edge.  Combined with the
            # sender-side minimum kept during expansion, the winning
            # parent is the global minimum over every discovering edge
            # -- a pure function of the state graph, independent of
            # partitioning, arrival order, and work stealing.
            best = {}
            order = []
            for sfp, pfp, label, depth, sender in entries:
                if sfp in visited:
                    continue
                current = best.get(sfp)
                if current is None:
                    order.append(sfp)
                    best[sfp] = (pfp, label, depth, sender)
                elif (pfp, label) < (current[0], current[1]):
                    best[sfp] = (pfp, label, depth, sender)
            for sfp in order:
                pfp, label, depth, sender = best[sfp]
                if sender == worker_id:
                    # Own successor: the state never left this process.
                    accept(sfp, stash[sfp], pfp, label, depth, violations)
                else:
                    staged[sfp] = (pfp, label, depth)
                    need[sender].append(sfp)
            conn.send(("done", {
                "need": dict(need),
                "ready": len(ready),
                "violations": violations,
                "seconds": time.perf_counter() - started,
            }))

        elif op == "fetch":                   # serve states from the stash
            _, wanted = command
            conn.send(("states", [(fp, stash[fp]) for fp in wanted]))

        elif op == "adopt":                   # fetched foreign states
            _, entries = command
            started = time.perf_counter()
            violations = []
            for sfp, state in entries:
                pfp, label, depth = staged.pop(sfp)
                accept(sfp, state, pfp, label, depth, violations)
            conn.send(("done", {
                "visited": len(visited),
                "ready": len(ready),
                "max_depth": max_depth,
                "violations": violations,
                "inv_evals": sum(checker._invariant_evals.values()),
                "seconds": time.perf_counter() - started,
            }))

        elif op == "donate":                  # give tasks to a poorer peer
            _, count = command
            give = ready[-count:]
            del ready[-count:]
            conn.send(("tasks", give))

        elif op == "take":                    # receive relocated tasks
            _, tasks = command
            stolen.extend(tasks)
            conn.send(("taken", len(tasks)))

        elif op == "expand":
            _, wave_no = command
            started = time.perf_counter()
            tasks = ready + stolen
            ready = []
            stolen = []
            stash = {}
            proposals: dict = {}          # fp -> (parent fp, label, depth)
            route: list = []              # fps in first-generation order
            outbox: dict = defaultdict(list)
            violations = []
            certify = (checker.symmetry and checker._canon is not None
                       and checker._canon.perms)
            symmetry_error = None
            for sfp, state, depth in tasks:
                found_successor = False
                out_degree = 0
                sym_fps = ([] if certify and symmetry_error is None
                           else None)
                if atlas is not None:
                    atlas.expand(state, fp=sfp)
                try:
                    successors = checker._successors(state)
                    if prof is not None:
                        successors = prof.timed_successors(successors)
                    for label, successor in successors:
                        transitions += 1
                        out_degree += 1
                        found_successor = True
                        if prof is None:
                            fp = fp_fn(successor)
                        else:
                            t0 = time.perf_counter()
                            fp = fp_fn(successor)
                            prof.add_phase("fingerprint",
                                           time.perf_counter() - t0)
                            t0 = time.perf_counter()
                        if sym_fps is not None:
                            sym_fps.append(fp)
                        if atlas is not None:
                            # An edge per generated successor, even when
                            # its target was already routed -- the send
                            # dedupe below is not an edge dedupe.
                            atlas.edge(label, successor, fp=fp)
                        if fp in stash:
                            # Rediscovered within this wave: keep the
                            # minimum edge so this sender's proposal is
                            # its minimum over all generating edges.
                            # The stashed state moves with the edge --
                            # under symmetry reduction two edges into
                            # the same fingerprint can produce distinct
                            # concrete orbit members, and the stored
                            # state must be the winning edge's successor
                            # or the replayed trace diverges.
                            proposal = proposals[fp]
                            if (sfp, label) < (proposal[0], proposal[1]):
                                proposals[fp] = (sfp, label, depth + 1)
                                stash[fp] = successor
                            if prof is not None:
                                prof.add_phase(
                                    "visited", time.perf_counter() - t0)
                            continue
                        if fp in known:
                            if prof is not None:
                                prof.add_phase(
                                    "visited", time.perf_counter() - t0)
                            continue
                        known.add(fp)
                        stash[fp] = successor
                        proposals[fp] = (sfp, label, depth + 1)
                        route.append(fp)
                        if prof is not None:
                            prof.add_phase("visited",
                                           time.perf_counter() - t0)
                except _LabelledViolation as labelled:
                    violations.append(("error", labelled.message, depth,
                                       sfp, labelled.label))
                    continue
                if sym_fps is not None:
                    # Certify the symmetry assumption at this expanded
                    # state (see ModelChecker._certify_symmetry).  The
                    # wave finishes normally either way so accounting
                    # stays consistent; the master raises on the reply.
                    try:
                        checker._certify_symmetry(state, sym_fps)
                    except SymmetryError as error:
                        symmetry_error = str(error)
                if prof is not None:
                    prof.add_out_degree(out_degree)
                if not found_successor:
                    violations.append(("deadlock", _DEADLOCK_MESSAGE,
                                       depth, sfp, "<stuck>"))
            for fp in route:
                psfp, plabel, pdepth = proposals[fp]
                outbox[fp % n_workers].append((fp, psfp, plabel, pdepth))
            conn.send(("done", {
                "wave": wave_no,
                "accepted": len(tasks),
                "transitions": transitions,
                "max_depth": max_depth,
                "outbox": dict(outbox),
                "violations": violations,
                "symmetry_error": symmetry_error,
                "inv_evals": sum(checker._invariant_evals.values()),
                # Cumulative per-name maps and the shard's container
                # bytes ride on every expand reply: the master needs
                # them to snapshot a consistent cut (degrade-mode
                # mirror) and to enforce the visited-byte budget.
                "inv_detail": dict(checker._invariant_evals),
                "fire_detail": dict(checker._handler_fires),
                "visited_bytes": visited_container_bytes(visited, parents),
                "seconds": time.perf_counter() - started,
            }))

        elif op == "parent":                  # one hop of a trace walk
            conn.send(("parent", parents.get(command[1])))

        elif op == "collect":                 # checkpoint contribution
            conn.send(("state", {
                "visited": list(visited),
                "parents": {fp: list(entry)
                            for fp, entry in parents.items()},
                "handler_fires": dict(checker._handler_fires),
                "invariant_evals": dict(checker._invariant_evals),
            }))

        elif op == "finish":
            profile_payload = None
            if checker.profiler is not None:
                checker.profiler.set_visited(
                    entries=len(visited), mode="fingerprint",
                    container_bytes=visited_container_bytes(
                        visited, parents))
                profile_payload = checker.profiler.worker_payload()
            conn.send(("stats", {
                "handler_fires": dict(checker._handler_fires),
                "invariant_evals": dict(checker._invariant_evals),
                "profile": profile_payload,
                "atlas": atlas.payload() if atlas is not None else None,
            }))
            conn.close()
            return


class ParallelChecker:
    """Hash-partitioned parallel model checker.

    Accepts the same protocol/configuration surface as
    :class:`~repro.verify.checker.ModelChecker` plus ``workers`` (the
    number of shard-owning processes), ``checkpoint_out`` (where to dump
    a resumable JSON checkpoint if the run truncates, hits a budget, or
    is interrupted -- plus periodically when the interval knobs are
    set), and ``resume`` (a checkpoint to continue from -- written at
    any worker count, or by the serial checker).

    Resilience knobs: ``on_worker_loss`` picks the policy when a worker
    process dies mid-run (``"fail"`` raises :class:`WorkerLostError`;
    ``"degrade"`` re-shards the last completed wave onto one fewer
    worker and continues, verdict-identical), ``worker_stall_timeout``
    additionally treats a worker silent for that many seconds during a
    barrier as lost (SIGKILLing it first), and ``deadline_seconds`` /
    ``max_visited_bytes`` stop the run gracefully at the next wave
    boundary with ``CheckResult.stop_reason`` set and a resumable
    checkpoint written.  ``chaos_hook`` (testing) is called as
    ``hook(wave_no, procs)`` before each wave so fault-injection
    harnesses can disturb the fleet deterministically.

    ``run()`` returns the same :class:`CheckResult`; on passing runs the
    state count, transition count, depth, and coverage maps match the
    serial checker exactly.  Requires the ``fork`` start method (worker
    checkers inherit closures the ``spawn`` pickler cannot carry).
    """

    def __init__(
        self,
        protocol: CompiledProtocol,
        n_nodes: int = 2,
        n_blocks: int = 1,
        reorder_bound: int = 0,
        events: Optional[EventGenerator] = None,
        invariants: Optional[list[Invariant]] = None,
        workers: Optional[int] = None,
        max_states: int = 2_000_000,
        channel_cap: int = 4,
        interpreter_factory=HandlerInterpreter,
        progress_stream: Optional[IO] = None,
        progress_every: int = 10_000,
        checkpoint_out: Optional[str] = None,
        resume: Optional[str] = None,
        fingerprint_fn=None,
        fault_budget=None,
        profiler=None,
        atlas=None,
        engine: str = "fast",
        symmetry: bool = False,
        on_worker_loss: str = "fail",
        worker_stall_timeout: Optional[float] = None,
        checkpoint_interval_waves: Optional[int] = None,
        checkpoint_interval_seconds: Optional[float] = None,
        checkpoint_keep_last: int = 1,
        deadline_seconds: Optional[float] = None,
        max_visited_bytes: Optional[int] = None,
        chaos_hook=None,
    ):
        if workers is None:
            workers = min(4, os.cpu_count() or 1)
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if on_worker_loss not in ("fail", "degrade"):
            raise ValueError(
                f"on_worker_loss must be 'fail' or 'degrade', "
                f"got {on_worker_loss!r}")
        self.workers = workers
        self.checkpoint_out = checkpoint_out
        self.resume = resume
        self.on_worker_loss = on_worker_loss
        self.worker_stall_timeout = worker_stall_timeout
        self.checkpoint_interval_waves = checkpoint_interval_waves
        self.checkpoint_interval_seconds = checkpoint_interval_seconds
        self.checkpoint_keep_last = checkpoint_keep_last
        self.deadline_seconds = deadline_seconds
        self.max_visited_bytes = max_visited_bytes
        self.chaos_hook = chaos_hook
        self.progress_stream = progress_stream
        self.progress_every = max(1, progress_every)
        # The master keeps this profiler; forked workers inherit the
        # template's copy of the same object but accumulate into their
        # own process memory, shipping totals back in the finish reply.
        self.profiler = profiler
        # Same inheritance story for the atlas recorder: each forked
        # worker records its shard's visits and edges privately and
        # ships bottom-k sketches back in the finish reply; merging
        # per-worker sketches is exactly the global sketch, so the
        # built atlas is identical at any worker count.
        self.atlas = atlas
        self._progress_window: deque = deque(maxlen=8)
        # One fully configured serial checker serves as the template the
        # forked workers inherit, and as the replay engine for validating
        # reconstructed counterexamples.
        # Symmetry canonicalization lives entirely in the template's
        # fingerprint_fn: workers shard and dedupe by canonical
        # fingerprint, so the orbit quotient falls out of the existing
        # exchange protocol with no new message kinds.
        self._template = ModelChecker(
            protocol, n_nodes=n_nodes, n_blocks=n_blocks,
            reorder_bound=reorder_bound, events=events,
            invariants=invariants, max_states=max_states,
            channel_cap=channel_cap,
            interpreter_factory=interpreter_factory,
            fingerprint_states=True, fingerprint_fn=fingerprint_fn,
            fault_budget=fault_budget, profiler=profiler, atlas=atlas,
            engine=engine, symmetry=symmetry)
        self.symmetry = symmetry

    # -- checkpoint plumbing ------------------------------------------------

    def _write_checkpoint(self, path, conns, meta, wave, stats,
                          durable=True) -> None:
        if self.profiler is not None:
            started = time.perf_counter()
            try:
                self._write_checkpoint_inner(
                    path, conns, meta, wave, stats, durable)
            finally:
                self.profiler.add_phase(
                    "checkpoint_io", time.perf_counter() - started)
            return
        self._write_checkpoint_inner(path, conns, meta, wave, stats,
                                     durable)

    def _write_checkpoint_inner(self, path, conns, meta, wave,
                                stats, durable=True) -> None:
        visited: list[str] = []
        parents: dict[str, list] = {}
        invariant_evals = dict(stats["invariant_evals"])
        handler_fires = dict(stats["handler_fires"])
        for i, conn in enumerate(conns):
            try:
                conn.send(("collect",))
                _, shard = conn.recv()
            except (BrokenPipeError, EOFError, OSError):
                raise _WorkerLost(i, "checkpoint collect") from None
            visited.extend(f"{fp:016x}" for fp in shard["visited"])
            for fp, (pfp, label) in shard["parents"].items():
                parents[f"{fp:016x}"] = [
                    None if pfp is None else f"{pfp:016x}", label]
            for name, count in shard["invariant_evals"].items():
                invariant_evals[name] = invariant_evals.get(name, 0) + count
            for name, count in shard["handler_fires"].items():
                handler_fires[name] = handler_fires.get(name, 0) + count
        # The pending frontier is stored by reference (null state
        # slot): each record's (parent fp, label) chain reconstructs
        # the concrete state at resume by memoized replay.  Fetching
        # and serializing thousands of concrete stash states made
        # every periodic write O(frontier x state size).
        frontier: list = []
        for batch in meta:
            for fp, pfp, label, depth, _sender in batch:
                frontier.append([
                    f"{fp:016x}", None,
                    None if pfp is None else f"{pfp:016x}", label, depth])
        payload = dict(config_echo(self._template, self.symmetry))
        payload.update({
            "kind": CHECKPOINT_KIND,
            "v": CHECKPOINT_VERSION,
            "wave": wave,
            "transitions": stats["transitions"],
            "max_depth": stats["max_depth"],
            "elapsed": stats["elapsed"],
            "invariant_evals": invariant_evals,
            "handler_fires": handler_fires,
            "visited": visited,
            "parents": parents,
            "frontier": frontier,
        })
        write_checkpoint(path, payload, self.checkpoint_keep_last,
                         durable=durable)

    def _write_checkpoint_from_mirror(self, path, mirror) -> None:
        """Salvage checkpoint: built purely from the master's mirror,
        for when the worker fleet is no longer trustworthy (recovery
        budget exhausted).  Pending frontier states are stored by
        reference, like every other writer's."""
        pending = mirror["pending"]
        payload = dict(config_echo(self._template, self.symmetry))
        payload.update({
            "kind": CHECKPOINT_KIND,
            "v": CHECKPOINT_VERSION,
            "wave": mirror["wave"],
            "transitions": mirror["transitions"],
            "max_depth": mirror["max_depth"],
            "elapsed": mirror["elapsed_at_cut"],
            "invariant_evals": dict(mirror["invariant_evals"]),
            "handler_fires": dict(mirror["handler_fires"]),
            "visited": [f"{fp:016x}" for fp in mirror["visited"]],
            "parents": {
                f"{fp:016x}": [
                    None if pfp is None else f"{pfp:016x}", label]
                for fp, (pfp, label) in mirror["parents"].items()
                if fp not in pending},
            "frontier": [
                [f"{fp:016x}", None,
                 None if pfp is None else f"{pfp:016x}", label, depth]
                for fp, (pfp, label, depth) in pending.items()],
        })
        write_checkpoint(path, payload, self.checkpoint_keep_last)

    # -- degrade-mode mirror ------------------------------------------------

    def _pending_states(self, mirror) -> dict:
        """Concrete states for every pending frontier record.

        The seed wave's states are kept in the mirror directly (they
        arrived as full states); later waves' states lived only in the
        lost workers' stashes and are reconstructed by replaying each
        record's parent-label chain from the initial state -- the same
        deterministic replay that validates counterexample traces, so a
        chain that fails to replay is a real integrity error."""
        states = dict(mirror["pending_states"])
        missing = [fp for fp in mirror["pending"] if fp not in states]
        if not missing:
            return states
        template = self._template
        replayer = template.fresh_clone()
        replayer._named_invariants = [
            (replayer._invariant_name(inv), inv)
            for inv in replayer.invariants]
        parents = mirror["parents"]
        # Sibling frontier states share almost their whole chain, so
        # replayed ancestors are cached by fingerprint and each chain
        # replays only the suffix below its deepest cached ancestor.
        cache: dict = {}
        initial = initial_global_state(
            template.protocol, template.n_nodes, template.n_blocks,
            template.home_of, template.events.initial,
            faults=template.fault_budget)
        markers = ("<initial>", "<stuck>", "<thread lost>")
        for fp in missing:
            chain: list = []
            cursor = fp
            while cursor is not None and cursor not in cache:
                entry = parents.get(cursor)
                if entry is None:
                    raise CheckpointError(
                        f"recovery mirror parent chain broken at "
                        f"fingerprint {cursor:016x}")
                pfp, label = entry
                chain.append((cursor, label if pfp is not None else None))
                cursor = pfp
            state = cache[cursor] if cursor is not None else initial
            for node_fp, label in reversed(chain):
                if label is not None and label not in markers:
                    try:
                        state = replay_step(replayer, state, label)
                    except TraceReplayError as error:
                        raise CheckpointError(
                            f"frontier replay failed ({error}); the "
                            "checkpoint does not match this protocol "
                            "build") from None
                cache[node_fp] = state
            states[fp] = state
        return states

    def _advance_mirror(self, mirror, meta, wave, transitions, max_depth,
                        baseline, expand_replies, start) -> None:
        """Snapshot the consistent cut at this wave barrier.

        Called right after routing: every previously pending state has
        now been accepted and expanded (fold it into the mirror's
        visited set), and ``meta`` holds the next wave's candidates.
        The owner-side minimum-edge rule is applied here exactly as the
        owners will apply it at ingest, so the mirror's parent edges
        are the same canonical spanning tree the workers build."""
        mirror["visited"].update(mirror["pending"])
        mirror["pending"] = {}
        mirror["pending_states"] = {}
        visited = mirror["visited"]
        pending: dict = {}
        for batch in meta:
            for fp, pfp, label, depth, _sender in batch:
                if fp in visited:
                    continue
                current = pending.get(fp)
                if current is None or (pfp, label) < (current[0],
                                                      current[1]):
                    pending[fp] = (pfp, label, depth)
        mirror["pending"] = pending
        for fp, (pfp, label, _depth) in pending.items():
            mirror["parents"][fp] = (pfp, label)
        mirror["wave"] = wave
        mirror["transitions"] = transitions
        mirror["max_depth"] = max_depth
        mirror["elapsed_at_cut"] = (mirror["elapsed"]
                                    + (time.perf_counter() - start))
        invariant_evals = dict(baseline["invariant_evals"])
        handler_fires = dict(baseline["handler_fires"])
        for reply in expand_replies:
            if not reply:
                continue
            for name, count in reply["inv_detail"].items():
                invariant_evals[name] = (
                    invariant_evals.get(name, 0) + count)
            for name, count in reply["fire_detail"].items():
                handler_fires[name] = handler_fires.get(name, 0) + count
        mirror["invariant_evals"] = invariant_evals
        mirror["handler_fires"] = handler_fires

    # -- trace reconstruction -----------------------------------------------

    def _trace_for(self, conns, record, n: int, mirror=None) -> Violation:
        kind, message, depth, fp, extra_label = record
        labels: list[str] = []
        cursor = fp
        while cursor is not None:
            if mirror is not None:
                # Degrade mode: walk the master's mirror instead of
                # querying the (possibly already disturbed) workers --
                # trace construction itself must survive a loss.  The
                # mirror's edges are the same canonical minimum the
                # owners stored, so the trace is identical.
                entry = mirror["parents"].get(cursor)
            else:
                conn = conns[cursor % n]
                try:
                    conn.send(("parent", cursor))
                    _, entry = conn.recv()
                except (BrokenPipeError, EOFError, OSError):
                    raise _WorkerLost(cursor % n, "trace walk") from None
            if entry is None:
                raise CheckpointError(
                    f"parent chain broken at fingerprint {cursor:016x}")
            pfp, label = entry
            if pfp is not None:
                labels.append(label)
            cursor = pfp
        labels.reverse()
        if kind == "error":
            labels.append(extra_label)
        elif kind == "deadlock":
            labels.append("<stuck>")
        elif not labels:
            labels = ["<initial>"]     # invariant violated in the initial state
        return Violation(kind, message, labels)

    # -- the master loop ----------------------------------------------------

    def run(self) -> CheckResult:
        """Explore, supervising the worker fleet.

        Worker losses surface here: under ``on_worker_loss="fail"`` the
        first loss raises :class:`WorkerLostError`; under ``"degrade"``
        the run restarts from the mirror's last consistent cut on one
        fewer worker, and -- if losses keep coming past the recovery
        budget -- salvages a checkpoint and returns a truncated result
        with ``stop_reason="worker_lost"``."""
        template = self._template
        start = time.perf_counter()

        mirror = {
            "visited": set(), "parents": {}, "pending": {},
            "pending_states": {}, "wave": 0, "transitions": 0,
            "max_depth": 0, "invariant_evals": {}, "handler_fires": {},
            "elapsed": 0.0, "elapsed_at_cut": 0.0,
        }
        if self.resume:
            payload = load_checkpoint(self.resume)
            validate_resume(
                payload, config_echo(template, self.symmetry), self.resume)
            for key in ("wave", "transitions", "max_depth",
                        "invariant_evals", "handler_fires"):
                mirror[key] = payload[key]
            mirror["elapsed"] = payload["elapsed"]
            mirror["elapsed_at_cut"] = payload["elapsed"]
            mirror["visited"] = {int(fp_hex, 16)
                                 for fp_hex in payload["visited"]}
            mirror["parents"] = {
                int(fp_hex, 16): (
                    None if pfp_hex is None else int(pfp_hex, 16), label)
                for fp_hex, (pfp_hex, label) in payload["parents"].items()}
            # A checkpoint frontier may propose the same state from
            # several senders; keep the canonical-minimum edge -- the
            # same rule the worker seed op applies -- so the mirror and
            # the workers agree on the spanning tree from wave one.
            for fp_hex, state_json, pfp_hex, label, depth in (
                    payload["frontier"]):
                fp = int(fp_hex, 16)
                pfp = None if pfp_hex is None else int(pfp_hex, 16)
                edge = (pfp if pfp is not None else -1, label or "")
                current = mirror["pending"].get(fp)
                if current is not None:
                    held = (current[0] if current[0] is not None else -1,
                            current[1] or "")
                    if edge >= held:
                        continue
                mirror["pending"][fp] = (pfp, label, depth)
                if state_json is not None:
                    # Serial writers store frontier states by reference
                    # (null slot); _pending_states replays those from
                    # their parent chains when the seed op needs them.
                    mirror["pending_states"][fp] = state_from_jsonable(
                        state_json)
                mirror["parents"][fp] = (pfp, label)
        else:
            initial = initial_global_state(
                template.protocol, template.n_nodes, template.n_blocks,
                template.home_of, template.events.initial,
                faults=template.fault_budget)
            fp0 = template.fingerprint_fn(initial)
            mirror["pending"][fp0] = (None, "<initial>", 0)
            mirror["pending_states"][fp0] = initial
            mirror["parents"][fp0] = (None, "<initial>")

        n = self.workers
        worker_losses = 0
        # Each loss sheds a worker; allow a few extra attempts at the
        # one-worker floor before declaring the environment hostile.
        max_recoveries = self.workers + 4
        last_loss: Optional[_WorkerLost] = None
        while True:
            try:
                return self._explore(n, mirror, start, worker_losses)
            except WorkerLostError:
                if last_loss is None:
                    raise     # could not even start the first fleet
                return self._salvage(mirror, start, worker_losses)
            except _WorkerLost as loss:
                last_loss = loss
                worker_losses += 1
                if self.on_worker_loss != "degrade":
                    raise WorkerLostError(
                        f"worker {loss.worker_id} died during "
                        f"{loss.phase}; rerun with "
                        f"on_worker_loss='degrade' (CLI: --on-worker-loss "
                        f"degrade) to re-shard onto the survivors and "
                        f"continue") from None
                if worker_losses > max_recoveries:
                    return self._salvage(mirror, start, worker_losses)
                n = max(1, n - 1)

    def _salvage(self, mirror, start, worker_losses: int) -> CheckResult:
        """Recovery budget exhausted: persist the mirror's cut and
        return what was soundly explored up to it."""
        template = self._template
        if self.checkpoint_out:
            self._write_checkpoint_from_mirror(self.checkpoint_out, mirror)
        return CheckResult(
            protocol_name=template.protocol.name,
            ok=True,
            states_explored=len(mirror["visited"]),
            transitions=mirror["transitions"],
            max_depth=mirror["max_depth"],
            elapsed_seconds=mirror["elapsed"]
            + (time.perf_counter() - start),
            violation=None,
            n_nodes=template.n_nodes,
            n_blocks=template.n_blocks,
            reorder_bound=template.reorder_bound,
            hit_state_limit=False,
            invariant_evals=dict(mirror["invariant_evals"]),
            handler_fires=dict(mirror["handler_fires"]),
            exhausted=False,
            workers=self.workers,
            fault_budget=template.fault_budget,
            canonical_states=(len(mirror["visited"]) if self.symmetry
                              else None),
            stop_reason="worker_lost",
            worker_losses=worker_losses,
        )

    def _spawn_worker(self, ctx, i: int, n: int):
        """Start one worker process, retrying transient spawn failures
        with exponential backoff."""
        last_error = None
        for attempt in range(_SPAWN_ATTEMPTS):
            if attempt:
                time.sleep(0.05 * (2 ** (attempt - 1)))
            try:
                parent_conn, child_conn = ctx.Pipe()
                proc = ctx.Process(target=_worker_main,
                                   args=(child_conn, i, n, self._template),
                                   daemon=True)
                proc.start()
                child_conn.close()
                return parent_conn, proc
            except OSError as error:  # pragma: no cover - env-dependent
                last_error = error
        raise WorkerLostError(
            f"could not spawn worker {i} after {_SPAWN_ATTEMPTS} "
            f"attempts: {last_error}")

    def _explore(self, n: int, mirror, start, worker_losses: int
                 ) -> CheckResult:
        template = self._template
        track = self.on_worker_loss == "degrade"

        baseline = {key: (dict(mirror[key]) if isinstance(mirror[key], dict)
                          else mirror[key])
                    for key in ("wave", "transitions", "max_depth",
                                "elapsed", "invariant_evals",
                                "handler_fires")}
        pending = mirror["pending"]
        loads: list[tuple[list, dict]] = [([], {}) for _ in range(n)]
        for fp in mirror["visited"]:
            loads[fp % n][0].append(fp)
        for fp, entry in mirror["parents"].items():
            if fp in pending:
                continue
            loads[fp % n][1][fp] = entry
        pending_states = self._pending_states(mirror)
        seeds: list[list] = [[] for _ in range(n)]
        for fp, (pfp, label, depth) in pending.items():
            seeds[fp % n].append(
                (fp, pending_states[fp], pfp, label, depth))

        if "fork" in multiprocessing.get_all_start_methods():
            ctx = multiprocessing.get_context("fork")
        else:  # pragma: no cover - non-Linux fallback
            ctx = multiprocessing.get_context("spawn")

        conns = []
        procs = []
        for i in range(n):
            parent_conn, proc = self._spawn_worker(ctx, i, n)
            conns.append(parent_conn)
            procs.append(proc)

        interrupted = False

        def call_all(ops, phase: str):
            """Send ``ops[i]`` to worker i (None skips) and collect one
            reply each, polling with liveness checks so a dead or
            wedged worker raises :class:`_WorkerLost` instead of
            hanging the barrier.  A Ctrl-C mid-phase flags
            ``interrupted`` and still drains the phase, so the master
            always reaches the next layer boundary with consistent
            worker state."""
            nonlocal interrupted
            replies: list = [None] * n
            got = [False] * n
            sent = [False] * n
            waited = [0.0] * n
            while True:
                try:
                    for i, conn in enumerate(conns):
                        if ops[i] is None or sent[i]:
                            continue
                        if not procs[i].is_alive():
                            raise _WorkerLost(i, phase)
                        try:
                            conn.send(ops[i])
                        except (BrokenPipeError, OSError):
                            raise _WorkerLost(i, phase) from None
                        sent[i] = True
                    for i, conn in enumerate(conns):
                        if ops[i] is None or got[i]:
                            continue
                        while not got[i]:
                            try:
                                if conn.poll(_LIVENESS_POLL_SECONDS):
                                    replies[i] = conn.recv()[1]
                                    got[i] = True
                                    break
                            except (EOFError, OSError):
                                raise _WorkerLost(i, phase) from None
                            waited[i] += _LIVENESS_POLL_SECONDS
                            if not procs[i].is_alive():
                                raise _WorkerLost(i, phase)
                            if (self.worker_stall_timeout is not None
                                    and waited[i]
                                    >= self.worker_stall_timeout):
                                procs[i].kill()
                                raise _WorkerLost(
                                    i, f"{phase} (stalled "
                                    f">{self.worker_stall_timeout:g}s)")
                    return replies
                except KeyboardInterrupt:
                    interrupted = True

        try:
            if mirror["visited"]:
                call_all([("load", loads[i][0], loads[i][1])
                          for i in range(n)], "load")

            wave = baseline["wave"]
            transitions = baseline["transitions"]
            max_depth = baseline["max_depth"]
            hit_limit = False
            stop_reason: Optional[str] = None
            violation_record = None
            prof = self.profiler
            if prof is not None:
                prof.begin()

            def stats_now():
                return {
                    "transitions": transitions,
                    "max_depth": max_depth,
                    "elapsed": baseline["elapsed"]
                    + (time.perf_counter() - start),
                    "invariant_evals": dict(baseline["invariant_evals"]),
                    "handler_fires": dict(baseline["handler_fires"]),
                }

            # Seed the first layer: the initial state, or a resumed
            # checkpoint's frontier.  Acceptance (dedupe, parent
            # pointers, invariants) happens at the owner exactly as it
            # will for every later layer.
            seed_started = time.perf_counter()
            seed_replies = call_all([("seed", seeds[i]) for i in range(n)],
                                    "seed")
            total_states = sum(r["visited"] for r in seed_replies if r)
            max_depth = max([max_depth] + [r["max_depth"]
                                           for r in seed_replies if r])
            ready_counts = [r["ready"] if r else 0 for r in seed_replies]
            pending_violations = [v for r in seed_replies if r
                                  for v in r["violations"]]
            if prof is not None:
                prof.record_wave(
                    wave, time.perf_counter() - seed_started,
                    [{"id": i,
                      "busy_seconds": r["seconds"] if r else 0.0,
                      "accepted": 0}
                     for i, r in enumerate(seed_replies)])

            last_bucket = total_states // self.progress_every
            last_replies: list = []
            last_ckpt_wave = baseline["wave"]
            last_ckpt_time = time.perf_counter()
            last_ckpt_cost = 0.0

            while True:
                cycle_started = time.perf_counter()

                if self.chaos_hook is not None:
                    # Fault-injection point for the chaos harness: the
                    # hook may SIGKILL/SIGSTOP workers; the next barrier
                    # detects the damage through the liveness polls.
                    self.chaos_hook(wave, procs)

                # Balance the coming expansion: relocate tasks from the
                # richest ready set to the poorest when the gap is worth
                # the round-trips.  Based only on deterministic counts,
                # so results stay run-to-run identical.
                if n > 1 and not interrupted:
                    rich = max(range(n), key=lambda i: ready_counts[i])
                    poor = min(range(n), key=lambda i: ready_counts[i])
                    gap = ready_counts[rich] - ready_counts[poor]
                    if gap >= _STEAL_THRESHOLD:
                        count = gap // 2
                        ops: list = [None] * n
                        ops[rich] = ("donate", count)
                        tasks = call_all(ops, "donate")[rich] or []
                        if tasks:
                            ops = [None] * n
                            ops[poor] = ("take", tasks)
                            call_all(ops, "take")
                            ready_counts[rich] -= len(tasks)
                            ready_counts[poor] += len(tasks)

                wave_no = wave
                expand_replies = call_all([("expand", wave_no)] * n,
                                          "expand")
                wave += 1
                expand_wall = time.perf_counter() - cycle_started
                last_replies = expand_replies
                transitions = baseline["transitions"] + sum(
                    r["transitions"] for r in expand_replies if r)
                max_depth = max([max_depth] + [r["max_depth"]
                                               for r in expand_replies if r])

                # Route successor metadata (fingerprints only; the
                # states wait in the sender stashes).
                meta: list[list] = [[] for _ in range(n)]
                frontier_size = 0
                for sender, reply in enumerate(expand_replies):
                    if not reply:
                        continue
                    for owner, batch in reply["outbox"].items():
                        meta[owner].extend(
                            (fp, pfp, label, depth, sender)
                            for fp, pfp, label, depth in batch)
                        frontier_size += len(batch)
                        if prof is not None:
                            prof.add_cross_shard(
                                len(batch), len(pickle.dumps(batch)))

                if prof is not None:
                    prof.sample(total_states, frontier_size, max_depth,
                                transitions)
                if (self.progress_stream is not None
                        and total_states // self.progress_every
                        > last_bucket):
                    last_bucket = total_states // self.progress_every
                    self._report_progress(
                        total_states, frontier_size, max_depth,
                        transitions, start, baseline, expand_replies)

                def record_partial_wave():
                    if prof is not None:
                        prof.record_wave(
                            wave_no, expand_wall,
                            [{"id": i,
                              "busy_seconds": r["seconds"] if r else 0.0,
                              "accepted": r["accepted"] if r else 0}
                             for i, r in enumerate(expand_replies)])

                if track:
                    # The layer boundary is a consistent cut: every
                    # accepted state is expanded, every pending
                    # candidate is in ``meta`` with its state stashed
                    # at the sender.  Snapshot it so a later worker
                    # loss can recover exactly here.
                    self._advance_mirror(
                        mirror, meta, wave, transitions, max_depth,
                        baseline, expand_replies, start)

                if interrupted:
                    record_partial_wave()
                    if self.checkpoint_out:
                        self._write_checkpoint(
                            self.checkpoint_out, conns, meta, wave,
                            stats_now())
                    stop_reason = "interrupted"
                    break

                violations = pending_violations + [
                    v for r in expand_replies if r for v in r["violations"]]
                if violations:
                    violation_record = min(violations, key=_violation_rank)
                    record_partial_wave()
                    break
                # A concrete violation outranks a certification failure
                # (FAIL verdicts are sound regardless of symmetry); with
                # none this wave, a failed certification aborts the run
                # -- the enclosing ``finally`` tears the workers down.
                symmetry_errors = [
                    r["symmetry_error"] for r in expand_replies
                    if r and r.get("symmetry_error")]
                if symmetry_errors:
                    raise SymmetryError(min(symmetry_errors))
                # Resource budgets stop the run at this clean boundary:
                # checkpoint the cut, then report why via stop_reason.
                if (self.deadline_seconds is not None
                        and time.perf_counter() - start
                        >= self.deadline_seconds):
                    stop_reason = "deadline"
                elif (self.max_visited_bytes is not None
                      and sum(r["visited_bytes"]
                              for r in expand_replies if r)
                      > self.max_visited_bytes):
                    stop_reason = "memory"
                if stop_reason is not None:
                    record_partial_wave()
                    if self.checkpoint_out:
                        self._write_checkpoint(
                            self.checkpoint_out, conns, meta, wave,
                            stats_now())
                    break
                if total_states >= template.max_states:
                    hit_limit = True
                    record_partial_wave()
                    if self.checkpoint_out:
                        self._write_checkpoint(
                            self.checkpoint_out, conns, meta, wave,
                            stats_now())
                    break
                if frontier_size == 0:
                    record_partial_wave()
                    break
                if (self.checkpoint_out is not None
                        and (self.checkpoint_interval_waves
                             or self.checkpoint_interval_seconds)):
                    now = time.perf_counter()
                    if (((self.checkpoint_interval_waves
                          and wave - last_ckpt_wave
                          >= self.checkpoint_interval_waves)
                         or (self.checkpoint_interval_seconds
                             and now - last_ckpt_time
                             >= self.checkpoint_interval_seconds))
                            and now - last_ckpt_time
                            >= PERIODIC_SPACING_RATIO * last_ckpt_cost):
                        # Periodic writes skip the fsync (loss window
                        # is the next interval); stop-reason and final
                        # checkpoints stay durable.  The spacing guard
                        # self-limits checkpoint time to a bounded
                        # wall-time fraction (see PERIODIC_SPACING_RATIO).
                        self._write_checkpoint(
                            self.checkpoint_out, conns, meta, wave,
                            stats_now(), durable=False)
                        last_ckpt_wave = wave
                        last_ckpt_cost = time.perf_counter() - now
                        last_ckpt_time = time.perf_counter()

                # Owners dedupe the candidates; fresh own-shard states
                # resolve locally, foreign ones are staged per sender.
                ingest_replies = call_all(
                    [("ingest", meta[i]) for i in range(n)], "ingest")

                # Fetch only the states that survived dedupe, then hand
                # them to their owners.
                need_by_sender: list[list] = [[] for _ in range(n)]
                for owner, reply in enumerate(ingest_replies):
                    if not reply:
                        continue
                    for sender, fps in reply["need"].items():
                        need_by_sender[sender].append((owner, fps))
                fetch_ops: list = [
                    ("fetch", [fp for _owner, fps in need_by_sender[i]
                               for fp in fps])
                    if need_by_sender[i] else None
                    for i in range(n)]
                fetch_replies = call_all(fetch_ops, "fetch")
                adopt_batches: list[list] = [[] for _ in range(n)]
                for sender in range(n):
                    if fetch_ops[sender] is None or not fetch_replies[sender]:
                        continue
                    fetched = dict(fetch_replies[sender])
                    for owner, fps in need_by_sender[sender]:
                        adopt_batches[owner].extend(
                            (fp, fetched[fp]) for fp in fps)
                if prof is not None:
                    for batch in adopt_batches:
                        if batch:
                            # Entries were already counted at routing;
                            # this adds the state-shipping bytes.
                            prof.add_cross_shard(0, len(pickle.dumps(batch)))
                adopt_replies = call_all(
                    [("adopt", adopt_batches[i]) for i in range(n)],
                    "adopt")

                total_states = sum(r["visited"] for r in adopt_replies if r)
                max_depth = max([max_depth] + [r["max_depth"]
                                               for r in adopt_replies if r])
                ready_counts = [r["ready"] if r else 0
                                for r in adopt_replies]
                pending_violations = (
                    [v for r in ingest_replies if r
                     for v in r["violations"]]
                    + [v for r in adopt_replies if r
                       for v in r["violations"]])
                if prof is not None:
                    prof.record_wave(
                        wave_no, time.perf_counter() - cycle_started,
                        [{"id": i,
                          "busy_seconds": (
                              (expand_replies[i]["seconds"]
                               if expand_replies[i] else 0.0)
                              + (ingest_replies[i]["seconds"]
                                 if ingest_replies[i] else 0.0)
                              + (adopt_replies[i]["seconds"]
                                 if adopt_replies[i] else 0.0)),
                          "accepted": (expand_replies[i]["accepted"]
                                       if expand_replies[i] else 0)}
                         for i in range(n)])

            violation = None
            if violation_record is not None:
                violation = self._trace_for(
                    conns, violation_record, n,
                    mirror=mirror if track else None)

            invariant_evals = dict(baseline["invariant_evals"])
            handler_fires = dict(baseline["handler_fires"])
            finish_replies = call_all([("finish",)] * n, "finish")
            for stats in finish_replies:
                if not stats:
                    continue
                for name, count in stats["invariant_evals"].items():
                    invariant_evals[name] = (
                        invariant_evals.get(name, 0) + count)
                for name, count in stats["handler_fires"].items():
                    handler_fires[name] = handler_fires.get(name, 0) + count
                if prof is not None:
                    prof.merge_worker(stats.get("profile"))
                if self.atlas is not None:
                    self.atlas.merge(stats.get("atlas"))
            for proc in procs:
                proc.join(timeout=30)

            if violation is not None:
                # Collision guard: the trace came from fingerprint-keyed
                # parent pointers sharded across workers; it must replay.
                template.verify_violation(violation)

            if self.progress_stream is not None:
                self._report_progress(
                    total_states, 0, max_depth, transitions, start,
                    baseline, last_replies, final=True)

            result = CheckResult(
                protocol_name=template.protocol.name,
                ok=violation is None,
                states_explored=total_states,
                transitions=transitions,
                max_depth=max_depth,
                elapsed_seconds=baseline["elapsed"]
                + (time.perf_counter() - start),
                violation=violation,
                n_nodes=template.n_nodes,
                n_blocks=template.n_blocks,
                reorder_bound=template.reorder_bound,
                hit_state_limit=hit_limit,
                invariant_evals=invariant_evals,
                handler_fires=handler_fires,
                exhausted=not hit_limit and stop_reason is None,
                workers=self.workers,
                fault_budget=template.fault_budget,
                canonical_states=(total_states if self.symmetry else None),
                stop_reason=stop_reason,
                worker_losses=worker_losses,
            )
            if prof is not None:
                result.profile = prof.build(result)
            if self.atlas is not None:
                self.atlas.bind(template.protocol, template.n_nodes,
                                template.n_blocks)
                result.atlas = self.atlas.build(result)
            return result
        finally:
            for proc in procs:
                if proc.is_alive():
                    proc.terminate()
            for proc in procs:
                proc.join(timeout=10)
            for conn in conns:
                conn.close()

    def _report_progress(self, states, frontier_size, max_depth, transitions,
                         start, baseline, replies, final=False) -> None:
        elapsed = baseline["elapsed"] + (time.perf_counter() - start)
        rate = states / elapsed if elapsed > 0 else float(states)
        rolling = _rolling_rate(self._progress_window, elapsed, states)
        eta = None
        if not final:
            eta = _eta_seconds(states, self._template.max_states,
                               rolling if rolling is not None else rate)
        inv_evals = sum(baseline["invariant_evals"].values()) + sum(
            reply["inv_evals"] for reply in replies if reply)
        per_worker = " ".join(
            f"w{i}={reply['accepted'] / reply['seconds']:.0f}/s"
            if reply and reply["seconds"] > 0 else f"w{i}=idle"
            for i, reply in enumerate(replies))
        print(
            format_progress_line(
                self._template.protocol.name, states, frontier_size,
                max_depth, transitions, inv_evals, rate, rolling, eta,
                "done" if final else "...", extra=f" [{per_worker}]"),
            file=self.progress_stream, flush=True)
