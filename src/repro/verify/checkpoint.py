"""Sealed, crash-safe checkpoint I/O shared by both checking engines.

A checkpoint is pure JSON (kind ``teapot-parallel-checkpoint``, v1 --
the name is historical; the serial checker writes and resumes the same
format).  This module owns the on-disk concerns both engines share:

* **Atomic writes** -- every checkpoint goes through
  :func:`repro.ioutil.atomic_write_json` (tmp + fsync + rename), so a
  crash mid-write can never leave a parseable-but-partial file.
* **A payload seal** -- a BLAKE2b digest over the canonical JSON of the
  payload (excluding the ``seal`` field itself and the volatile
  ``elapsed`` wall-clock, which legitimately differs between otherwise
  identical runs).  :func:`load_checkpoint` verifies it, turning
  bit-flips and truncation into a one-line :class:`CheckpointError`
  instead of a resumed-from-garbage run.  Checkpoints written before
  the seal existed (no ``seal`` key) still load.
* **Rotation** -- ``keep_last`` > 1 shifts ``path`` -> ``path.1`` ->
  ``path.2`` ... before each write, keeping a bounded history of the
  newest checkpoints.
* **Config echo** -- the configuration fingerprint embedded in every
  checkpoint so a resume against a different protocol/topology fails
  loudly rather than exploring nonsense.
"""

from __future__ import annotations

import hashlib
import json
import os

from repro.ioutil import atomic_write_text

CHECKPOINT_KIND = "teapot-parallel-checkpoint"
CHECKPOINT_VERSION = 1

# Keys excluded from the seal: the seal itself, and the one field two
# byte-identical explorations legitimately disagree on (wall time).
_UNSEALED_KEYS = ("seal", "elapsed")

# Periodic checkpoints self-limit: a scheduled write is deferred until
# the time since the last write is at least this multiple of that
# write's measured cost, capping checkpoint time at <= 1/(1+ratio) =
# 5% of wall regardless of state-space size or filesystem speed --
# half the 10% budget the CI bench gate enforces, so the measured
# overhead clears the gate even under scheduling noise.  The interval
# flags are therefore a request, not a promise of cadence; a slow disk
# widens the spacing instead of stalling the search.
PERIODIC_SPACING_RATIO = 19.0


class CheckpointError(ValueError):
    """A checkpoint file is malformed, corrupt, or belongs to another
    run."""


def seal_payload(payload: dict) -> str:
    """BLAKE2b digest of the payload's canonical JSON (sorted keys,
    compact separators), excluding the seal and elapsed fields."""
    body = {key: value for key, value in payload.items()
            if key not in _UNSEALED_KEYS}
    canonical = json.dumps(body, sort_keys=True, separators=(",", ":"))
    return hashlib.blake2b(canonical.encode(), digest_size=16).hexdigest()


def write_checkpoint(path: str, payload: dict, keep_last: int = 1,
                     durable: bool = True) -> None:
    """Seal and atomically write a checkpoint, rotating prior files.

    With ``keep_last=N`` the previous checkpoint survives as
    ``path.1`` (and older ones as ``path.2`` ... ``path.N-1``).

    The payload is serialized exactly once: the canonical JSON the seal
    is computed over *is* the file body, with the unsealed fields
    (``seal``, ``elapsed``) spliced onto the end.  Periodic checkpoints
    fire many times per run, and serializing a large visited set twice
    (once to seal, once to write) was the single biggest cost.

    ``durable=False`` skips the fsync (rename atomicity is kept):
    right for *periodic* checkpoints, whose loss window is the next
    interval; final and stop-reason checkpoints should stay durable."""
    keep_last = max(1, int(keep_last))
    for age in range(keep_last - 1, 0, -1):
        older = path if age == 1 else f"{path}.{age - 1}"
        if os.path.exists(older):
            os.replace(older, f"{path}.{age}")
    body = {key: value for key, value in payload.items()
            if key not in _UNSEALED_KEYS}
    canonical = json.dumps(body, sort_keys=True, separators=(",", ":"))
    seal = hashlib.blake2b(canonical.encode(), digest_size=16).hexdigest()
    tail = f',"seal":{json.dumps(seal)}'
    if "elapsed" in payload:
        tail += f',"elapsed":{json.dumps(payload["elapsed"])}'
    atomic_write_text(path, f"{canonical[:-1]}{tail}}}\n", fsync=durable)


def load_checkpoint(path: str) -> dict:
    """Read, seal-verify, and structurally validate a checkpoint.

    Every failure mode is a one-line :class:`CheckpointError`: not
    JSON (truncated or binary-corrupted), wrong kind, unknown version,
    or a seal mismatch (bit-flipped payload)."""
    try:
        with open(path) as handle:
            payload = json.load(handle)
    except json.JSONDecodeError as error:
        raise CheckpointError(
            f"{path}: truncated or corrupt checkpoint "
            f"(not valid JSON: {error.msg} at line {error.lineno})"
        ) from None
    except UnicodeDecodeError:
        raise CheckpointError(
            f"{path}: truncated or corrupt checkpoint (not UTF-8 text)"
        ) from None
    if not isinstance(payload, dict) or payload.get("kind") != CHECKPOINT_KIND:
        raise CheckpointError(f"{path}: not a teapot parallel checkpoint")
    if payload.get("v") != CHECKPOINT_VERSION:
        raise CheckpointError(
            f"{path}: checkpoint version {payload.get('v')!r}, "
            f"expected {CHECKPOINT_VERSION}")
    stored_seal = payload.get("seal")
    if stored_seal is not None:
        computed = seal_payload(payload)
        if stored_seal != computed:
            raise CheckpointError(
                f"{path}: seal mismatch (stored {stored_seal[:12]}..., "
                f"computed {computed[:12]}...); the checkpoint was "
                "corrupted or edited after it was written")
    for key in ("wave", "transitions", "max_depth", "elapsed",
                "invariant_evals", "handler_fires", "visited", "parents",
                "frontier"):
        if key not in payload:
            raise CheckpointError(
                f"{path}: checkpoint is missing the {key!r} field")
    return payload


def config_echo(checker, symmetry: bool = False) -> dict:
    """The configuration fingerprint embedded in every checkpoint.

    ``checker`` is a serial :class:`~repro.verify.checker.ModelChecker`
    (the parallel engine passes its template, which carries the same
    fields)."""
    echo = {
        "protocol": checker.protocol.name,
        "n_nodes": checker.n_nodes,
        "n_blocks": checker.n_blocks,
        "reorder_bound": checker.reorder_bound,
        "channel_cap": checker.channel_cap,
        "events": type(checker.events).__name__,
    }
    # Included only when nonzero so fault-free checkpoints written
    # before fault budgets existed still validate against the same
    # configuration today.
    if checker.fault_budget != (0, 0):
        echo["faults"] = list(checker.fault_budget)
    # Same back-compat shape: a symmetry-reduced run's visited set is
    # keyed by canonical fingerprints, so its checkpoints must never
    # resume an unreduced run (or vice versa).
    if symmetry:
        echo["symmetry"] = True
    return echo


def validate_resume(payload: dict, echo: dict, path: str) -> None:
    """Reject a checkpoint written under a different configuration."""
    stored = {key: payload.get(key) for key in echo}
    if stored != echo:
        diffs = ", ".join(
            f"{key}: checkpoint={stored[key]!r} run={echo[key]!r}"
            for key in echo if stored[key] != echo[key])
        raise CheckpointError(
            f"{path}: checkpoint is for a different configuration "
            f"({diffs})")
