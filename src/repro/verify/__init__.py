"""Explicit-state model checking of compiled Teapot protocols.

The paper compiles one Teapot source to both executable code and Mur-phi
input, then model-checks by exhaustive state-space exploration
(Section 7).  Mur-phi itself is not available offline, so this package
implements the same class of checker from scratch: breadth-first
exploration of all interleavings of protocol events and (boundedly
reordered) message deliveries, checking that no handler raises an error,
that no unexpected message arrives, that the system cannot deadlock, and
that the single-writer/multiple-reader invariant holds.  Violations come
with a full event trace, like Mur-phi's counterexamples.

Crucially -- and this is the paper's point -- the checker consumes the
*same* :class:`~repro.runtime.protocol.CompiledProtocol` the simulator
executes, through the same interpreter.  The verified artifact is the
executed artifact.

Two engines share that exploration semantics:
:class:`~repro.verify.checker.ModelChecker` (serial, optionally
hash-compacted via :mod:`repro.verify.fingerprint`) and
:class:`~repro.verify.parallel.ParallelChecker` (the state space
hash-partitioned across worker processes, with checkpoint/resume).
"""

from repro.verify.atlas import (
    AtlasRecorder,
    OrbitCanonicalizer,
    StateAtlas,
    load_atlas,
)
from repro.verify.checker import (
    CheckResult,
    FingerprintCollisionError,
    ModelChecker,
    SymmetryError,
    TraceReplayError,
    Violation,
    replay_labels,
)
from repro.verify.checkpoint import CheckpointError, load_checkpoint
from repro.verify.fingerprint import encode_state, fingerprint
from repro.verify.parallel import ParallelChecker, WorkerLostError
from repro.verify.events import (
    CasEvents,
    EventGenerator,
    EvictEvents,
    BufferedWriteEvents,
    LcmEvents,
    StacheEvents,
    events_for_protocol,
)

__all__ = [
    "ModelChecker",
    "ParallelChecker",
    "CheckResult",
    "Violation",
    "TraceReplayError",
    "FingerprintCollisionError",
    "SymmetryError",
    "replay_labels",
    "CheckpointError",
    "WorkerLostError",
    "load_checkpoint",
    "fingerprint",
    "encode_state",
    "AtlasRecorder",
    "OrbitCanonicalizer",
    "StateAtlas",
    "load_atlas",
    "EventGenerator",
    "StacheEvents",
    "CasEvents",
    "EvictEvents",
    "BufferedWriteEvents",
    "LcmEvents",
    "events_for_protocol",
]
