"""Safety invariants checked on every explored state.

The paper: "We currently verify that a protocol does not deadlock and
that it does not receive a message that is not anticipated in a given
state.  Additional assertions can be verified as needed."  Unexpected
messages and explicit ``Error`` calls surface through the handler itself
(as :class:`~repro.verify.model.CheckerViolation`); deadlock is detected
by the search.  This module supplies the *additional* assertions:
access-tag coherence and resource-boundedness.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.runtime.protocol import CompiledProtocol
from repro.tempest.memory import AccessTag
from repro.verify.model import GlobalState

Invariant = Callable[[GlobalState, CompiledProtocol], Optional[str]]


def single_writer(state: GlobalState,
                  protocol: CompiledProtocol) -> Optional[str]:
    """At most one writable copy; never writable + readable elsewhere.

    Blocks whose home sits in an LCM phase state are exempt: controlled
    inconsistency is the point of the phase.
    """
    n_blocks = len(state.blocks[0])
    n_nodes = len(state.blocks)
    for block in range(n_blocks):
        exempt = any(
            "LCM" in state.blocks[node][block].state_name
            for node in range(n_nodes)
        )
        if exempt:
            continue
        writers = []
        readers = []
        for node in range(n_nodes):
            access = state.blocks[node][block].access
            if access == AccessTag.READ_WRITE.value:
                writers.append(node)
            elif access == AccessTag.READ_ONLY.value:
                readers.append(node)
        if len(writers) > 1:
            return (f"block {block}: multiple writers on nodes {writers}")
        if writers and readers:
            return (f"block {block}: writer on node {writers[0]} "
                    f"coexists with readers on {readers}")
    return None


# The factories below memoise their closures per limit so that two
# calls with the same limit return the *same* function object.  The
# checker's cross-run invariant-verdict cache is keyed by the invariant
# tuple; stable identities let every `standard_invariants()` caller
# share it.
_FACTORY_CACHE: dict = {}


def bounded_queues(limit: int = 16) -> Invariant:
    """Deferred queues must stay bounded (else redelivery never drains)."""
    cached = _FACTORY_CACHE.get(("queues", limit))
    if cached is not None:
        return cached

    def check(state: GlobalState,
              protocol: CompiledProtocol) -> Optional[str]:
        for node, node_blocks in enumerate(state.blocks):
            for block, view in enumerate(node_blocks):
                if len(view.queue) > limit:
                    return (f"node {node} block {block}: deferred queue "
                            f"grew past {limit} messages")
        return None

    _FACTORY_CACHE[("queues", limit)] = check
    return check


def bounded_channels(limit: int = 16) -> Invariant:
    """Network channels must stay bounded (request storms are bugs)."""
    cached = _FACTORY_CACHE.get(("channels", limit))
    if cached is not None:
        return cached

    def check(state: GlobalState,
              protocol: CompiledProtocol) -> Optional[str]:
        for src, row in enumerate(state.channels):
            for dst, channel in enumerate(row):
                if len(channel) > limit:
                    return (f"channel {src}->{dst} grew past "
                            f"{limit} messages")
        return None

    _FACTORY_CACHE[("channels", limit)] = check
    return check


def no_parked_continuation_leak(state: GlobalState,
                                protocol: CompiledProtocol) -> Optional[str]:
    """A stable (non-transient) state must not hold continuation args.

    Catches forgotten Resumes: returning to a stable state while a
    captured continuation is still parked would leak it (the paper's
    footnote: "all Suspends must eventually be Resumed ... to prevent
    memory leaks").
    """
    for node, node_blocks in enumerate(state.blocks):
        for block, view in enumerate(node_blocks):
            info = protocol.states.get(view.state_name)
            if info is None or info.transient:
                continue
            if view.state_args:
                return (f"node {node} block {block}: stable state "
                        f"{view.state_name} holds arguments "
                        f"{view.state_args!r}")
    return None


def standard_invariants(coherent: bool = True) -> list[Invariant]:
    """The default invariant suite.

    ``coherent=False`` drops the single-writer check for protocols that
    intentionally relax it (Buffered-Write's weak ordering).
    """
    invariants: list[Invariant] = [
        bounded_queues(),
        bounded_channels(),
        no_parked_continuation_leak,
    ]
    if coherent:
        invariants.insert(0, single_writer)
    return invariants
