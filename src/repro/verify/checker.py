"""The breadth-first state-space exploration engine.

Mirrors Mur-phi's behaviour as used in the paper: explore all possible
interleavings of protocol events (application-issued loads/stores/
operations and message deliveries, the latter with bounded reordering),
check invariants in every state, and produce a counterexample trace on
failure.  Exploration is exhaustive up to ``max_states``.
"""

from __future__ import annotations

import re
import signal
import sys
import threading
import time
import weakref
from collections import deque
from dataclasses import dataclass, field, replace
from typing import IO, Optional

from repro.faults import FaultBudget

from repro.obs.profile import visited_container_bytes
from repro.runtime.context import Message
from repro.runtime.exec import HandlerInterpreter
from repro.runtime.protocol import CompiledProtocol
from repro.verify.checkpoint import (
    CHECKPOINT_KIND,
    CHECKPOINT_VERSION,
    PERIODIC_SPACING_RATIO,
    CheckpointError,
    config_echo,
    load_checkpoint,
    validate_resume,
    write_checkpoint,
)
from repro.verify.events import EventGenerator, StacheEvents
from repro.verify.fingerprint import (
    canonical_fingerprint_fn,
    fingerprint,
    state_from_jsonable,
)
from repro.verify.invariants import Invariant, standard_invariants
from repro.verify.model import (
    ActionContext,
    ActionEffects,
    ActionScratch,
    AppView,
    CheckerContext,
    CheckerViolation,
    GlobalState,
    MutableState,
    fault_for_access,
    initial_global_state,
    intern_channel,
    intern_message,
)

# Sentinels: "leave the app generator alone" for _build_successor, and
# "no cached entry" for the dispatch table (None is a valid cached value
# there, meaning "no handler for this tag").
_KEEP_GEN = object()
_NO_ENTRY = object()

# The effects of an action that touched nothing (an application hit:
# only the event generator advances).  Lets the hit path share the
# successor memo in _successor_for.
_NO_EFFECTS = ActionEffects((), (), None, (), None)

# Process-global fast-engine caches, shared by every checker over the
# same compiled protocol:
#
#   effects  (node, BlockView, Message, blocked_on) -> ActionEffects.
#            An action's effects are a pure function of those inputs
#            *given* the protocol, the execution engine, and the home
#            map -- and the home map is always ``block % n_nodes`` --
#            so caches are scoped by (interpreter_factory, n_nodes)
#            under the protocol.
#   succ     (parent, node, effects, gen, removed) -> successor state.
#            Replaying effects is itself deterministic, so repeated
#            explorations of the same graph (bench repeats, trace
#            replays, parallel workers re-expanding) skip tuple surgery
#            entirely.
#   intern   state -> canonical state.  Canonical states carry their
#            cached hash and make visited-set equality an identity hit.
#   verdicts invariant-tuple -> {state -> (message, n_evaluated)}.
#            An invariant is a pure predicate of (state, protocol), and
#            each run evaluates it once per state anyway, so caching
#            verdicts across runs changes nothing observable (the
#            evaluation counts are replayed from n_evaluated).
#
# The registry holds protocols via weakrefs (CompiledProtocol is an
# unhashable mutable-eq dataclass, hence the id keying plus finalizer):
# a protocol's caches -- and every state/effect they pin -- die with it.
# Like the compile cache, this assumes compiled protocols are not
# mutated after use.
_ENGINE_CACHES: dict = {}


def _engine_caches_for(protocol, interpreter_factory,
                       n_nodes: int) -> tuple:
    entry = _ENGINE_CACHES.get(id(protocol))
    if entry is None or entry[0]() is not protocol:
        ref = weakref.ref(
            protocol,
            lambda _r, key=id(protocol): _ENGINE_CACHES.pop(key, None))
        entry = _ENGINE_CACHES[id(protocol)] = (ref, {})
    per_protocol = entry[1]
    key = (interpreter_factory, n_nodes)
    caches = per_protocol.get(key)
    if caches is None:
        caches = per_protocol[key] = ({}, {}, {}, {})
    return caches


# fault_for_access is a pure function of (access tag value, op kind);
# memoised because the hot loop consults it per application choice.
_FAULT_MEMO: dict = {}


class TraceReplayError(Exception):
    """A counterexample trace did not replay from the initial state."""


class FingerprintCollisionError(TraceReplayError):
    """A fingerprint collision corrupted the violation path.

    Raised when a trace reconstructed from fingerprint-keyed parent
    pointers fails replay validation.  The exploration's state count may
    also be an undercount; rerun without fingerprinting (or with more
    fingerprint bits) to get an exact answer.
    """


class SymmetryError(RuntimeError):
    """The protocol failed the symmetry-reduction certification.

    Symmetry reduction is exact only when the transition relation
    commutes with the node-permutation group: every orbit sibling of a
    reachable state must reach the same successor orbits.  Murphi's
    scalarset type discipline proves that statically; Teapot has no
    such discipline, and builtins like ``PopSharer``/``NthSharer``
    return ``min``/*n*-th of a sharer set -- a deterministic choice no
    function can make permutation-equivariant (for the swap fixing a
    two-element set, the image of the choice would have to be the
    other element).  Usually the choice washes out (pop-all
    invalidation loops reach the same state in any order), but a
    protocol that acts on the *identity* of one popped sharer --
    lcm_mcc's copy-forward delegation, say -- genuinely is not
    node-symmetric, and quotienting it would silently skip reachable
    orbits.  So the checker certifies the assumption on every state it
    expands and raises this error the moment a state's permuted image
    disagrees on successor orbits; ``api.check`` responds by rerunning
    the model unreduced.
    """


# Fault transitions the checker injects: "drop TAG s->d[i] blk=B" and
# "dup TAG s->d[i] blk=B" (same shape as delivery labels).
_FAULT_LABEL = re.compile(
    r"^(drop|dup) (\S+) (\d+)->(\d+)\[(\d+)\] blk=(\d+)$")


@dataclass
class Violation:
    """A safety violation with its counterexample trace."""

    kind: str           # "error" | "deadlock" | "invariant" | "starvation"
    message: str
    trace: list[str]    # rule labels from the initial state
    state: Optional[GlobalState] = None

    def format_trace(self) -> str:
        lines = [f"{self.kind.upper()}: {self.message}", "trace:"]
        for step, label in enumerate(self.trace, 1):
            lines.append(f"  {step:3d}. {label}")
        if self.state is not None:
            lines.append(f"final state: {self.state.summary()}")
        return "\n".join(lines)

    def fault_schedule(self) -> list[dict]:
        """The fault transitions along the trace, in order: one dict per
        injected drop/dup with its step number and message signature."""
        schedule = []
        for step, label in enumerate(self.trace, 1):
            match = _FAULT_LABEL.match(label)
            if match is not None:
                schedule.append({
                    "step": step,
                    "action": match.group(1),
                    "tag": match.group(2),
                    "src": int(match.group(3)),
                    "dst": int(match.group(4)),
                    "index": int(match.group(5)),
                    "block": int(match.group(6)),
                })
        return schedule

    def to_fault_plan(self):
        """A scripted :class:`repro.faults.FaultPlan` approximating this
        counterexample's fault schedule, for ``teapot run --fault-plan``
        replay: the k-th fault with a given (action, tag, src, dst,
        block) signature becomes an occurrence-k rule.  (The simulator's
        timing differs from the checker's interleaving, so the plan
        pins *which* message is hit, not the exact step.)"""
        from repro.faults import FaultPlan, FaultRule

        seen: dict[tuple, int] = {}
        rules = []
        for entry in self.fault_schedule():
            signature = (entry["action"], entry["tag"], entry["src"],
                         entry["dst"], entry["block"])
            seen[signature] = seen.get(signature, 0) + 1
            rules.append(FaultRule(
                action=entry["action"], tag=entry["tag"],
                src=entry["src"], dst=entry["dst"], block=entry["block"],
                occurrence=seen[signature]))
        return FaultPlan(rules=rules)

    def to_events(self) -> list[dict]:
        """The counterexample as structured trace events (the same JSONL
        schema simulator traces use -- see :mod:`repro.obs.sinks`)."""
        from repro.obs.sinks import V_CORE, V_FAULTS

        events: list[dict] = [
            {"ev": "checker_step", "v": V_CORE,
             "step": step, "label": label}
            for step, label in enumerate(self.trace, 1)
        ]
        schedule = self.fault_schedule()
        tail = {"ev": "violation",
                "v": V_FAULTS if schedule else V_CORE,
                "kind": self.kind, "message": self.message}
        if self.state is not None:
            tail["state"] = self.state.summary()
        if schedule:
            tail["faults"] = schedule
        events.append(tail)
        return events

    def write_trace(self, path: str) -> None:
        """Dump the counterexample as JSONL (``--trace-out``)."""
        from repro.obs import JsonlSink

        sink = JsonlSink(path)
        try:
            for event in self.to_events():
                sink.emit(event)
        finally:
            sink.close()


@dataclass
class CheckResult:
    """Outcome of a model-checking run (Table 3's raw material)."""

    protocol_name: str
    ok: bool
    states_explored: int
    transitions: int
    max_depth: int
    elapsed_seconds: float
    violation: Optional[Violation] = None
    n_nodes: int = 2
    n_blocks: int = 1
    reorder_bound: int = 0
    hit_state_limit: bool = False
    # Per-invariant evaluation counts (invariant name -> evaluations).
    invariant_evals: dict = field(default_factory=dict)
    # Per-handler fire counts over the whole exploration:
    # "State.MESSAGE" -> number of dispatches (initial deliveries plus
    # queue redeliveries).  Raw material for `teapot analyze coverage`.
    handler_fires: dict = field(default_factory=dict)
    # False when max_states truncated the search: ok=True then means
    # "no violation within the explored prefix", not a verdict.
    exhausted: bool = True
    # How many worker processes explored (1 = the serial checker).
    workers: int = 1
    # The fault budget (drops, dups) the exploration was allowed to
    # spend on each path; (0, 0) is classic fault-free checking.
    fault_budget: tuple = (0, 0)
    # When the run was profiled: the CheckProfile artifact
    # (repro.obs.profile), else None.
    profile: Optional[object] = None
    # When the run recorded an atlas: the StateAtlas artifact
    # (repro.verify.atlas), else None.
    atlas: Optional[object] = None
    # Reduction telemetry.  canonical_states: with symmetry reduction
    # on, the number of orbit representatives explored (equals
    # states_explored -- the visited set *is* canonical); None when
    # symmetry was off.  pruned_transitions: transitions the sleep-set
    # POR skipped as commuting duplicates; 0 when POR was off.
    canonical_states: Optional[int] = None
    pruned_transitions: int = 0
    # Why the run stopped before exhausting the space: "deadline" /
    # "memory" (BudgetOptions), "interrupted" (Ctrl-C drained at a
    # clean cut), "worker_lost" (parallel degrade recovery gave up), or
    # None for a normal completion / plain max_states truncation.  A
    # set stop_reason implies exhausted=False and, when checkpointing
    # was configured, a resumable checkpoint on disk.
    stop_reason: Optional[str] = None
    # Parallel only: workers that died and were recovered from under
    # on_worker_loss="degrade" (0 for an undisturbed run).
    worker_losses: int = 0

    def summary(self) -> str:
        status = "PASS" if self.ok else "FAIL"
        if self.hit_state_limit:
            status += " (state limit reached)"
        if self.stop_reason is not None:
            status += f" (stopped: {self.stop_reason})"
        workers = f", workers={self.workers}" if self.workers > 1 else ""
        faults = ""
        if self.fault_budget != (0, 0):
            faults = (f", faults=drop:{self.fault_budget[0]}"
                      f"+dup:{self.fault_budget[1]}")
        reduction = ""
        if self.canonical_states is not None:
            reduction += f" canonical-states={self.canonical_states}"
        if self.pruned_transitions:
            reduction += f" pruned-transitions={self.pruned_transitions}"
        return (
            f"{self.protocol_name}: {status}  states={self.states_explored} "
            f"transitions={self.transitions}{reduction} "
            f"depth={self.max_depth} "
            f"time={self.elapsed_seconds:.2f}s "
            f"(nodes={self.n_nodes}, addrs={self.n_blocks}, "
            f"reorder={self.reorder_bound}{workers}{faults})"
        )


# -- progress-line plumbing (shared by the serial and parallel checkers) --------

def _rolling_rate(window, elapsed: float, states: int):
    """states/s over the last few progress samples (None until two
    samples exist).  ``window`` is a bounded deque of (elapsed, states)
    pairs this call appends to."""
    window.append((elapsed, states))
    if len(window) < 2:
        return None
    dt = window[-1][0] - window[0][0]
    ds = window[-1][1] - window[0][1]
    return ds / dt if dt > 0 else None


def _eta_seconds(states: int, max_states: int, rate) -> "float | None":
    """Upper-bound ETA: time to reach the --max-states cap at the
    current rate.  A search whose frontier empties sooner finishes
    sooner, so this is a ceiling, not a prediction."""
    if not rate or rate <= 0 or states >= max_states:
        return None
    return (max_states - states) / rate


def _fmt_eta(seconds: float) -> str:
    if seconds < 120:
        return f"{seconds:.0f}s"
    if seconds < 7200:
        return f"{seconds / 60:.0f}m"
    return f"{seconds / 3600:.1f}h"


def format_progress_line(name: str, states: int, frontier: int,
                         depth: int, transitions: int, inv_evals: int,
                         rate: float, rolling, eta, suffix: str,
                         extra: str = "") -> str:
    """One progress line; the serial and parallel checkers both emit
    exactly this format (the parallel checker appends per-worker rates
    via ``extra``)."""
    detail = ""
    if rolling is not None:
        detail = f" (rolling {rolling:.0f}/s"
        if eta is not None:
            detail += f", eta<={_fmt_eta(eta)} to state cap"
        detail += ")"
    return (f"[verify {name}] states={states} frontier={frontier} "
            f"depth={depth} transitions={transitions} "
            f"inv_evals={inv_evals} {rate:.0f} states/s"
            f"{detail}{extra} {suffix}")


class ModelChecker:
    """Exhaustively checks a compiled protocol.

    Parameters mirror Table 3's configurations: number of nodes, number
    of shared addresses, and the network reordering bound (0 = FIFO
    channels; k allows a message to be delivered ahead of up to k
    earlier messages on its channel).
    """

    def __init__(
        self,
        protocol: CompiledProtocol,
        n_nodes: int = 2,
        n_blocks: int = 1,
        reorder_bound: int = 0,
        events: Optional[EventGenerator] = None,
        invariants: Optional[list[Invariant]] = None,
        max_states: int = 2_000_000,
        channel_cap: int = 4,
        interpreter_factory=HandlerInterpreter,
        check_progress: bool = False,
        progress_stream: Optional[IO] = None,
        progress_every: int = 10_000,
        fingerprint_states: bool = False,
        fingerprint_fn=None,
        fault_budget=None,
        profiler=None,
        atlas=None,
        engine: str = "fast",
        symmetry: bool = False,
        por: bool = False,
        checkpoint_out: Optional[str] = None,
        resume: Optional[str] = None,
        checkpoint_interval_waves: Optional[int] = None,
        checkpoint_interval_seconds: Optional[float] = None,
        checkpoint_keep_last: int = 1,
        deadline_seconds: Optional[float] = None,
        max_visited_bytes: Optional[int] = None,
    ):
        self.protocol = protocol
        self.n_nodes = n_nodes
        self.n_blocks = n_blocks
        self.reorder_bound = reorder_bound
        self.events = events if events is not None else StacheEvents()
        self.invariants = (
            invariants if invariants is not None else standard_invariants())
        self.max_states = max_states
        # Pluggable execution engine: the interpreter by default, or the
        # Python back end's GeneratedProtocolRunner (the test suite uses
        # this for behavioural-equivalence checks).
        self.interpreter_factory = interpreter_factory
        # Application rules are disabled while any channel holds this
        # many messages -- the standard Mur-phi idiom for keeping a model
        # with non-blocking operations finite.  Deliveries are never
        # gated, so this cannot introduce spurious deadlocks.
        self.channel_cap = channel_cap
        # Progress checking (a liveness extension beyond the paper's
        # safety checks): record the full transition graph and verify
        # that from every reachable state, every blocked thread can
        # still reach a state where it runs again.  Catches starvation
        # bugs -- e.g. a nacked request that is never retried -- that
        # no safety invariant sees.
        self.check_progress = check_progress
        # Progress *reporting* (distinct from the liveness check above):
        # when a stream is given, print a states/sec line every
        # ``progress_every`` states plus one final line, so long runs
        # are diagnosable while they execute.
        self.progress_stream = progress_stream
        self.progress_every = max(1, progress_every)
        # Hash compaction: key the visited set (and parent pointers) by
        # 64-bit fingerprints instead of whole states.  Memory per
        # visited state drops by an order of magnitude; any violation
        # trace is replay-validated to guard against collisions (see
        # repro.verify.fingerprint).  Incompatible with check_progress,
        # which must record the full state graph.
        self.fingerprint_states = fingerprint_states
        self.fingerprint_fn = fingerprint_fn or fingerprint
        if fingerprint_states and check_progress:
            raise ValueError(
                "fingerprint_states and check_progress are mutually "
                "exclusive: the liveness check records full states")
        # Symmetry reduction: key the visited set by the minimum
        # fingerprint over the home-fixing free-node permutation group
        # (see repro.verify.fingerprint.SymmetryCanonicalizer), so one
        # representative per orbit is explored.  Exploration itself
        # stays concrete -- successors of the first-discovered
        # representative -- so the parent-pointer chain is a real path
        # from the initial state and every witness trace replays on an
        # unreduced checker as-is (fresh_clone drops reduction flags).
        self.symmetry = symmetry
        if symmetry:
            if check_progress:
                raise ValueError(
                    "symmetry reduction and the liveness check are "
                    "mutually exclusive: starvation witnesses need the "
                    "full (unquotiented) state graph")
            base_fn = self.fingerprint_fn
            if base_fn is fingerprint:
                canonical = canonical_fingerprint_fn(
                    protocol, n_nodes, n_blocks)
                self._canon = canonical.canonicalizer
            else:
                # Compose with a caller-supplied base hash (tests):
                # min of the base over the full permutation group.
                canon = canonical_fingerprint_fn(
                    protocol, n_nodes, n_blocks).canonicalizer
                self._canon = canon

                def canonical(state, _canon=canon, _base=base_fn):
                    best = _base(state)
                    for mapping in _canon.perms:
                        candidate = _base(_canon.permute(state, mapping))
                        if candidate < best:
                            best = candidate
                    return best
            self.fingerprint_fn = canonical
            # Canonical keys are ints in every serial mode; violations
            # get the same replay validation fingerprint mode has.
            self.fingerprint_states = True
        else:
            self._canon = None
        # Partial-order reduction (sleep sets): prune transitions whose
        # commuting reorderings are explored elsewhere.  Sleep sets
        # preserve the reachable state *set* (only redundant edges are
        # pruned), so verdicts, violation reachability, and deadlock
        # detection are unchanged -- the gating differential suite pins
        # this per protocol.  Serial-only: the parallel engine's
        # per-wave dedupe discards the sleep bookkeeping re-arrivals
        # need (see docs/VERIFICATION.md).
        self.por = por
        if por and check_progress:
            raise ValueError(
                "partial-order reduction and the liveness check are "
                "mutually exclusive: pruned edges would be starvation "
                "false-positives in the recorded graph")
        # Fault-bounded exploration: in addition to every delivery, the
        # checker may *drop* or *duplicate* any in-flight message, up to
        # the budget.  Accepts a FaultBudget or a (drops, dups) tuple;
        # None / (0, 0) disables fault transitions entirely.
        if fault_budget is None:
            self.fault_budget = (0, 0)
        elif isinstance(fault_budget, FaultBudget):
            self.fault_budget = fault_budget.as_tuple()
        else:
            self.fault_budget = tuple(fault_budget)
        # Exploration profiling (repro.obs.profile.CheckProfiler), or
        # None.  The profiler is a pure observer: with it absent the
        # hot loop runs the exact code it always ran, and armed it only
        # reads clocks -- verdicts, state counts, fingerprints, and
        # checkpoints are identical either way (tests/test_profile.py).
        self.profiler = profiler
        # State-space atlas recording (repro.verify.atlas.AtlasRecorder),
        # or None.  Same pure-observer contract as the profiler: absent,
        # the hot loop runs the exact code it always ran; armed, it only
        # records what the exploration already computes (tests/
        # test_atlas.py pins byte-identical verdicts, fingerprint
        # streams, and checkpoints either way).
        self.atlas = atlas
        # Successor engine: "fast" (mutate-and-undo journal + effect
        # replay, the default) or "legacy" (the pre-refactor
        # copy-the-world path, kept as the differential-test reference).
        if engine not in ("fast", "legacy"):
            raise ValueError(f"unknown successor engine {engine!r}")
        self.engine = engine
        # Checkpointing (serial): drain to a clean cut -- every state in
        # the frontier accepted-but-unexpanded, everything else fully
        # expanded -- and write the same v1 JSON format the parallel
        # checker uses, so a serial checkpoint resumes at any worker
        # count and vice versa.  Requires the fingerprint-keyed visited
        # set (the on-disk format is fingerprint-keyed).
        self.checkpoint_out = checkpoint_out
        self.resume = resume
        self.checkpoint_interval_waves = checkpoint_interval_waves
        self.checkpoint_interval_seconds = checkpoint_interval_seconds
        self.checkpoint_keep_last = checkpoint_keep_last
        if (checkpoint_out or resume) and not self.fingerprint_states:
            raise ValueError(
                "serial checkpoint/resume requires fingerprint_states="
                "True (the checkpoint format is fingerprint-keyed)")
        if (checkpoint_out or resume) and por:
            raise ValueError(
                "checkpoint/resume and partial-order reduction are "
                "mutually exclusive: sleep-set bookkeeping does not "
                "survive the fingerprint-keyed checkpoint format")
        # Resource budgets: a wall-clock deadline and a visited-set byte
        # cap (the profiler's container accounting).  Exceeding either
        # finishes the current state cleanly, writes a resumable
        # checkpoint when one is configured, and returns a truncated
        # CheckResult with stop_reason set.
        self.deadline_seconds = deadline_seconds
        self.max_visited_bytes = max_visited_bytes
        self._invariant_evals: dict[str, int] = {}
        self._handler_fires: dict[str, int] = {}
        self._progress_window: deque = deque(maxlen=8)
        # Fast-engine memo tables (harmless when engine="legacy");
        # shared process-wide between checkers over the same
        # protocol/engine -- see _engine_caches_for.
        (self._action_cache, self._succ_cache, self._state_intern,
         self._invariant_verdicts) = _engine_caches_for(
            protocol, interpreter_factory, n_nodes)
        # Bound to one invariant-tuple's verdict map by run(); None
        # outside a fast-engine run (legacy runs and replay clones
        # evaluate directly).
        self._inv_verdicts: Optional[dict] = None
        # (state_name, tag) -> handler-fire key or None, so _count_fire
        # stops re-resolving DEFAULT dispatch per expansion:
        self._fire_key_table: dict = {}
        # (node, gen) -> tuple of event-generator choices:
        self._choice_cache: dict = {}
        # (Message, src, dst, index) -> delivery label string:
        self._label_cache: dict = {}

    def home_of(self, block: int) -> int:
        return block % self.n_nodes

    # -- rule application (fast engine) -------------------------------------
    #
    # The default engine never deep-copies a state.  One atomic action is
    # a deterministic function of (node, the acting block's view, the
    # message, the node's blocked-on marker): every read a handler can
    # make goes through the ProtocolContext block-record accessors on the
    # current message's block, and every write lands on the acting node
    # (see ActionScratch).  So the checker journals an action once via
    # mutate-and-undo (ActionScratch + ActionContext), distils it to an
    # ActionEffects, and caches it under that 4-tuple; subsequent
    # expansions replay the effects as tuple surgery on interned
    # substructures -- no MutableState copy, no handler dispatch, no
    # full-state freeze.

    def _action_effects(self, state: GlobalState, node: int,
                        message: Message, blocked_before) -> ActionEffects:
        """Cached outcome of dispatching ``message`` on ``node``.

        Bumps ``handler_fires`` exactly as executing the action would
        (the recording path counts while it runs; the replay path counts
        from the recorded fire sequence)."""
        if self.profiler is None:
            key = (node, state.blocks[node][message.block], message,
                   blocked_before)
            cache = self._action_cache
            effects = cache.get(key)
            if effects is not None:
                fires = self._handler_fires
                for fire in effects.fires:
                    fires[fire] = fires.get(fire, 0) + 1
                return effects
            effects = self._record_action(state, node, message,
                                          blocked_before)
            cache[key] = effects
            return effects
        # Profiled runs execute every action for real so per-dispatch
        # costs stay attributable; a cache hit would report zero time.
        return self._record_action(state, node, message, blocked_before)

    def _record_action(self, state: GlobalState, node: int,
                       message: Message, blocked_before) -> ActionEffects:
        """Journal one atomic action (dispatch plus queue redelivery)."""
        prof = self.profiler
        scratch = ActionScratch(state, node)
        scratch.blocked_on = blocked_before
        ctx = ActionContext(self.protocol, scratch, self.home_of)
        interp = self.interpreter_factory(self.protocol, ctx)
        fires: list = []
        try:
            record = scratch.record(message.block)
            record["state_changed"] = False
            key = self._count_fire(record["state_name"], message.tag)
            if key is not None:
                fires.append(key)
            ctx.begin(message)
            if prof is None:
                interp.dispatch()
            else:
                t0 = time.perf_counter()
                interp.dispatch()
                prof.add_dispatch(key, time.perf_counter() - t0)
            while record["state_changed"] and record["queue"]:
                record["state_changed"] = False
                drained = record["queue"]
                record["queue"] = []
                for deferred in drained:
                    key = self._count_fire(record["state_name"],
                                           deferred.tag)
                    if key is not None:
                        fires.append(key)
                    ctx.begin(deferred)
                    if prof is None:
                        interp.dispatch()
                    else:
                        t0 = time.perf_counter()
                        interp.dispatch()
                        prof.add_dispatch(key, time.perf_counter() - t0)
        except CheckerViolation as violation:
            return ActionEffects((), (), blocked_before, tuple(fires),
                                 violation.message)
        return ActionEffects(scratch.changed_views(),
                             tuple(scratch.sends), scratch.blocked_on,
                             tuple(fires), None)

    def _build_successor(self, state: GlobalState, node: int,
                         effects: ActionEffects, gen=_KEEP_GEN,
                         removed=None) -> GlobalState:
        """Replay recorded effects onto ``state``: rebuild only the rows
        an action touched, reuse every untouched tuple, and carry the
        congestion count forward incrementally."""
        cap = self.channel_cap
        delta = 0
        blocks = state.blocks
        if effects.views:
            row = list(blocks[node])
            for block, view in effects.views:
                before = row[block]
                if (len(view.queue) >= cap) != (len(before.queue) >= cap):
                    delta += 1 if len(view.queue) >= cap else -1
                row[block] = view
            blocks = blocks[:node] + (tuple(row),) + blocks[node + 1:]
        apps = state.apps
        app = apps[node]
        new_gen = app.gen if gen is _KEEP_GEN else gen
        if new_gen != app.gen or effects.blocked_after != app.blocked_on:
            apps = apps[:node] + (
                AppView(blocked_on=effects.blocked_after, gen=new_gen),
            ) + apps[node + 1:]
        channels = state.channels
        if removed is not None or effects.sends:
            changed: dict = {}
            if removed is not None:
                src, dst, index = removed
                channel = channels[src][dst]
                changed[(src, dst)] = channel[:index] + channel[index + 1:]
            for message in effects.sends:
                key = (node, message.dst)
                base = changed.get(key)
                if base is None:
                    base = channels[node][message.dst]
                changed[key] = base + (message,)
            rows = list(channels)
            touched_rows: dict = {}
            for (src, dst), channel in changed.items():
                before = channels[src][dst]
                if (len(channel) >= cap) != (len(before) >= cap):
                    delta += 1 if len(channel) >= cap else -1
                row = touched_rows.get(src)
                if row is None:
                    row = touched_rows[src] = list(rows[src])
                row[dst] = intern_channel(channel)
            for src, row in touched_rows.items():
                rows[src] = tuple(row)
            channels = tuple(rows)
        successor = GlobalState(blocks=blocks, apps=apps,
                                channels=channels, faults=state.faults)
        successor = self._state_intern.setdefault(successor, successor)
        cong = state.__dict__.get("_cong")
        if (cong is not None and cong[0] == cap
                and "_cong" not in successor.__dict__):
            object.__setattr__(successor, "_cong", (cap, cong[1] + delta))
        return successor

    def _successor_for(self, state: GlobalState, node: int,
                       effects, gen, removed) -> GlobalState:
        """Memoised :meth:`_build_successor`: replaying the same effects
        on the same parent always yields the same state, so repeat
        expansions are a dict hit.  ``effects`` is keyed by identity
        (cached ActionEffects are canonical per input 4-tuple); profiled
        runs record fresh effects per action, so they build directly."""
        if self.profiler is not None:
            return self._build_successor(state, node, effects,
                                         gen=gen, removed=removed)
        key = (state, node, effects, gen, removed)
        successor = self._succ_cache.get(key)
        if successor is None:
            successor = self._succ_cache[key] = self._build_successor(
                state, node, effects, gen=gen, removed=removed)
        return successor

    def _congestion_count(self, state: GlobalState) -> int:
        """How many channels/deferred queues sit at the channel cap.
        Computed once per state and carried forward incrementally by
        :meth:`_build_successor`, instead of rescanning every channel
        and queue on each expansion."""
        cap = self.channel_cap
        cached = state.__dict__.get("_cong")
        if cached is not None and cached[0] == cap:
            return cached[1]
        count = 0
        for row in state.channels:
            for channel in row:
                if len(channel) >= cap:
                    count += 1
        for node_blocks in state.blocks:
            for view in node_blocks:
                if len(view.queue) >= cap:
                    count += 1
        object.__setattr__(state, "_cong", (cap, count))
        return count

    def _apply_app_op(self, state: GlobalState, node: int, op: tuple,
                      new_gen: tuple) -> Optional[GlobalState]:
        """Issue an application operation; returns the successor state."""
        kind = op[0]
        app = state.apps[node]
        if kind in ("read", "write"):
            block = op[1]
            access = state.blocks[node][block].access
            fkey = (access, kind)
            fault = _FAULT_MEMO.get(fkey, _NO_ENTRY)
            if fault is _NO_ENTRY:
                fault = _FAULT_MEMO[fkey] = fault_for_access(
                    access, kind == "write")
            if fault is None:
                # Hit: only the generator advanced.  With an unchanged
                # generator the successor IS the parent (a self-loop).
                if new_gen == app.gen:
                    return state
                return self._successor_for(state, node, _NO_EFFECTS,
                                           new_gen, None)
            message = intern_message(
                Message(fault, block, src=node, dst=node))
        else:  # program event (CAS, sync, LCM enter/exit, ...)
            _kind, tag, block = op[0], op[1], op[2]
            payload = op[3] if len(op) > 3 else ()
            message = intern_message(
                Message(tag, block, src=node, dst=node, payload=payload))
        effects = self._action_effects(state, node, message, block)
        if effects.error is not None:
            raise CheckerViolation(effects.error)
        return self._successor_for(state, node, effects, new_gen, None)

    def _apply_delivery(self, state: GlobalState, src: int, dst: int,
                        index: int) -> GlobalState:
        message = state.channels[src][dst][index]
        effects = self._action_effects(state, dst, message,
                                       state.apps[dst].blocked_on)
        if effects.error is not None:
            raise CheckerViolation(effects.error)
        return self._successor_for(state, dst, effects, _KEEP_GEN,
                                   (src, dst, index))

    def _delivery_label(self, message: Message, src: int, dst: int,
                        index: int) -> str:
        key = (message, src, dst, index)
        label = self._label_cache.get(key)
        if label is None:
            label = (f"deliver {message.tag} {src}->{dst}[{index}] "
                     f"blk={message.block}")
            self._label_cache[key] = label
        return label

    def _choices(self, node: int, gen: tuple) -> tuple:
        key = (node, gen)
        choices = self._choice_cache.get(key)
        if choices is None:
            choices = self._choice_cache[key] = tuple(
                self.events.choices(gen, node, self.n_blocks))
        return choices

    def _fast_successors(self, state: GlobalState):
        """Yield (label, successor) pairs; CheckerViolation propagates."""
        # Application events (gated while the network or a deferred queue
        # is congested, to keep the model finite -- see channel_cap).
        if self._congestion_count(state) == 0:
            for node in range(self.n_nodes):
                app = state.apps[node]
                if app.blocked_on is not None:
                    continue
                for choice in self._choices(node, app.gen):
                    try:
                        successor = self._apply_app_op(
                            state, node, choice.op, choice.new_gen)
                    except CheckerViolation as violation:
                        raise _LabelledViolation(choice.label,
                                                 violation.message)
                    yield choice.label, successor
        # Message deliveries (with bounded reordering).
        for src in range(self.n_nodes):
            row = state.channels[src]
            for dst in range(self.n_nodes):
                channel = row[dst]
                limit = min(len(channel), self.reorder_bound + 1)
                for index in range(limit):
                    label = self._delivery_label(
                        channel[index], src, dst, index)
                    try:
                        successor = self._apply_delivery(
                            state, src, dst, index)
                    except CheckerViolation as violation:
                        raise _LabelledViolation(label, violation.message)
                    yield label, successor
        # Fault transitions: lose or duplicate any in-flight message,
        # while budget remains (see _legacy_successors for the notes).
        drops, dups = state.faults
        if drops or dups:
            for src in range(self.n_nodes):
                for dst in range(self.n_nodes):
                    channel = state.channel(src, dst)
                    for index, msg in enumerate(channel):
                        where = (f"{msg.tag} {src}->{dst}[{index}] "
                                 f"blk={msg.block}")
                        if drops:
                            yield (f"drop {where}", replace(
                                state,
                                channels=self._edit_channel(
                                    state, src, dst,
                                    channel[:index] + channel[index + 1:]),
                                faults=(drops - 1, dups)))
                        if dups:
                            yield (f"dup {where}", replace(
                                state,
                                channels=self._edit_channel(
                                    state, src, dst, channel + (msg,)),
                                faults=(drops, dups - 1)))

    # -- rule application (legacy engine) -----------------------------------
    #
    # The pre-refactor copy-the-world engine: build a full MutableState
    # working copy per successor, run the action against it, freeze the
    # whole thing back.  Kept (a) as the reference the differential
    # harness pins the fast engine against, and (b) as documentation of
    # the semantics the fast engine must preserve.  Delete once the fast
    # engine has soaked.

    def _run_action(self, mutable: MutableState, node: int,
                    message: Message) -> CheckerContext:
        """One atomic protocol action: dispatch plus queue redelivery."""
        prof = self.profiler
        ctx = CheckerContext(self.protocol, mutable, node, self.home_of)
        interp = self.interpreter_factory(self.protocol, ctx)
        record = mutable.record(node, message.block)
        record["state_changed"] = False
        key = self._count_fire(record["state_name"], message.tag)
        ctx.begin(message)
        if prof is None:
            interp.dispatch()
        else:
            t0 = time.perf_counter()
            interp.dispatch()
            prof.add_dispatch(key, time.perf_counter() - t0)
        while record["state_changed"] and record["queue"]:
            record["state_changed"] = False
            drained = record["queue"]
            record["queue"] = []
            for deferred in drained:
                key = self._count_fire(record["state_name"], deferred.tag)
                ctx.begin(deferred)
                if prof is None:
                    interp.dispatch()
                else:
                    t0 = time.perf_counter()
                    interp.dispatch()
                    prof.add_dispatch(key, time.perf_counter() - t0)
        return ctx

    def _count_fire(self, state_name: str, tag: str) -> Optional[str]:
        """Coverage accounting: the handler about to run for ``tag`` in
        ``state_name`` (resolving DEFAULT fallback exactly like the
        interpreter does).  Counts both initial dispatches and queue
        redeliveries, so every arm the exploration exercises is seen.
        Returns the arm key, which the profiler attributes dispatch
        cost to.  Dispatch resolution is memoised per (state, tag) --
        the protocol's handler tables never change mid-run."""
        table = self._fire_key_table
        key = table.get((state_name, tag), _NO_ENTRY)
        if key is _NO_ENTRY:
            state = self.protocol.states.get(state_name)
            handler = state.dispatch(tag) if state is not None else None
            key = (None if handler is None
                   else f"{state_name}.{handler.message_name}")
            table[(state_name, tag)] = key
        if key is None:
            return None
        fires = self._handler_fires
        fires[key] = fires.get(key, 0) + 1
        return key

    def _legacy_apply_app_op(self, state: GlobalState, node: int, op: tuple,
                             new_gen: tuple) -> Optional[GlobalState]:
        """Issue an application operation; returns the successor state."""
        mutable = MutableState(state, self.n_nodes, self.n_blocks)
        mutable.apps[node]["gen"] = new_gen
        kind = op[0]
        if kind in ("read", "write"):
            block = op[1]
            access = mutable.record(node, block)["access"]
            fault = fault_for_access(access, kind == "write")
            if fault is None:
                return mutable.freeze()  # hit: only the generator advanced
            mutable.apps[node]["blocked_on"] = block
            message = Message(fault, block, src=node, dst=node)
        else:  # program event (CAS, sync, LCM enter/exit, ...)
            _kind, tag, block = op[0], op[1], op[2]
            payload = op[3] if len(op) > 3 else ()
            mutable.apps[node]["blocked_on"] = block
            message = Message(tag, block, src=node, dst=node,
                              payload=payload)
        self._run_action(mutable, node, message)
        return mutable.freeze()

    def _legacy_apply_delivery(self, state: GlobalState, src: int, dst: int,
                               index: int) -> GlobalState:
        mutable = MutableState(state, self.n_nodes, self.n_blocks)
        message = mutable.channels[src][dst].pop(index)
        self._run_action(mutable, dst, message)
        return mutable.freeze()

    def _successors(self, state: GlobalState):
        """Yield (label, successor) pairs; CheckerViolation propagates
        (wrapped as _LabelledViolation).  Dispatches to the configured
        engine; both produce identical labels, successor states, and
        handler-fire counts, in identical order."""
        if self.engine == "legacy":
            return self._legacy_successors(state)
        return self._fast_successors(state)

    def _certify_symmetry(self, state: GlobalState, succ_keys=None) -> None:
        """Certify the node-symmetry assumption at one expanded state.

        Quotienting by the permutation group is exact only if the
        transition relation commutes with it; Teapot (unlike Murphi's
        scalarsets) cannot prove that statically, so the checker proves
        it dynamically: at every state it expands, the canonical
        successor-fingerprint *multiset* of each orbit sibling
        (``permute(state, m)`` for each group element) must equal the
        representative's own.  By induction over the BFS -- combined
        with group closure, which makes any state sharing the
        representative's canonical key a sibling -- per-expansion
        equality guarantees the quotiented run reaches every canonical
        key the unreduced run would.  A mismatch raises
        :class:`SymmetryError` (the protocol makes a node-identity-
        dependent choice, e.g. acting on *which* sharer ``PopSharer``
        popped); ``api.check`` reruns unreduced.

        ``succ_keys``: the representative's successor fingerprints when
        the caller already computed them (the main BFS loop); ``None``
        recomputes them (the POR path).  A ``_LabelledViolation`` while
        recomputing the representative's successors means the run is
        about to FAIL concretely -- certification gaps only matter for
        PASS verdicts, so return early.  A sibling raising when the
        representative did not *is* a mismatch.
        """
        canon = self._canon
        if canon is None or not canon.perms:
            return
        fp = self.fingerprint_fn
        if succ_keys is None:
            try:
                succ_keys = [fp(successor)
                             for _, successor in self._successors(state)]
            except _LabelledViolation:
                return
        mine = sorted(succ_keys)
        for mapping in canon.perms:
            sibling = canon.permute(state, mapping)
            try:
                theirs = sorted(
                    fp(successor)
                    for _, successor in self._successors(sibling))
            except _LabelledViolation:
                theirs = None
            if theirs != mine:
                raise SymmetryError(
                    "symmetry certification failed: state with canonical "
                    f"fingerprint {fp(state)} and its orbit sibling under "
                    f"node permutation {mapping} reach different successor "
                    "orbits.  The protocol makes a node-asymmetric choice "
                    "(e.g. PopSharer/NthSharer acting on the identity of "
                    "one specific sharer), so symmetry reduction would "
                    "silently skip reachable states")

    def _legacy_successors(self, state: GlobalState):
        """Yield (label, successor) pairs; CheckerViolation propagates."""
        # Application events (gated while the network or a deferred queue
        # is congested, to keep the model finite -- see channel_cap).
        congested = any(
            len(channel) >= self.channel_cap
            for row in state.channels for channel in row
        ) or any(
            len(view.queue) >= self.channel_cap
            for node_blocks in state.blocks for view in node_blocks
        )
        for node in range(self.n_nodes):
            if congested:
                break
            app = state.apps[node]
            if app.blocked_on is not None:
                continue
            for choice in self.events.choices(app.gen, node, self.n_blocks):
                try:
                    successor = self._legacy_apply_app_op(
                        state, node, choice.op, choice.new_gen)
                except CheckerViolation as violation:
                    raise _LabelledViolation(choice.label, violation.message)
                yield choice.label, successor
        # Message deliveries (with bounded reordering).
        for src in range(self.n_nodes):
            for dst in range(self.n_nodes):
                channel = state.channel(src, dst)
                limit = min(len(channel), self.reorder_bound + 1)
                for index in range(limit):
                    label = (f"deliver {channel[index].tag} "
                             f"{src}->{dst}[{index}] blk="
                             f"{channel[index].block}")
                    try:
                        successor = self._legacy_apply_delivery(
                            state, src, dst, index)
                    except CheckerViolation as violation:
                        raise _LabelledViolation(label, violation.message)
                    yield label, successor
        # Fault transitions: lose or duplicate any in-flight message,
        # while budget remains.  Pure channel edits -- no handler runs --
        # so they cannot raise.  Note these never fire on an empty
        # network, so fault budgets cannot mask a real deadlock (a state
        # with all nodes blocked and no messages in flight still has no
        # successor).
        drops, dups = state.faults
        if drops or dups:
            for src in range(self.n_nodes):
                for dst in range(self.n_nodes):
                    channel = state.channel(src, dst)
                    for index, msg in enumerate(channel):
                        where = f"{msg.tag} {src}->{dst}[{index}] blk={msg.block}"
                        if drops:
                            yield (f"drop {where}", replace(
                                state,
                                channels=self._edit_channel(
                                    state, src, dst,
                                    channel[:index] + channel[index + 1:]),
                                faults=(drops - 1, dups)))
                        if dups:
                            yield (f"dup {where}", replace(
                                state,
                                channels=self._edit_channel(
                                    state, src, dst, channel + (msg,)),
                                faults=(drops, dups - 1)))

    @staticmethod
    def _edit_channel(state: GlobalState, src: int, dst: int,
                      new_channel: tuple) -> tuple:
        """The state's channels tuple with one channel replaced.
        Rebuilds only the affected row; the other rows are shared."""
        channels = state.channels
        row = channels[src]
        new_row = row[:dst] + (intern_channel(new_channel),) + row[dst + 1:]
        return channels[:src] + (new_row,) + channels[src + 1:]

    # -- search -------------------------------------------------------------

    def run(self) -> CheckResult:
        """Breadth-first exploration from the initial state."""
        if self.por:
            return self._run_por()
        # Ctrl-C parity with the parallel master: when a checkpoint path
        # is configured (and we own the main thread's signal handling),
        # SIGINT is flagged instead of raised, the current state
        # finishes cleanly, and the guard at the next frontier pop
        # writes a resumable checkpoint and returns a stop_reason=
        # "interrupted" result.  Without a checkpoint path the classic
        # KeyboardInterrupt propagates unchanged.
        if (self.checkpoint_out is not None
                and threading.current_thread()
                is threading.main_thread()):
            interrupt_cell = [False]

            def _flag_interrupt(_signum, _frame):
                interrupt_cell[0] = True

            previous = signal.signal(signal.SIGINT, _flag_interrupt)
            try:
                return self._run_bfs(interrupt_cell)
            finally:
                signal.signal(signal.SIGINT, previous)
        return self._run_bfs([False])

    def _run_bfs(self, interrupt_cell) -> CheckResult:
        start_time = time.perf_counter()
        prof = self.profiler
        if prof is not None:
            prof.begin()
        self._progress_window = deque(maxlen=8)
        self._invariant_evals = {}
        self._handler_fires = {}
        self._named_invariants = [
            (self._invariant_name(invariant), invariant)
            for invariant in self.invariants
        ]
        if self.engine == "fast":
            self._inv_verdicts = self._invariant_verdicts.setdefault(
                tuple(inv for _name, inv in self._named_invariants), {})
        else:
            self._inv_verdicts = None
        # The visited set and parent pointers are keyed either by the
        # state itself or, in fingerprint mode, by its 64-bit digest.
        fp = self.fingerprint_fn if self.fingerprint_states else None
        atlas = self.atlas
        if atlas is not None:
            atlas.bind(self.protocol, self.n_nodes, self.n_blocks)
        visited: set = set()
        parents: dict = {}
        depth: dict = {}
        frontier: deque = deque()
        graph: dict[GlobalState, list[GlobalState]] = {}
        transitions = 0
        max_depth = 0
        hit_limit = False
        stop_reason: Optional[str] = None
        baseline_elapsed = 0.0
        seed_violations: list = []
        initial = None

        if self.resume:
            payload = load_checkpoint(self.resume)
            validate_resume(payload, config_echo(self, self.symmetry),
                            self.resume)
            baseline_elapsed = payload["elapsed"]
            transitions = payload["transitions"]
            max_depth = payload["max_depth"]
            self._invariant_evals = dict(payload["invariant_evals"])
            self._handler_fires = dict(payload["handler_fires"])
            for fp_hex in payload["visited"]:
                visited.add(int(fp_hex, 16))
            for fp_hex, (pfp_hex, label) in payload["parents"].items():
                parents[int(fp_hex, 16)] = (
                    None if pfp_hex is None else int(pfp_hex, 16), label)
            # Re-accept the checkpoint frontier exactly as the parallel
            # seed op does: the frontier is pre-acceptance in the
            # on-disk format, so a state proposed twice takes the
            # canonical minimum (parent fp, label) edge and invariants
            # run here, at acceptance.
            best: dict = {}
            order: list = []
            for fp_hex, state_json, pfp_hex, label, d in (
                    payload["frontier"]):
                sfp = int(fp_hex, 16)
                if sfp in visited:
                    continue
                pfp = None if pfp_hex is None else int(pfp_hex, 16)
                edge = (pfp if pfp is not None else -1, label or "")
                current = best.get(sfp)
                if current is None:
                    order.append(sfp)
                    best[sfp] = (edge, state_json, pfp, label, d)
                elif edge < current[0]:
                    best[sfp] = (edge, state_json, pfp, label, d)
            # Null-state frontier entries are reconstructed by replaying
            # their (parent fp, label) chains.  Sibling frontier states
            # share almost their whole chain, so replayed ancestors are
            # cached by fingerprint: each chain replays only the suffix
            # below its deepest cached ancestor.
            clone = self.fresh_clone()
            clone._named_invariants = [
                (clone._invariant_name(inv), inv)
                for inv in clone.invariants]
            replay_cache: dict = {}

            def replayed(sfp, pfp, label):
                chain = [(sfp, label)]
                cursor = pfp
                while cursor is not None and cursor not in replay_cache:
                    try:
                        up, lbl = parents[cursor]
                    except KeyError:
                        raise CheckpointError(
                            f"{self.resume}: frontier state "
                            f"{sfp:016x} has a broken parent chain "
                            f"(missing ancestor {cursor:016x})") from None
                    chain.append((cursor, lbl))
                    cursor = up
                state = (replay_cache[cursor] if cursor is not None
                         else initial_global_state(
                             self.protocol, self.n_nodes, self.n_blocks,
                             self.home_of, self.events.initial,
                             faults=self.fault_budget))
                for node_fp, lbl in reversed(chain):
                    if lbl and lbl != "<initial>":
                        try:
                            state = replay_step(clone, state, lbl)
                        except TraceReplayError as error:
                            raise CheckpointError(
                                f"{self.resume}: frontier replay "
                                f"failed ({error}); the checkpoint "
                                "does not match this protocol build"
                            ) from None
                    replay_cache[node_fp] = state
                return state

            for sfp in order:
                _edge, state_json, pfp, label, d = best[sfp]
                if state_json is None:
                    state = replayed(sfp, pfp, label)
                else:
                    state = state_from_jsonable(state_json)
                visited.add(sfp)
                parents[sfp] = (pfp, label)
                depth[sfp] = d
                max_depth = max(max_depth, d)
                if atlas is not None:
                    atlas.visit(state, d, fp=sfp)
                message = self._check_invariants(state)
                if message is not None:
                    seed_violations.append((d, message, sfp, state))
                frontier.append((state, sfp))
        else:
            initial = initial_global_state(
                self.protocol, self.n_nodes, self.n_blocks, self.home_of,
                self.events.initial, faults=self.fault_budget)
            initial_key = fp(initial) if fp else initial
            if atlas is not None:
                atlas.visit(initial, 0,
                            fp=initial_key if fp is not None else None)
            visited.add(initial_key)
            parents[initial_key] = (None, "<initial>")
            depth[initial_key] = 0
            frontier.append((initial, initial_key))
            if self.check_progress:
                graph[initial] = []

        def result(ok: bool, violation: Optional[Violation]) -> CheckResult:
            if fp is not None and violation is not None:
                # Collision guard: the trace came from fingerprint-keyed
                # parent pointers; make sure it actually replays.
                self.verify_violation(violation)
            if self.progress_stream is not None:
                self._report_progress(len(visited), len(frontier),
                                      max_depth, transitions, start_time,
                                      final=True)
            res = CheckResult(
                protocol_name=self.protocol.name,
                ok=ok,
                states_explored=len(visited),
                transitions=transitions,
                max_depth=max_depth,
                elapsed_seconds=baseline_elapsed
                + (time.perf_counter() - start_time),
                violation=violation,
                n_nodes=self.n_nodes,
                n_blocks=self.n_blocks,
                reorder_bound=self.reorder_bound,
                hit_state_limit=hit_limit,
                invariant_evals=dict(self._invariant_evals),
                handler_fires=dict(self._handler_fires),
                exhausted=not hit_limit and stop_reason is None,
                fault_budget=self.fault_budget,
                canonical_states=(len(visited) if self.symmetry
                                  else None),
                stop_reason=stop_reason,
            )
            if prof is not None:
                prof.sample(len(visited), len(frontier), max_depth,
                            transitions)
                prof.set_visited(
                    entries=len(visited),
                    mode="fingerprint" if fp is not None else "state",
                    container_bytes=visited_container_bytes(
                        visited, parents))
                res.profile = prof.build(res)
            if atlas is not None:
                res.atlas = atlas.build(res)
            return res

        def trace_to(key, last_label: str) -> list[str]:
            labels: list[str] = []
            cursor = key
            while cursor is not None:
                parent, label = parents[cursor]
                if parent is not None:
                    labels.append(label)
                cursor = parent
            labels.reverse()
            labels.append(last_label)
            return labels

        if self.resume:
            if seed_violations:
                # Same canonical choice the parallel seed makes: the
                # minimum (depth, message, fingerprint) violation, so
                # the verdict is engine- and worker-count independent.
                d, message, sfp, state = min(
                    seed_violations, key=lambda v: (v[0], v[1], v[2]))
                labels: list[str] = []
                cursor = sfp
                while cursor is not None:
                    parent, label = parents[cursor]
                    if parent is not None:
                        labels.append(label)
                    cursor = parent
                labels.reverse()
                if not labels:
                    labels = ["<initial>"]
                return result(False, Violation(
                    "invariant", message, labels, state))
        else:
            violation = self._check_invariants(initial)
            if violation is not None:
                return result(False, Violation(
                    "invariant", violation, ["<initial>"], initial))

        # The guard runs once per popped state, only when checkpointing
        # or budgets are armed -- unarmed runs execute the loop the hot
        # path always ran.  Stopping at the top of the loop is a clean
        # cut: every non-frontier visited state is fully expanded, so
        # the checkpoint resumes to the exact uninterrupted result.
        guard_armed = (self.checkpoint_out is not None
                       or self.deadline_seconds is not None
                       or self.max_visited_bytes is not None)

        def write_ckpt(durable=True):
            started = time.perf_counter()
            frontier_keys = {key for _state, key in frontier}
            # Frontier states are accepted (and invariant-checked) in
            # this loop but pre-acceptance in the on-disk format; every
            # accepted passing state contributed exactly one evaluation
            # per invariant, so subtracting the frontier size converts
            # the counters to the cut's pre-acceptance semantics.
            drained = len(frontier_keys)
            invariant_evals = {
                name: max(0, count - drained)
                for name, count in self._invariant_evals.items()}
            payload = dict(config_echo(self, self.symmetry))
            payload.update({
                "kind": CHECKPOINT_KIND,
                "v": CHECKPOINT_VERSION,
                "wave": depth[frontier[0][1]],
                "transitions": transitions,
                "max_depth": max_depth,
                "elapsed": baseline_elapsed
                + (time.perf_counter() - start_time),
                "invariant_evals": invariant_evals,
                "handler_fires": dict(self._handler_fires),
                "visited": [f"{key:016x}" for key in visited
                            if key not in frontier_keys],
                "parents": {
                    f"{key:016x}": [
                        None if parent is None else f"{parent:016x}",
                        label]
                    for key, (parent, label) in parents.items()
                    if key not in frontier_keys},
                # Frontier states are stored by reference (null state
                # slot): the (parent fp, label) chain reconstructs each
                # one at resume by replay.  Serializing thousands of
                # concrete frontier states made every periodic write
                # O(frontier x state size) -- the dominant cost of
                # checkpointing; the chain reference is a few bytes.
                "frontier": [
                    [f"{key:016x}", None,
                     (None if parents[key][0] is None
                      else f"{parents[key][0]:016x}"),
                     parents[key][1], depth[key]]
                    for _state, key in frontier],
            })
            write_checkpoint(self.checkpoint_out, payload,
                             self.checkpoint_keep_last, durable=durable)
            cost = time.perf_counter() - started
            if prof is not None:
                prof.add_phase("checkpoint_io", cost)
            return cost

        last_ckpt_wave = depth[frontier[0][1]] if frontier else 0
        last_ckpt_time = start_time
        last_ckpt_cost = 0.0

        certify = (self.symmetry and self._canon is not None
                   and self._canon.perms)
        while frontier:
            if guard_armed:
                reason = None
                if len(visited) >= self.max_states:
                    hit_limit = True
                    reason = "state_limit"
                elif interrupt_cell[0]:
                    reason = "interrupted"
                elif (self.deadline_seconds is not None
                      and time.perf_counter() - start_time
                      >= self.deadline_seconds):
                    reason = "deadline"
                elif (self.max_visited_bytes is not None
                      and visited_container_bytes(visited, parents)
                      > self.max_visited_bytes):
                    reason = "memory"
                if reason is not None:
                    if self.checkpoint_out is not None:
                        write_ckpt()
                    if reason != "state_limit":
                        stop_reason = reason
                    return result(True, None)
                if (self.checkpoint_out is not None
                        and (self.checkpoint_interval_waves
                             or self.checkpoint_interval_seconds)):
                    head_depth = depth[frontier[0][1]]
                    # perf_counter only when a time interval is armed:
                    # this branch runs once per popped state.
                    if (((self.checkpoint_interval_waves
                          and head_depth - last_ckpt_wave
                          >= self.checkpoint_interval_waves)
                         or (self.checkpoint_interval_seconds
                             and time.perf_counter() - last_ckpt_time
                             >= self.checkpoint_interval_seconds))
                            and time.perf_counter() - last_ckpt_time
                            >= PERIODIC_SPACING_RATIO * last_ckpt_cost):
                        # Periodic writes skip the fsync: their loss
                        # window is the next interval, and the final
                        # (durable) write still lands at every stop.
                        # The spacing guard self-limits checkpoint time
                        # to a bounded wall-time fraction (see
                        # PERIODIC_SPACING_RATIO).
                        last_ckpt_cost = write_ckpt(durable=False)
                        last_ckpt_wave = head_depth
                        last_ckpt_time = time.perf_counter()
            state, key = frontier.popleft()
            found_successor = False
            out_degree = 0
            sym_keys = [] if certify else None
            if atlas is not None:
                atlas.expand(state, fp=key if fp is not None else None)
            try:
                # Profiled runs wrap the successor generator so the time
                # spent *generating* (handler dispatch included) is
                # separated from this loop's per-successor bookkeeping.
                successors = self._successors(state)
                if prof is not None:
                    successors = prof.timed_successors(successors)
                for label, successor in successors:
                    transitions += 1
                    out_degree += 1
                    found_successor = True
                    if self.check_progress:
                        graph[state].append(successor)
                    if prof is None or fp is None:
                        succ_key = fp(successor) if fp else successor
                    else:
                        t0 = time.perf_counter()
                        succ_key = fp(successor)
                        prof.add_phase("fingerprint",
                                       time.perf_counter() - t0)
                    if sym_keys is not None:
                        sym_keys.append(succ_key)
                    if atlas is not None:
                        # Every generated successor is an edge, even when
                        # its target was already visited -- record before
                        # the dedup check.  Reuses the fingerprint when
                        # one is already on hand.
                        succ_fp = atlas.edge(
                            label, successor,
                            fp=succ_key if fp is not None else None)
                    if prof is not None:
                        t0 = time.perf_counter()
                    if succ_key in visited:
                        if prof is not None:
                            prof.add_phase("visited",
                                           time.perf_counter() - t0)
                        continue
                    if (len(visited) >= self.max_states
                            and not guard_armed):
                        # Guard-armed runs defer the limit to the next
                        # pop so truncation lands on a clean cut (every
                        # visited non-frontier state fully expanded)
                        # and the checkpoint resumes exactly.
                        hit_limit = True
                        return result(True, None)
                    visited.add(succ_key)
                    if (self.progress_stream is not None
                            and len(visited) % self.progress_every == 0):
                        self._report_progress(len(visited), len(frontier),
                                              max_depth, transitions,
                                              start_time)
                    parents[succ_key] = (key, label)
                    if self.check_progress:
                        graph.setdefault(successor, [])
                    depth[succ_key] = depth[key] + 1
                    if atlas is not None:
                        atlas.visit(successor, depth[succ_key], fp=succ_fp)
                    if prof is not None:
                        prof.add_phase("visited", time.perf_counter() - t0)
                        if (depth[succ_key] > max_depth
                                or len(visited) % prof.sample_every == 0):
                            prof.sample(len(visited), len(frontier),
                                        max(max_depth, depth[succ_key]),
                                        transitions)
                    max_depth = max(max_depth, depth[succ_key])
                    if prof is None:
                        message = self._check_invariants(successor)
                    else:
                        t0 = time.perf_counter()
                        message = self._check_invariants(successor)
                        prof.add_phase("invariants",
                                       time.perf_counter() - t0)
                    if message is not None:
                        return result(False, Violation(
                            "invariant", message,
                            trace_to(key, label), successor))
                    frontier.append((successor, succ_key))
            except _LabelledViolation as labelled:
                return result(False, Violation(
                    "error", labelled.message,
                    trace_to(key, labelled.label), state))
            if sym_keys is not None:
                self._certify_symmetry(state, sym_keys)
            if prof is not None:
                prof.add_out_degree(out_degree)
            if not found_successor:
                _, last_label = parents[key]
                return result(False, Violation(
                    "deadlock",
                    "no rule enabled: all nodes blocked and no messages "
                    "in flight",
                    trace_to(key, "<stuck>"), state))

        if self.check_progress and not hit_limit and stop_reason is None:
            violation = self._check_progress(graph, parents)
            if violation is not None:
                return result(False, violation)
        return result(True, None)

    # -- partial-order-reduced search (sleep sets) --------------------------
    #
    # Sleep sets (Godefroid) prune *edges*, never states: a transition
    # is skipped at a state only when a commuting reordering of it is
    # explored from a sibling or was already covered on the path that
    # put it to sleep, so every reachable state -- and with it every
    # invariant verdict, error rule, and deadlock -- is still reached.
    # Two transitions here are treated as independent only when they
    # act on different nodes (an application op by p, or a delivery
    # *into* p, acts on p), neither is a fault transition, and the
    # congestion gate stays open across the reordering: an application
    # op is only enabled while no channel or deferred queue sits at the
    # cap, so a sibling's successor must be congestion-free before an
    # app op may commute past it.  Disjoint actors give disjoint
    # footprints in this model: one action writes only its actor's
    # views/app row and appends to its actor's outgoing channels, and
    # append-at-tail commutes with consume-at-index on a shared channel
    # (the reorder window only grows).  States reached while fault
    # budget remains are expanded in full -- fault transitions touch
    # arbitrary channels and share the global budget, so no commuting
    # argument applies to them.
    #
    # BFS revisits need the classical re-arrival rule: reaching a
    # visited state with a smaller sleep set re-opens the transitions
    # the difference regained (they were never explored anywhere), so
    # the stored representative is re-enqueued to expand exactly those.
    # This is why the POR loop -- unlike the fingerprint-mode hot loop
    # -- retains every visited state, and why it lives in its own
    # method instead of perturbing run().

    def _enabled_moves(self, state: GlobalState) -> list:
        """Pre-execution enumeration of the non-fault transitions
        enabled at ``state``: (label, actor, kind, payload) tuples, in
        exactly the order the stock enumerators execute them.  Labels
        are known before any handler runs, so a slept transition costs
        nothing."""
        moves = []
        if self._congestion_count(state) == 0:
            for node in range(self.n_nodes):
                app = state.apps[node]
                if app.blocked_on is not None:
                    continue
                for choice in self._choices(node, app.gen):
                    moves.append((choice.label, node, "app", choice))
        reorder = self.reorder_bound
        for src in range(self.n_nodes):
            row = state.channels[src]
            for dst in range(self.n_nodes):
                channel = row[dst]
                limit = min(len(channel), reorder + 1)
                for index in range(limit):
                    label = self._delivery_label(
                        channel[index], src, dst, index)
                    moves.append((label, dst, "deliver",
                                  (src, dst, index)))
        return moves

    def _execute_move(self, state: GlobalState, actor: int, kind: str,
                      payload) -> GlobalState:
        """Run one enumerated move through the configured engine."""
        if kind == "app":
            if self.engine == "legacy":
                return self._legacy_apply_app_op(
                    state, actor, payload.op, payload.new_gen)
            return self._apply_app_op(state, actor, payload.op,
                                      payload.new_gen)
        src, dst, index = payload
        if self.engine == "legacy":
            return self._legacy_apply_delivery(state, src, dst, index)
        return self._apply_delivery(state, src, dst, index)

    def _run_por(self) -> CheckResult:
        """Breadth-first exploration with sleep-set pruning."""
        start_time = time.perf_counter()
        prof = self.profiler
        if prof is not None:
            prof.begin()
        self._progress_window = deque(maxlen=8)
        self._invariant_evals = {}
        self._handler_fires = {}
        self._named_invariants = [
            (self._invariant_name(invariant), invariant)
            for invariant in self.invariants
        ]
        if self.engine == "fast":
            self._inv_verdicts = self._invariant_verdicts.setdefault(
                tuple(inv for _name, inv in self._named_invariants), {})
        else:
            self._inv_verdicts = None
        initial = initial_global_state(
            self.protocol, self.n_nodes, self.n_blocks, self.home_of,
            self.events.initial, faults=self.fault_budget)

        fp = self.fingerprint_fn if self.fingerprint_states else None
        initial_key = fp(initial) if fp else initial
        atlas = self.atlas
        if atlas is not None:
            atlas.bind(self.protocol, self.n_nodes, self.n_blocks)
            atlas.visit(initial, 0,
                        fp=initial_key if fp is not None else None)
        visited = {initial_key}
        parents: dict = {initial_key: (None, "<initial>")}
        depth: dict = {initial_key: 0}
        # Per-key sleep bookkeeping:
        # [state, sleep, explored, expanded, slept_labels].
        # ``state`` is the stored concrete representative (needed to
        # re-expand on re-arrival), ``sleep`` a frozenset of
        # (label, actor, kind) entries currently asleep there,
        # ``explored`` the labels already executed from it, and
        # ``slept_labels`` the labels currently counted as pruned there
        # (so ``pruned_transitions`` nets out moves a later re-arrival
        # woke up and executed, and re-expansion passes do not
        # double-count).
        meta: dict = {initial_key: [initial, frozenset(), set(), False,
                                    set()]}
        frontier: deque = deque([initial_key])
        transitions = 0
        pruned = 0
        max_depth = 0
        hit_limit = False
        stop_reason: Optional[str] = None

        def result(ok: bool, violation: Optional[Violation]) -> CheckResult:
            if fp is not None and violation is not None:
                self.verify_violation(violation)
            if self.progress_stream is not None:
                self._report_progress(len(visited), len(frontier),
                                      max_depth, transitions, start_time,
                                      final=True)
            res = CheckResult(
                protocol_name=self.protocol.name,
                ok=ok,
                states_explored=len(visited),
                transitions=transitions,
                max_depth=max_depth,
                elapsed_seconds=time.perf_counter() - start_time,
                violation=violation,
                n_nodes=self.n_nodes,
                n_blocks=self.n_blocks,
                reorder_bound=self.reorder_bound,
                hit_state_limit=hit_limit,
                invariant_evals=dict(self._invariant_evals),
                handler_fires=dict(self._handler_fires),
                exhausted=not hit_limit and stop_reason is None,
                fault_budget=self.fault_budget,
                canonical_states=(len(visited) if self.symmetry
                                  else None),
                pruned_transitions=pruned,
                stop_reason=stop_reason,
            )
            if prof is not None:
                prof.sample(len(visited), len(frontier), max_depth,
                            transitions, pruned=pruned)
                prof.set_visited(
                    entries=len(visited),
                    mode="fingerprint" if fp is not None else "state",
                    container_bytes=(sys.getsizeof(visited)
                                     + sys.getsizeof(parents)))
                res.profile = prof.build(res)
            if atlas is not None:
                res.atlas = atlas.build(res)
            return res

        def trace_to(key, last_label: str) -> list[str]:
            labels: list[str] = []
            cursor = key
            while cursor is not None:
                parent, label = parents[cursor]
                if parent is not None:
                    labels.append(label)
                cursor = parent
            labels.reverse()
            labels.append(last_label)
            return labels

        congestion = self._congestion_count

        def child_sleep(actor_u: int, kind_u: str, successor,
                        sleep, executed) -> frozenset:
            """The sleep set ``successor`` inherits through move u:
            still-independent inherited entries plus the earlier
            siblings u commutes with."""
            keep = []
            for (t_label, t_actor, t_kind), t_succ in executed:
                if t_actor == actor_u:
                    continue
                # t must stay enabled (same footprint) after u: an app
                # op needs the congestion gate open at the successor.
                if t_kind == "app" and congestion(successor) != 0:
                    continue
                # u must stay enabled after t: known only when t's own
                # successor is on hand (siblings); inherited entries
                # have none, so an app-op u drops them conservatively.
                if kind_u == "app" and (t_succ is None
                                        or congestion(t_succ) != 0):
                    continue
                keep.append((t_label, t_actor, t_kind))
            return frozenset(keep)

        violation = self._check_invariants(initial)
        if violation is not None:
            return result(False, Violation(
                "invariant", violation, ["<initial>"], initial))

        budget_armed = (self.deadline_seconds is not None
                        or self.max_visited_bytes is not None)
        while frontier:
            if budget_armed:
                # POR rejects checkpointing (pruning state is not
                # serialized), but budgets still stop the run cleanly
                # with a stop_reason instead of running unbounded.
                if (self.deadline_seconds is not None
                        and time.perf_counter() - start_time
                        >= self.deadline_seconds):
                    stop_reason = "deadline"
                    return result(True, None)
                if (self.max_visited_bytes is not None
                        and visited_container_bytes(visited, parents)
                        > self.max_visited_bytes):
                    stop_reason = "memory"
                    return result(True, None)
            key = frontier.popleft()
            entry = meta[key]
            state, sleep, explored = entry[0], entry[1], entry[2]
            slept_labels = entry[4]
            entry[3] = True
            if atlas is not None:
                atlas.expand(state, fp=key if fp is not None else None)
            # While fault budget remains the state also has drop/dup
            # transitions; those commute with nothing, so such states
            # are expanded unreduced (children start sleep-free).
            prune_here = state.faults == (0, 0)
            found_successor = False
            out_degree = 0
            # (entry, successor) for every move taken from this state,
            # in order -- the sibling context child_sleep consults.
            # Previously-explored labels (re-expansion) join with a
            # None successor so ordering stays stable.
            executed: list = []

            def absorb(label: str, successor, child: frozenset):
                """Shared per-successor bookkeeping; returns a
                CheckResult to propagate, or None to continue."""
                nonlocal max_depth, hit_limit
                succ_key = fp(successor) if fp else successor
                if atlas is not None:
                    atlas.edge(label, successor,
                               fp=succ_key if fp is not None else None)
                if succ_key in visited:
                    stored = meta[succ_key]
                    if stored[0] == successor:
                        merged = stored[1] & child
                    else:
                        # Symmetry merged a different concrete
                        # representative into this key: the concrete
                        # diamond argument does not transfer, so the
                        # stored state falls back to full expansion.
                        merged = frozenset()
                    if merged != stored[1]:
                        stored[1] = merged
                        if stored[3]:
                            # Re-arrival regained transitions that were
                            # never explored anywhere: re-expand the
                            # stored representative for exactly those.
                            stored[3] = False
                            frontier.append(succ_key)
                    return None
                if len(visited) >= self.max_states:
                    hit_limit = True
                    return result(True, None)
                visited.add(succ_key)
                if (self.progress_stream is not None
                        and len(visited) % self.progress_every == 0):
                    self._report_progress(len(visited), len(frontier),
                                          max_depth, transitions,
                                          start_time)
                parents[succ_key] = (key, label)
                depth[succ_key] = depth[key] + 1
                meta[succ_key] = [successor, child, set(), False, set()]
                if atlas is not None:
                    atlas.visit(successor, depth[succ_key],
                                fp=succ_key if fp is not None else None)
                if prof is not None and (
                        depth[succ_key] > max_depth
                        or len(visited) % prof.sample_every == 0):
                    prof.sample(len(visited), len(frontier),
                                max(max_depth, depth[succ_key]),
                                transitions, pruned=pruned)
                max_depth = max(max_depth, depth[succ_key])
                message = self._check_invariants(successor)
                if message is not None:
                    return result(False, Violation(
                        "invariant", message,
                        trace_to(key, label), successor))
                frontier.append(succ_key)
                return None

            try:
                if prune_here:
                    for label, actor, kind, payload in \
                            self._enabled_moves(state):
                        found_successor = True
                        if label in explored:
                            # Executed on an earlier pass over this
                            # state; keep its slot in the sibling order.
                            executed.append(((label, actor, kind), None))
                            continue
                        if (label, actor, kind) in sleep:
                            if label not in slept_labels:
                                slept_labels.add(label)
                                pruned += 1
                                if prof is not None:
                                    prof.add_pruned(1)
                            continue
                        try:
                            successor = self._execute_move(
                                state, actor, kind, payload)
                        except CheckerViolation as violation:
                            raise _LabelledViolation(label,
                                                     violation.message)
                        transitions += 1
                        out_degree += 1
                        explored.add(label)
                        if label in slept_labels:
                            # Woken by a re-arrival after being counted
                            # as pruned on an earlier pass: net it out.
                            slept_labels.discard(label)
                            pruned -= 1
                            if prof is not None:
                                prof.add_pruned(-1)
                        child = child_sleep(actor, kind, successor,
                                            sleep, executed)
                        executed.append(((label, actor, kind),
                                         successor))
                        res = absorb(label, successor, child)
                        if res is not None:
                            return res
                else:
                    for label, successor in self._successors(state):
                        transitions += 1
                        out_degree += 1
                        found_successor = True
                        res = absorb(label, successor, frozenset())
                        if res is not None:
                            return res
            except _LabelledViolation as labelled:
                return result(False, Violation(
                    "error", labelled.message,
                    trace_to(key, labelled.label), state))
            if self.symmetry:
                # Sleep sets prune some moves above, so the comparison
                # recomputes the full successor set from scratch.
                self._certify_symmetry(state)
            if prof is not None:
                prof.add_out_degree(out_degree)
            if not found_successor:
                _, last_label = parents[key]
                return result(False, Violation(
                    "deadlock",
                    "no rule enabled: all nodes blocked and no messages "
                    "in flight",
                    trace_to(key, "<stuck>"), state))

        return result(True, None)

    # -- trace replay -------------------------------------------------------

    def fresh_clone(self) -> "ModelChecker":
        """A checker with the same configuration but pristine counters
        (replays must not inflate this run's coverage numbers)."""
        return ModelChecker(
            self.protocol, n_nodes=self.n_nodes, n_blocks=self.n_blocks,
            reorder_bound=self.reorder_bound, events=self.events,
            invariants=self.invariants, max_states=self.max_states,
            channel_cap=self.channel_cap,
            interpreter_factory=self.interpreter_factory,
            fault_budget=self.fault_budget, engine=self.engine)

    def verify_violation(self, violation: Violation) -> GlobalState:
        """Replay-validate a counterexample built from fingerprints.

        Re-executes the label sequence from the initial state and checks
        the claimed violation actually occurs at its end.  Returns the
        final replayed state; raises :class:`FingerprintCollisionError`
        if the trace diverges (the signature of a fingerprint collision
        having corrupted the parent pointers)."""
        try:
            final = replay_labels(self.fresh_clone(), violation.trace)
        except TraceReplayError as error:
            raise FingerprintCollisionError(
                f"counterexample failed replay validation: {error}; "
                "a fingerprint collision corrupted the violation path"
            ) from None
        if violation.kind == "invariant":
            clone = self.fresh_clone()
            clone._invariant_evals = {}
            clone._named_invariants = self._named_invariants
            if clone._check_invariants(final) is None:
                raise FingerprintCollisionError(
                    "replayed end state satisfies every invariant; a "
                    "fingerprint collision corrupted the violation path")
        if violation.state is None:
            violation.state = final
        return final


    def _check_progress(self, graph, parents) -> Optional[Violation]:
        """Liveness: from every reachable state, every blocked thread
        must be able to reach a state where it is running again.

        Computed per node by backward reachability from the states where
        that node is unblocked; any reachable state outside that set is
        a starvation witness (the thread can *never* be woken along any
        continuation of the run)."""
        # Reverse adjacency once.
        reverse: dict[GlobalState, list[GlobalState]] = {
            state: [] for state in graph}
        for state, successors in graph.items():
            for successor in successors:
                reverse[successor].append(state)

        for node in range(self.n_nodes):
            can_recover = {
                state for state in graph
                if state.apps[node].blocked_on is None
            }
            frontier = deque(can_recover)
            while frontier:
                state = frontier.popleft()
                for predecessor in reverse[state]:
                    if predecessor not in can_recover:
                        can_recover.add(predecessor)
                        frontier.append(predecessor)
            stuck = [s for s in graph if s not in can_recover]
            if stuck:
                # Report the shallowest witness for a short trace.
                witness = min(
                    stuck,
                    key=lambda s: len(self._trace_via_parents(s, parents)))
                trace = self._trace_via_parents(witness, parents)
                return Violation(
                    "starvation",
                    f"node {node} is blocked on block "
                    f"{witness.apps[node].blocked_on} and no reachable "
                    "continuation of the run ever wakes it",
                    trace + ["<thread lost>"],
                    witness,
                )
        return None

    @staticmethod
    def _trace_via_parents(state, parents) -> list[str]:
        labels: list[str] = []
        cursor = state
        while cursor is not None:
            parent, label = parents[cursor]
            if parent is not None:
                labels.append(label)
            cursor = parent
        labels.reverse()
        return labels

    def _report_progress(self, states: int, frontier_size: int,
                         max_depth: int, transitions: int,
                         start_time: float, final: bool = False) -> None:
        elapsed = time.perf_counter() - start_time
        rate = states / elapsed if elapsed > 0 else float(states)
        rolling = _rolling_rate(self._progress_window, elapsed, states)
        eta = None
        if not final:
            eta = _eta_seconds(states, self.max_states, rolling or rate)
        print(
            format_progress_line(
                self.protocol.name, states, frontier_size, max_depth,
                transitions, sum(self._invariant_evals.values()),
                rate, rolling, eta, "done" if final else "..."),
            file=self.progress_stream, flush=True)

    @staticmethod
    def _invariant_name(invariant: Invariant) -> str:
        # Closure-produced invariants (bounded_queues().check) report
        # their factory's name; plain functions their own.
        qualname = getattr(invariant, "__qualname__", None)
        if qualname:
            return qualname.split(".")[0]
        return type(invariant).__name__

    def _check_invariants(self, state: GlobalState) -> Optional[str]:
        evals = self._invariant_evals
        named = self._named_invariants
        cache = self._inv_verdicts
        if cache is not None:
            hit = cache.get(state)
            if hit is not None:
                # Replay the verdict *and* the evaluation counts: the
                # original evaluation stopped after n_evaluated checks.
                message, n_evaluated = hit
                for name, _inv in named[:n_evaluated]:
                    evals[name] = evals.get(name, 0) + 1
                return message
            message = None
            n_evaluated = 0
            for name, invariant in named:
                evals[name] = evals.get(name, 0) + 1
                n_evaluated += 1
                message = invariant(state, self.protocol)
                if message is not None:
                    break
            cache[state] = (message, n_evaluated)
            return message
        for name, invariant in named:
            evals[name] = evals.get(name, 0) + 1
            message = invariant(state, self.protocol)
            if message is not None:
                return message
        return None


def replay_labels(checker: ModelChecker, labels: list) -> GlobalState:
    """Deterministically re-execute a rule-label sequence.

    Walks the trace from the initial state, at each step taking the
    successor whose label matches.  ``<initial>``/``<stuck>``/``<thread
    lost>`` markers are skipped; a label that names an error rule is
    confirmed by the :class:`CheckerViolation` it raises.  Raises
    :class:`TraceReplayError` when no successor carries the expected
    label -- on a fingerprint-reconstructed trace that means a
    collision."""
    checker._named_invariants = [
        (checker._invariant_name(inv), inv) for inv in checker.invariants]
    state = initial_global_state(
        checker.protocol, checker.n_nodes, checker.n_blocks,
        checker.home_of, checker.events.initial,
        faults=checker.fault_budget)
    for step, label in enumerate(labels, 1):
        if label in ("<initial>", "<stuck>", "<thread lost>"):
            continue
        try:
            for candidate, successor in checker._successors(state):
                if candidate == label:
                    state = successor
                    break
            else:
                raise TraceReplayError(
                    f"step {step}: no successor labelled {label!r}")
        except _LabelledViolation as labelled:
            if labelled.label == label and step == len(labels):
                return state  # the trace's final error rule, confirmed
            raise TraceReplayError(
                f"step {step}: rule {labelled.label!r} raised "
                f"{labelled.message!r} while looking for {label!r}"
            ) from None
    return state


def replay_step(checker: ModelChecker, state: GlobalState,
                label: str) -> GlobalState:
    """One deterministic replay step: the successor of ``state`` whose
    rule label is ``label``.

    The memoized chain replays (checkpoint frontier reconstruction)
    call this per edge below a cached ancestor instead of re-walking
    whole chains through :func:`replay_labels`.  ``checker`` must have
    ``_named_invariants`` prepared.  Raises :class:`TraceReplayError`
    when no successor carries the label or an error rule fires first --
    either means the chain does not belong to this protocol build."""
    try:
        for candidate, successor in checker._successors(state):
            if candidate == label:
                return successor
    except _LabelledViolation as labelled:
        raise TraceReplayError(
            f"rule {labelled.label!r} raised {labelled.message!r} "
            f"while looking for {label!r}") from None
    raise TraceReplayError(f"no successor labelled {label!r}")


class _LabelledViolation(Exception):
    """Internal: a CheckerViolation tagged with the rule that raised it."""

    def __init__(self, label: str, message: str):
        super().__init__(message)
        self.label = label
        self.message = message
