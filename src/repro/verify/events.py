"""Event-generation loops for verification (Section 7).

"A protocol writer must supply ... an event generation loop that
generates a random sequence of events for which the protocol must work
correctly."  Here the generator enumerates, for a node's current
generator state, every event it may issue next; the checker explores all
of them.  Generator state is part of the hashed global state, so it must
stay small and bounded.

- :class:`StacheEvents`: "each node should process any stream of loads
  and stores to any shared addresses" -- stateless.
- :class:`BufferedWriteEvents`: loads, stores, and synchronisation
  operations randomly interleaved.
- :class:`CasEvents`: Stache events plus Compare&Swap operations.
- :class:`LcmEvents`: phase discipline per block -- enter, access, exit
  ("quite complicated -- it took about 400 lines of Mur-phi code"; the
  structured enumeration below is the same loop in a few dozen lines).
"""

from __future__ import annotations

from dataclasses import dataclass

# An operation is ('read', blk) | ('write', blk) | ('event', tag, blk,
# payload); blocking behaviour is decided by the checker.
Op = tuple


@dataclass(frozen=True)
class GenChoice:
    """One possible next event for a node."""

    label: str
    op: Op
    new_gen: tuple


class EventGenerator:
    """Enumerates the application events a node may issue."""

    def initial(self, node: int) -> tuple:
        return ()

    def choices(self, gen: tuple, node: int, n_blocks: int) -> list[GenChoice]:
        raise NotImplementedError


class StacheEvents(EventGenerator):
    """Any stream of loads and stores to any shared address."""

    def choices(self, gen: tuple, node: int, n_blocks: int) -> list[GenChoice]:
        result = []
        for block in range(n_blocks):
            result.append(GenChoice(f"n{node}: read b{block}",
                                    ("read", block), gen))
            result.append(GenChoice(f"n{node}: write b{block}",
                                    ("write", block), gen))
        return result


class CasEvents(StacheEvents):
    """Loads, stores, and Compare&Swap operations."""

    def choices(self, gen: tuple, node: int, n_blocks: int) -> list[GenChoice]:
        result = super().choices(gen, node, n_blocks)
        for block in range(n_blocks):
            result.append(GenChoice(
                f"n{node}: cas b{block}",
                ("event", "CAS_FAULT", block, (0, 0, 1)), gen))
        return result


class EvictEvents(StacheEvents):
    """Loads, stores, and cache replacements (the Section 2 scenario)."""

    def choices(self, gen: tuple, node: int, n_blocks: int) -> list[GenChoice]:
        result = super().choices(gen, node, n_blocks)
        for block in range(n_blocks):
            result.append(GenChoice(
                f"n{node}: evict b{block}",
                ("event", "EVICT_FAULT", block, ()), gen))
        return result


class BufferedWriteEvents(StacheEvents):
    """Loads, stores, and synchronisation points (weak ordering)."""

    def choices(self, gen: tuple, node: int, n_blocks: int) -> list[GenChoice]:
        result = super().choices(gen, node, n_blocks)
        for block in range(n_blocks):
            result.append(GenChoice(
                f"n{node}: sync b{block}",
                ("event", "SYNC_FAULT", block, ()), gen))
        return result


class LcmEvents(EventGenerator):
    """Phase-disciplined events: enter a block's phase, access the
    private copy, exit.  Generator state: per-block in-phase flags."""

    def initial(self, node: int) -> tuple:
        return ()  # lazily sized in choices

    def choices(self, gen: tuple, node: int, n_blocks: int) -> list[GenChoice]:
        flags = gen if len(gen) == n_blocks else (False,) * n_blocks
        result = []
        for block in range(n_blocks):
            in_phase = flags[block]
            if in_phase:
                result.append(GenChoice(f"n{node}: lcm-read b{block}",
                                        ("read", block), flags))
                result.append(GenChoice(f"n{node}: lcm-write b{block}",
                                        ("write", block), flags))
                exited = flags[:block] + (False,) + flags[block + 1:]
                result.append(GenChoice(
                    f"n{node}: exit b{block}",
                    ("event", "EXIT_LCM_FAULT", block, ()), exited))
            else:
                result.append(GenChoice(f"n{node}: read b{block}",
                                        ("read", block), flags))
                result.append(GenChoice(f"n{node}: write b{block}",
                                        ("write", block), flags))
                entered = flags[:block] + (True,) + flags[block + 1:]
                result.append(GenChoice(
                    f"n{node}: enter b{block}",
                    ("event", "ENTER_LCM_FAULT", block, ()), entered))
        return result


def events_for_protocol(name: str) -> EventGenerator:
    """The conventional event loop for a registered protocol name."""
    if name.startswith("lcm"):
        return LcmEvents()
    if name.startswith("stache_cas"):
        return CasEvents()
    if name.startswith("stache_evict"):
        return EvictEvents()
    if name.startswith("buffered"):
        return BufferedWriteEvents()
    return StacheEvents()
