"""Deterministic fault injection: lossy, duplicating, stalling networks.

Section 2 motivates Teapot with the failure-shaped corner cases that
kill hand-written protocols -- reordered, unexpected, and
dropped-then-retried messages.  This module supplies the missing
adversary: a :class:`FaultPlan` decides, per message, whether the
network drops it, duplicates it, or delays it, plus per-node
:class:`StallWindow` intervals during which a node's incoming
deliveries are held.  Every decision is drawn from the plan's *own*
seeded RNG stream, never from the network's jitter RNG, so a plan whose
rules fire does not perturb the delay sequence of the messages that do
get through -- and a run with faults disabled is byte-identical to one
without this module loaded at all.

Two rule styles compose:

- *scripted*: ``FaultRule(action="drop", tag="INV_ACK", occurrence=1)``
  fires on exactly the first matching message -- how checker
  counterexamples are replayed in the simulator
  (``teapot run --fault-plan``).
- *rate-based*: ``FaultRule(action="dup", rate=0.01)`` fires on a
  matching message with the given probability, deterministically under
  the plan's seed.

:class:`FaultBudget` is the model checker's view of the same adversary:
instead of a schedule it carries *budgets* (how many drops/duplicates
the exploration may spend), and the checker explores every way of
spending them.

:class:`RecoveryConfig` configures the Tempest node layer's answer: a
watchdog that re-issues an outstanding access fault's request messages
with exponential backoff, and an at-least-once dedup layer that absorbs
duplicate deliveries by replaying the outputs of the first delivery.
See docs/ROBUSTNESS.md for the full model.
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass, field
from typing import Optional

FAULT_ACTIONS = ("drop", "dup", "delay")

PLAN_KIND = "teapot-fault-plan"
PLAN_VERSION = 1


class FaultPlanError(ValueError):
    """A fault plan (or its JSON form) is malformed."""


@dataclass(frozen=True)
class FaultRule:
    """One match-and-act rule.

    ``None`` match fields are wildcards.  ``occurrence=k`` makes the
    rule scripted: it fires on exactly the k-th matching message
    (1-based) and never again.  Without ``occurrence``, the rule fires
    on each matching message with probability ``rate``, up to ``limit``
    total firings (``None`` = unlimited).
    """

    action: str                      # "drop" | "dup" | "delay"
    tag: Optional[str] = None
    src: Optional[int] = None
    dst: Optional[int] = None
    block: Optional[int] = None
    occurrence: Optional[int] = None
    rate: float = 1.0
    delay: int = 0                   # extra cycles, for action="delay"
    limit: Optional[int] = None

    def __post_init__(self):
        if self.action not in FAULT_ACTIONS:
            raise FaultPlanError(
                f"unknown fault action {self.action!r} "
                f"(expected one of {', '.join(FAULT_ACTIONS)})")
        if not (0.0 <= self.rate <= 1.0):
            raise FaultPlanError(f"rate must be in [0, 1], got {self.rate}")
        if self.occurrence is not None and self.occurrence < 1:
            raise FaultPlanError("occurrence is 1-based")

    def matches(self, message) -> bool:
        return ((self.tag is None or self.tag == message.tag)
                and (self.src is None or self.src == message.src)
                and (self.dst is None or self.dst == message.dst)
                and (self.block is None or self.block == message.block))


@dataclass(frozen=True)
class StallWindow:
    """Node ``node`` accepts no deliveries during [start, end) cycles;
    arrivals inside the window are held until ``end``."""

    node: int
    start: int
    end: int

    def __post_init__(self):
        if self.end <= self.start:
            raise FaultPlanError(
                f"empty stall window [{self.start}, {self.end})")


@dataclass(frozen=True)
class FaultDecision:
    """What the plan chose for one message."""

    drop: bool = False
    duplicates: int = 0
    extra_delay: int = 0


NO_FAULT = FaultDecision()


@dataclass
class FaultLedger:
    """Every fault the plan actually injected, in injection order.

    The deadlock reporter prints this so a wedged run names the faults
    that wedged it.
    """

    drops: list = field(default_factory=list)      # (t, tag, src, dst, block)
    dups: list = field(default_factory=list)
    delays: list = field(default_factory=list)     # (..., extra)
    stalls: list = field(default_factory=list)     # (t, node, held_until)

    @property
    def total(self) -> int:
        return (len(self.drops) + len(self.dups) + len(self.delays)
                + len(self.stalls))

    def summary(self) -> str:
        if not self.total:
            return "no faults injected"
        parts = []
        if self.drops:
            parts.append(f"{len(self.drops)} dropped "
                         "(" + ", ".join(
                             f"{tag} {src}->{dst} blk={blk} t={t}"
                             for t, tag, src, dst, blk in self.drops[:4])
                         + (", ..." if len(self.drops) > 4 else "") + ")")
        if self.dups:
            parts.append(f"{len(self.dups)} duplicated")
        if self.delays:
            parts.append(f"{len(self.delays)} delayed")
        if self.stalls:
            parts.append(f"{len(self.stalls)} held by stall windows")
        return "; ".join(parts)


class FaultPlan:
    """A seeded, deterministic schedule of network faults.

    ``decide`` consumes only the plan's private RNG; the network's
    jitter RNG is untouched by any fault decision.  ``max_faults``
    bounds the total number of injected faults (drops + dups + delays),
    so rate-based plans cannot starve a retrying protocol forever.
    """

    def __init__(self, rules=(), stalls=(), seed: int = 0,
                 max_faults: Optional[int] = None):
        self.rules = tuple(rules)
        self.stalls = tuple(stalls)
        self.seed = seed
        self.max_faults = max_faults
        self._rng = random.Random(seed)
        self._matches = [0] * len(self.rules)   # messages matched per rule
        self._fired = [0] * len(self.rules)     # times each rule fired
        self.injected = 0                       # drops + dups + delays
        self.ledger = FaultLedger()

    # -- decision -----------------------------------------------------------

    def _rule_fires(self, index: int, rule: FaultRule) -> bool:
        self._matches[index] += 1
        if self.max_faults is not None and self.injected >= self.max_faults:
            return False
        if rule.occurrence is not None:
            return self._matches[index] == rule.occurrence
        if rule.limit is not None and self._fired[index] >= rule.limit:
            return False
        if rule.rate >= 1.0:
            return True
        return self._rng.random() < rule.rate

    def decide(self, message, send_time: int) -> FaultDecision:
        """The fault outcome for one message send.  First matching-and-
        firing rule of each action kind applies; drop beats dup: a
        dropped message is never also duplicated or delayed, and dup/
        delay rules do not see (or count) messages a drop rule killed.
        """
        if not self.rules:
            return NO_FAULT
        entry = (send_time, message.tag, message.src, message.dst,
                 message.block)
        for index, rule in enumerate(self.rules):
            if rule.action != "drop" or not rule.matches(message):
                continue
            if self._rule_fires(index, rule):
                self._fired[index] += 1
                self.injected += 1
                self.ledger.drops.append(entry)
                return FaultDecision(drop=True, duplicates=0,
                                     extra_delay=0)
        duplicates = 0
        extra_delay = 0
        for index, rule in enumerate(self.rules):
            if rule.action == "drop" or not rule.matches(message):
                continue
            if not self._rule_fires(index, rule):
                continue
            self._fired[index] += 1
            self.injected += 1
            if rule.action == "dup":
                duplicates += 1
                self.ledger.dups.append(entry)
            else:
                extra_delay += rule.delay
                self.ledger.delays.append(entry + (rule.delay,))
        if not (duplicates or extra_delay):
            return NO_FAULT
        return FaultDecision(drop=False, duplicates=duplicates,
                             extra_delay=extra_delay)

    def hold_until(self, node: int, arrival: int) -> int:
        """Defer ``arrival`` past any stall window covering it."""
        held = arrival
        for window in self.stalls:
            if window.node == node and window.start <= held < window.end:
                held = window.end
        if held != arrival:
            self.ledger.stalls.append((arrival, node, held))
        return held

    # -- JSON round-trip ----------------------------------------------------

    def to_json(self) -> dict:
        rules = []
        for rule in self.rules:
            entry = {"action": rule.action}
            for name in ("tag", "src", "dst", "block", "occurrence",
                         "limit"):
                value = getattr(rule, name)
                if value is not None:
                    entry[name] = value
            if rule.rate != 1.0:
                entry["rate"] = rule.rate
            if rule.delay:
                entry["delay"] = rule.delay
            rules.append(entry)
        payload = {
            "kind": PLAN_KIND,
            "v": PLAN_VERSION,
            "seed": self.seed,
            "rules": rules,
        }
        if self.stalls:
            payload["stalls"] = [
                {"node": w.node, "start": w.start, "end": w.end}
                for w in self.stalls
            ]
        if self.max_faults is not None:
            payload["max_faults"] = self.max_faults
        return payload

    @classmethod
    def from_json(cls, payload: dict, path: str = "<plan>") -> "FaultPlan":
        if not isinstance(payload, dict) or payload.get("kind") != PLAN_KIND:
            raise FaultPlanError(f"{path}: not a teapot fault plan")
        if payload.get("v") != PLAN_VERSION:
            raise FaultPlanError(
                f"{path}: fault-plan version {payload.get('v')!r}, "
                f"expected {PLAN_VERSION}")
        try:
            rules = tuple(
                FaultRule(**entry) for entry in payload.get("rules", ()))
            stalls = tuple(
                StallWindow(**entry) for entry in payload.get("stalls", ()))
        except TypeError as error:
            raise FaultPlanError(f"{path}: bad rule field ({error})") from None
        return cls(rules=rules, stalls=stalls,
                   seed=payload.get("seed", 0),
                   max_faults=payload.get("max_faults"))

    def save(self, path: str) -> None:
        with open(path, "w") as handle:
            json.dump(self.to_json(), handle, indent=2, sort_keys=True)
            handle.write("\n")

    @classmethod
    def load(cls, path: str) -> "FaultPlan":
        try:
            with open(path) as handle:
                payload = json.load(handle)
        except json.JSONDecodeError as error:
            raise FaultPlanError(
                f"{path}: not valid JSON ({error.msg})") from None
        return cls.from_json(payload, path)


@dataclass(frozen=True)
class FaultBudget:
    """The checker's fault adversary: how many faults of each kind the
    exploration may spend along any one path (Section 7's reordering
    bound, extended to loss and duplication)."""

    drop: int = 0
    dup: int = 0

    def __post_init__(self):
        if self.drop < 0 or self.dup < 0:
            raise FaultPlanError("fault budgets must be >= 0")

    @property
    def total(self) -> int:
        return self.drop + self.dup

    def as_tuple(self) -> tuple:
        return (self.drop, self.dup)

    @classmethod
    def parse(cls, spec: str) -> "FaultBudget":
        """Parse a CLI spec like ``drop=1,dup=1`` (either key optional)."""
        budget = {"drop": 0, "dup": 0}
        for part in spec.split(","):
            part = part.strip()
            if not part:
                continue
            key, sep, value = part.partition("=")
            if not sep or key not in budget:
                raise FaultPlanError(
                    f"bad fault budget {part!r} (expected drop=N or dup=N)")
            try:
                budget[key] = int(value)
            except ValueError:
                raise FaultPlanError(
                    f"bad fault budget count {value!r}") from None
        return cls(**budget)


@dataclass(frozen=True)
class RecoveryConfig:
    """The node layer's timeout/retry/dedup answer to a lossy network.

    An application thread blocked on an access fault for ``timeout``
    cycles has its captured request messages re-injected (same wire
    sequence numbers); each further retry waits ``backoff`` times
    longer, up to ``max_retries`` attempts.  With ``dedup`` on, a
    delivery whose ``(src, seq)`` was already processed is absorbed and
    the outputs of the first processing are re-sent instead, so
    retries are idempotent end to end.
    """

    timeout: int = 4000
    backoff: float = 2.0
    max_retries: int = 5
    dedup: bool = True
    dedup_cache: int = 65536         # max remembered (src, seq) entries

    def __post_init__(self):
        if self.timeout <= 0:
            raise FaultPlanError("recovery timeout must be positive")
        if self.backoff < 1.0:
            raise FaultPlanError("recovery backoff must be >= 1")
        if self.max_retries < 0:
            raise FaultPlanError("max_retries must be >= 0")
