"""Continuation records.

A continuation captures "the program position, as well as local
variables" (Section 3).  After splitting, the program position is simply
(handler, suspend-site); the locals are the suspend site's save set.

Records are immutable so the model checker can hash protocol states that
contain suspended continuations.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ContinuationRecord:
    """The runtime value bound by ``Suspend`` and consumed by ``Resume``.

    - ``handler``: qualified name ``State.Message`` of the suspended
      handler (identifies the fragment table);
    - ``site_id``: which of that handler's suspend sites this is -- the
      "function pointer" of Figure 10;
    - ``saved``: the captured environment as (name, value) pairs;
    - ``is_static``: True when the record came from a statically
      allocated (shared, empty-environment) continuation.
    """

    handler: str
    site_id: int
    saved: tuple[tuple[str, object], ...]
    is_static: bool = False

    def environment(self) -> dict[str, object]:
        return dict(self.saved)

    @property
    def key(self) -> str:
        """Identity string ``Handler.Message#site`` used by trace events:
        the same key appears at the Suspend that parks this record and
        the Resume that consumes it."""
        return f"{self.handler}#{self.site_id}"

    def __repr__(self) -> str:
        kind = "static" if self.is_static else "heap"
        return f"<cont {self.key} {kind} {dict(self.saved)!r}>"


# Statically allocated continuations are shared: one record per suspend
# site, interned here so identity comparisons and hashing are cheap.
_STATIC_CACHE: dict[tuple[str, int], ContinuationRecord] = {}


def make_continuation(handler: str, site_id: int,
                      saved: tuple[tuple[str, object], ...],
                      is_static: bool) -> ContinuationRecord:
    """Create (or reuse, for static sites) a continuation record."""
    if is_static and not saved:
        key = (handler, site_id)
        record = _STATIC_CACHE.get(key)
        if record is None:
            record = ContinuationRecord(handler, site_id, (), True)
            _STATIC_CACHE[key] = record
        return record
    return ContinuationRecord(handler, site_id, saved, is_static)
