"""Executable semantics for compiled Teapot protocols.

The runtime is deliberately split from :mod:`repro.tempest` (the
multiprocessor simulator): the same interpreter executes handlers both
under the simulator and under the model checker in :mod:`repro.verify`,
which supplies a different :class:`~repro.runtime.context.ProtocolContext`.
"""

from repro.runtime.protocol import CompiledProtocol, CompiledStateInfo
from repro.runtime.continuation import ContinuationRecord
from repro.runtime.exec import HandlerInterpreter

__all__ = [
    "CompiledProtocol",
    "CompiledStateInfo",
    "ContinuationRecord",
    "HandlerInterpreter",
]
