"""The handler interpreter: executes compiled CFGs atomically.

One ``dispatch`` call runs exactly one protocol action to completion --
possibly passing through ``Resume`` calls into suspended fragments, and
possibly ending in a ``Suspend`` that parks a continuation in a
subroutine state.  This mirrors the paper's execution model: actions are
atomic with respect to other protocol events, and only the automaton (the
block state plus parked continuations) persists between actions.
"""

from __future__ import annotations

from repro.lang import ast
from repro.lang.errors import RuntimeProtocolError
from repro.compiler.ir import (
    HandlerIR,
    IAssign,
    ICall,
    IPrint,
    IResume,
    TBranch,
    TGoto,
    TReturn,
    TSuspend,
)
from repro.runtime.builtins import BUILTIN_COSTS, BUILTIN_IMPLS
from repro.runtime.context import INFO_HANDLE, ProtocolContext
from repro.runtime.continuation import ContinuationRecord, make_continuation
from repro.runtime.protocol import (
    CompiledProtocol,
    Flavor,
    NOBODY,
    StateValue,
    default_value_for,
)

# Safety net against diverging While loops in protocol code.
MAX_OPS_PER_ACTION = 200_000


class HandlerInterpreter:
    """Executes handlers of one protocol against a host context."""

    def __init__(self, protocol: CompiledProtocol, ctx: ProtocolContext):
        self.protocol = protocol
        self.ctx = ctx
        self._ops_executed = 0

    # -- dispatch ---------------------------------------------------------

    def dispatch(self) -> None:
        """Handle the context's current message as one atomic action."""
        msg = self.ctx.current_message
        state_name, state_args = self.ctx.get_state()
        state = self.protocol.states.get(state_name)
        if state is None:
            self.ctx.error(
                f"block {msg.block} is in unknown state {state_name!r}")
            return
        handler = state.dispatch(msg.tag)
        if handler is None:
            self.ctx.error(
                f"unexpected message {msg.tag} to state {state_name} "
                f"(block {msg.block}, from node {msg.src})")
            return

        self.ctx.counters.handler_dispatches += 1
        obs = self.ctx.obs
        if obs is not None:
            start = getattr(self.ctx, "now", 0)
            obs.handler_entry(self.ctx.node, msg.block, state_name,
                              handler.message_name, msg.src, start)
        costs = self.ctx.costs
        cycles = costs.dispatch
        if self.protocol.flavor is Flavor.TEAPOT:
            cycles += costs.indirect_call
        self.ctx.charge(cycles)

        env = self._initial_env(handler, state_args)
        is_default = handler.message_name == "DEFAULT"
        self._bind_message_params(handler, env, msg, is_default)

        self._ops_executed = 0
        self._run(handler, env, handler.entry)
        if obs is not None:
            obs.handler_exit(self.ctx.node, msg.block, state_name,
                             handler.message_name, start,
                             getattr(self.ctx, "now", 0))

    def _initial_env(self, handler: HandlerIR, state_args: tuple) -> dict:
        env: dict[str, object] = {}
        # State parameters come from the block's current state value.
        for (name, _type), value in zip(
                self._state_param_decls(handler), state_args):
            env[name] = value
        for name, type_name in handler.locals.items():
            env[name] = default_value_for(type_name)
        for name in handler.cont_vars:
            env.setdefault(name, None)
        return env

    def _state_param_decls(self, handler: HandlerIR) -> list[tuple[str, str]]:
        return list(handler.state_params.items())

    def _bind_message_params(self, handler: HandlerIR, env: dict,
                             msg, is_default: bool) -> None:
        params = handler.params
        env[params[0]] = msg.block
        env[params[1]] = INFO_HANDLE
        env[params[2]] = msg.src
        payload_params = params[3:]
        if is_default:
            return
        payload = msg.payload
        for index, name in enumerate(payload_params):
            env[name] = payload[index] if index < len(payload) else None

    # -- CFG execution ------------------------------------------------------

    def _run(self, handler: HandlerIR, env: dict, block_id: int) -> None:
        costs = self.ctx.costs
        while True:
            block = handler.blocks[block_id]
            for op in block.ops:
                self._step_guard(handler)
                self.ctx.charge(costs.statement)
                self._exec_op(handler, env, op)
            term = block.terminator
            if isinstance(term, TGoto):
                block_id = term.target
            elif isinstance(term, TBranch):
                self._step_guard(handler)
                self.ctx.charge(costs.statement)
                cond = self._eval(handler, env, term.cond)
                block_id = term.true_target if cond else term.false_target
            elif isinstance(term, TSuspend):
                self._do_suspend(handler, env, term)
                return
            elif isinstance(term, TReturn):
                return
            else:  # pragma: no cover - exhaustive over Terminator
                raise RuntimeProtocolError(f"bad terminator {term!r}")

    def _step_guard(self, handler: HandlerIR) -> None:
        self._ops_executed += 1
        if self._ops_executed > MAX_OPS_PER_ACTION:
            raise RuntimeProtocolError(
                f"handler {handler.qualified_name} exceeded "
                f"{MAX_OPS_PER_ACTION} operations; diverging loop?")

    def _exec_op(self, handler: HandlerIR, env: dict, op) -> None:
        if isinstance(op, IAssign):
            value = self._eval(handler, env, op.value)
            if op.target in env:
                env[op.target] = value
            elif op.target in self.protocol.info_vars:
                self.ctx.set_info(op.target, value)
            else:
                self.ctx.error(
                    f"assignment to unknown variable {op.target!r} in "
                    f"{handler.qualified_name}")
        elif isinstance(op, ICall):
            self._exec_call(handler, env, op.name, op.args)
        elif isinstance(op, IResume):
            self._exec_resume(handler, env, op)
        elif isinstance(op, IPrint):
            values = [self._eval(handler, env, a) for a in op.args]
            self.ctx.debug_print(values)
        else:  # pragma: no cover - exhaustive over Op
            raise RuntimeProtocolError(f"bad op {op!r}")

    def _exec_call(self, handler: HandlerIR, env: dict, name: str,
                   args: list[ast.Expr]):
        values = [self._eval(handler, env, a) for a in args]
        impl = BUILTIN_IMPLS.get(name)
        if impl is None:
            return self.ctx.support_call(name, values)
        extra = BUILTIN_COSTS.get(name)
        if extra is not None:
            self.ctx.charge(getattr(self.ctx.costs, extra))
        return impl(self, values)

    def _exec_resume(self, handler: HandlerIR, env: dict, op: IResume) -> None:
        record = self._eval(handler, env, op.cont)
        if not isinstance(record, ContinuationRecord):
            self.ctx.error(
                f"Resume applied to a non-continuation value {record!r} "
                f"in {handler.qualified_name}")
            return
        costs = self.ctx.costs
        counters = self.ctx.counters
        counters.resumes += 1
        if op.direct_site is not None:
            counters.direct_resumes += 1
            self.ctx.charge(costs.resume_direct)
        else:
            self.ctx.charge(costs.resume)
        if not record.is_static:
            counters.cont_frees += 1
            self.ctx.charge(costs.cont_free)
        self.ctx.charge(costs.save_restore_word * len(record.saved))

        obs = self.ctx.obs
        if obs is not None:
            obs.resume(self.ctx.node, self.ctx.current_message.block,
                       record.handler, record.site_id,
                       op.direct_site is not None,
                       getattr(self.ctx, "now", 0))

        target_handler, site = self.protocol.suspend_site(
            record.handler, record.site_id)
        renv: dict[str, object] = {
            name: None for name in target_handler.frame_vars}
        for name, type_name in target_handler.locals.items():
            renv[name] = default_value_for(type_name)
        # The block id and info handle are re-derived from context rather
        # than captured: a continuation is always resumed by a handler
        # positioned at the same block.
        renv[target_handler.params[0]] = self.ctx.current_message.block
        renv[target_handler.params[1]] = INFO_HANDLE
        renv.update(record.environment())
        # The resumed fragment runs like a call: when it finishes (or
        # suspends again), control returns here.
        self._run(target_handler, renv, site.resume_block)

    def _do_suspend(self, handler: HandlerIR, env: dict,
                    term: TSuspend) -> None:
        site = handler.suspend_sites[term.site_id]
        costs = self.ctx.costs
        counters = self.ctx.counters
        counters.suspends += 1

        saved = tuple((name, env.get(name)) for name in site.save_set)
        is_static = site.is_static and not saved
        if is_static:
            counters.static_cont_uses += 1
        else:
            counters.cont_allocs += 1
            self.ctx.charge(costs.cont_alloc)
            self.ctx.charge(costs.save_restore_word * len(saved))

        record = make_continuation(
            handler.qualified_name, site.site_id, saved, is_static)
        env[site.cont_name] = record
        obs = self.ctx.obs
        if obs is not None:
            obs.suspend(self.ctx.node, self.ctx.current_message.block,
                        handler.qualified_name, site.site_id, is_static,
                        tuple(name for name, _value in saved),
                        site.target.name, getattr(self.ctx, "now", 0))
        args = tuple(self._eval(handler, env, a) for a in site.target.args)
        self.ctx.set_state(site.target.name, args)

    # -- expression evaluation --------------------------------------------------

    def _eval(self, handler: HandlerIR, env: dict, expr: ast.Expr):
        if isinstance(expr, ast.IntLit):
            return expr.value
        if isinstance(expr, ast.BoolLit):
            return expr.value
        if isinstance(expr, ast.StrLit):
            return expr.value
        if isinstance(expr, ast.NameRef):
            return self._eval_name(handler, env, expr)
        if isinstance(expr, ast.CallExpr):
            return self._exec_call(handler, env, expr.name, expr.args)
        if isinstance(expr, ast.StateExpr):
            args = tuple(self._eval(handler, env, a) for a in expr.args)
            return StateValue(expr.name, args)
        if isinstance(expr, ast.BinOp):
            return self._eval_binop(handler, env, expr)
        if isinstance(expr, ast.UnOp):
            value = self._eval(handler, env, expr.operand)
            return (not value) if expr.op == "Not" else -value
        raise RuntimeProtocolError(f"cannot evaluate {expr!r}")

    def _eval_name(self, handler: HandlerIR, env: dict, expr: ast.NameRef):
        name = expr.name
        if name in env:
            return env[name]
        if name in self.protocol.info_vars:
            return self.ctx.get_info(name)
        if name in self.protocol.consts:
            return self.protocol.consts[name]
        if name == "MyNode":
            return self.ctx.node
        if name == "Nobody":
            return NOBODY
        if name == "MessageTag":
            return self.ctx.current_message.tag
        if name.startswith("Blk_"):
            return name
        if name in self.protocol.messages:
            return name
        if name in self.protocol.checked.consts:
            # A module-declared abstract constant: its value comes from
            # the support registry, like support routines do.
            return self.ctx.support_const(name)
        self.ctx.error(
            f"undefined name {name!r} at runtime in {handler.qualified_name}")
        return None

    def _eval_binop(self, handler: HandlerIR, env: dict, expr: ast.BinOp):
        left = self._eval(handler, env, expr.left)
        op = expr.op
        # Short-circuit the logical operators.
        if op == "And":
            return bool(left) and bool(
                self._eval(handler, env, expr.right))
        if op == "Or":
            return bool(left) or bool(
                self._eval(handler, env, expr.right))
        right = self._eval(handler, env, expr.right)
        if op == "+":
            return left + right
        if op == "-":
            return left - right
        if op == "*":
            return left * right
        if op == "/":
            if right == 0:
                self.ctx.error("division by zero in protocol code")
                return 0
            return int(left / right)
        if op == "%":
            if right == 0:
                self.ctx.error("modulo by zero in protocol code")
                return 0
            return left % right
        if op == "=":
            return left == right
        if op == "!=":
            return left != right
        if op == "<":
            return left < right
        if op == "<=":
            return left <= right
        if op == ">":
            return left > right
        if op == ">=":
            return left >= right
        raise RuntimeProtocolError(f"unknown operator {op!r}")
