"""The execution context interface between handlers and their host.

Compiled handlers run identically under the multiprocessor simulator
(:mod:`repro.tempest`) and the model checker (:mod:`repro.verify`); all
environment-specific behaviour -- message transmission, access control,
block storage, cost accounting -- goes through a
:class:`ProtocolContext`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.lang.errors import RuntimeProtocolError

# Sentinel bound to a handler's INFO parameter.  Expressions only pass it
# to builtins (SetState, Enqueue, sharer operations), which operate on
# the context's current block instead.
INFO_HANDLE = "<info>"


@dataclass(frozen=True)
class Message:
    """A protocol message in flight (or being handled).

    ``data`` carries block contents for SendBlk-style transfers; control
    messages leave it None.  ``payload`` is a tuple of simple values.

    ``seq`` is a machine-wide wire sequence number, stamped only when
    fault injection or recovery is enabled (``None`` otherwise, so
    zero-fault runs are untouched).  A retried message keeps its
    original ``seq``; the receiving node's dedup layer uses
    ``(src, seq)`` to absorb duplicates.  It is identity metadata, not
    protocol state: excluded from repr, checker fingerprints, and the
    JSON state codec.
    """

    tag: str
    block: int
    src: int
    dst: int
    payload: tuple = ()
    data: Optional[tuple] = None
    seq: Optional[int] = None

    def __hash__(self):
        # Messages sit inside channel tuples and deferred queues, so the
        # checker hashes each one many times (visited-set inserts, intern
        # tables, fingerprint caches).  Same basis as the dataclass-
        # generated hash, computed once.
        cached = self.__dict__.get("_hash")
        if cached is None:
            cached = hash((self.tag, self.block, self.src, self.dst,
                           self.payload, self.data, self.seq))
            object.__setattr__(self, "_hash", cached)
        return cached

    def __repr__(self) -> str:
        parts = [f"{self.tag} blk={self.block} {self.src}->{self.dst}"]
        if self.payload:
            parts.append(f"payload={self.payload}")
        if self.data is not None:
            parts.append("+data")
        return f"<msg {' '.join(parts)}>"


@dataclass
class CostModel:
    """Cycle charges for protocol processing.

    Calibrated so that the relative overheads of Teapot-compiled versus
    hand-written-state-machine protocols land in the bands Table 1 and
    Table 2 report.  Absolute values are arbitrary "cycles".
    """

    dispatch: int = 60          # taking a protocol event / message
    indirect_call: int = 25     # extra indirection of Teapot handlers (§6)
    statement: int = 6          # one executed IR operation
    send: int = 90              # injecting a control message
    send_data: int = 140        # injecting a message carrying block data
    msg_latency: int = 220      # network transit time
    access_change: int = 40     # changing a block's access tag
    recv_data: int = 80         # installing arriving block data
    cont_alloc: int = 45        # heap-allocating a continuation record
    cont_free: int = 20         # freeing one
    save_restore_word: int = 6  # saving or restoring one captured variable
    resume: int = 20            # indirect call through a continuation
    resume_direct: int = 4      # inlined (constant-continuation) resume
    queue_alloc: int = 35       # queueing a deferred message
    queue_free: int = 12        # redelivering one
    fault_trap: int = 120       # access-fault trap into the protocol
    wakeup: int = 60            # restarting the faulted thread
    read_hit: int = 2           # loads/stores that hit locally
    write_hit: int = 2


ZERO_COSTS = CostModel(**{f: 0 for f in CostModel.__dataclass_fields__})


@dataclass
class RuntimeCounters:
    """Event counts shared by all contexts (Table 1's Allocs column)."""

    cont_allocs: int = 0
    cont_frees: int = 0
    static_cont_uses: int = 0
    queue_allocs: int = 0
    queue_frees: int = 0
    messages_sent: int = 0
    data_messages_sent: int = 0
    handler_dispatches: int = 0
    resumes: int = 0
    direct_resumes: int = 0
    suspends: int = 0
    nacks: int = 0
    errors: int = 0
    timeouts: int = 0           # watchdog expiries on a blocked fault
    retries: int = 0            # request messages re-injected by retries
    dups_absorbed: int = 0      # deliveries absorbed by the dedup layer

    @property
    def alloc_records(self) -> int:
        """Continuation + queue records allocated (paper's Allocs column)."""
        return self.cont_allocs + self.queue_allocs

    def merge(self, other: "RuntimeCounters") -> None:
        for name in self.__dataclass_fields__:
            setattr(self, name, getattr(self, name) + getattr(other, name))


class ProtocolContext:
    """Abstract host interface for one handler activation.

    Concrete implementations: the simulator node
    (:class:`repro.tempest.node.NodeContext`) and the model checker
    (:class:`repro.verify.model.CheckerContext`).

    A context is positioned at one (node, block) pair while a handler
    runs; the interpreter reads the current message from
    ``current_message``.
    """

    # -- identity ------------------------------------------------------------

    @property
    def node(self) -> int:
        raise NotImplementedError

    @property
    def current_message(self) -> Message:
        raise NotImplementedError

    def home_node(self, block: int) -> int:
        raise NotImplementedError

    # -- block record --------------------------------------------------------

    def get_state(self) -> tuple[str, tuple]:
        """Current (state name, state argument tuple) of the block."""
        raise NotImplementedError

    def set_state(self, state_name: str, args: tuple) -> None:
        raise NotImplementedError

    def get_info(self, name: str):
        raise NotImplementedError

    def set_info(self, name: str, value) -> None:
        raise NotImplementedError

    # -- Tempest mechanisms ----------------------------------------------------

    def send(self, dst: int, tag: str, block: int, payload: tuple,
             with_data: bool) -> None:
        raise NotImplementedError

    def access_change(self, block: int, mode: str) -> None:
        raise NotImplementedError

    def recv_data(self, block: int, mode: str) -> None:
        raise NotImplementedError

    def read_word(self, block: int, addr: int):
        raise NotImplementedError

    def write_word(self, block: int, addr: int, value) -> None:
        raise NotImplementedError

    def enqueue_current(self) -> None:
        """Defer the current message until the block changes state."""
        raise NotImplementedError

    def retry_queued(self, block: int) -> None:
        """Force redelivery of the block's deferred queue after this
        action, even though the state did not change (used by handlers
        that consume the event a queued message was waiting for)."""
        raise NotImplementedError

    def wakeup(self, block: int) -> None:
        raise NotImplementedError

    def error(self, message: str) -> None:
        """Protocol error.  Default: raise; the checker records instead."""
        raise RuntimeProtocolError(message)

    def debug_print(self, values: list) -> None:
        """Print statement output; hosts may capture or discard it."""

    # -- support registry ------------------------------------------------------

    def support_call(self, name: str, args: list):
        """Invoke a module-declared support routine."""
        raise RuntimeProtocolError(
            f"no support routine registered for {name!r}")

    def support_const(self, name: str):
        """Resolve a module-declared abstract constant."""
        raise RuntimeProtocolError(
            f"no value registered for abstract constant {name!r}")

    # -- accounting -------------------------------------------------------------

    counters: RuntimeCounters
    costs: CostModel = ZERO_COSTS

    # Observability hook (a repro.obs.Observer), or None when tracing and
    # metrics are off.  Instrumented code guards every use with a single
    # ``obs is None`` test, so the default path stays uninstrumented.
    obs = None

    def charge(self, cycles: int) -> None:
        """Account ``cycles`` of protocol processing time (may be a no-op)."""
