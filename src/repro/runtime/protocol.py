"""The compiled form of a Teapot protocol.

A :class:`CompiledProtocol` is what every consumer works from: the
simulator and model checker execute its handler CFGs through the
interpreter, and the C / Mur-phi / Python back ends pretty-print it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum, unique
from typing import Optional

from repro.lang.builtins import (
    T_ADDR,
    T_BOOL,
    T_CONT,
    T_INT,
    T_MSGTAG,
    T_NODE,
    T_SHARERS,
    T_VALUE,
)
from repro.lang.errors import CompileError
from repro.lang.typecheck import CheckedProgram
from repro.compiler.ir import HandlerIR

# The distinguished "no node" value bound to the builtin constant Nobody.
NOBODY = -1


@dataclass(frozen=True)
class StateValue:
    """A first-class state: the runtime value of ``Name{args}``."""

    name: str
    args: tuple

    def __repr__(self) -> str:
        inner = ", ".join(repr(a) for a in self.args)
        return f"{self.name}{{{inner}}}"


@unique
class OptLevel(Enum):
    """Optimisation levels, mirroring the paper's measurement columns.

    - ``O0``: naive splitting; every frame variable is saved (Figure 10).
    - ``O1``: live-variable analysis only -- the paper's "Teapot
      Unoptimized" column.
    - ``O2``: liveness plus the constant-continuation optimisation --
      the paper's "Teapot Optimized" column.
    """

    O0 = 0
    O1 = 1
    O2 = 2


@unique
class Flavor(Enum):
    """Cost profile of the generated code.

    ``TEAPOT`` models Teapot-generated C: handlers are invoked through an
    extra level of indirect function call (Section 6 attributes part of
    the residual overhead to exactly this).  ``BASELINE`` models the
    hand-written state-machine C code the paper compares against.
    """

    TEAPOT = "teapot"
    BASELINE = "baseline"


@dataclass
class CompileStats:
    """Whole-protocol statistics reported by the compiler."""

    n_states: int = 0
    n_handlers: int = 0
    n_suspend_sites: int = 0
    n_static_sites: int = 0
    n_inlined_resumes: int = 0
    n_transient_states: int = 0


@dataclass
class CompiledStateInfo:
    """One protocol state with its compiled handlers."""

    name: str
    params: list[tuple[str, str]]        # (name, type)
    transient: bool
    handlers: dict[str, HandlerIR]
    default: Optional[HandlerIR] = None

    @property
    def is_subroutine(self) -> bool:
        return any(t == T_CONT for _n, t in self.params)

    def dispatch(self, message: str) -> Optional[HandlerIR]:
        """The handler that receives ``message`` in this state."""
        handler = self.handlers.get(message)
        if handler is not None:
            return handler
        return self.default


def default_value_for(type_name: str):
    """Initial value of an info variable or local of ``type_name``."""
    if type_name in (T_INT, T_VALUE, T_ADDR):
        return 0
    if type_name == T_BOOL:
        return False
    if type_name == T_NODE:
        return NOBODY
    if type_name == T_SHARERS:
        return frozenset()
    if type_name == T_MSGTAG:
        return None
    if type_name == T_CONT:
        return None
    # Abstract module types default to None; support code must set them.
    return None


@dataclass
class CompiledProtocol:
    """A fully compiled protocol, ready to execute or pretty-print."""

    name: str
    checked: CheckedProgram
    states: dict[str, CompiledStateInfo]
    handlers: dict[tuple[str, str], HandlerIR]
    messages: dict[str, tuple[str, ...]]
    info_vars: dict[str, str]
    consts: dict[str, object]
    opt_level: OptLevel
    flavor: Flavor
    initial_home_state: str
    initial_cache_state: str
    stats: CompileStats = field(default_factory=CompileStats)

    def state(self, name: str) -> CompiledStateInfo:
        info = self.states.get(name)
        if info is None:
            raise CompileError(f"protocol {self.name} has no state {name!r}")
        return info

    def initial_info(self) -> dict[str, object]:
        """A fresh per-block info record with default field values."""
        return {
            name: default_value_for(type_name)
            for name, type_name in self.info_vars.items()
        }

    def handler(self, state_name: str, message: str) -> Optional[HandlerIR]:
        return self.state(state_name).dispatch(message)

    def suspend_site(self, qualified_handler: str, site_id: int):
        """Look up a suspend site by the handler's qualified name."""
        state_name, message_name = qualified_handler.split(".", 1)
        handler = self.handlers[(state_name, message_name)]
        return handler, handler.suspend_sites[site_id]

    @property
    def subroutine_states(self) -> list[str]:
        return [s.name for s in self.states.values() if s.is_subroutine]

    def describe(self) -> str:
        """A short human-readable summary (used by the CLI)."""
        lines = [
            f"protocol {self.name} "
            f"(opt={self.opt_level.name}, flavor={self.flavor.value})",
            f"  states: {len(self.states)} "
            f"({self.stats.n_transient_states} transient)",
            f"  handlers: {self.stats.n_handlers}",
            f"  messages: {len(self.messages)}",
            f"  suspend sites: {self.stats.n_suspend_sites} "
            f"({self.stats.n_static_sites} static)",
            f"  inlined resumes: {self.stats.n_inlined_resumes}",
        ]
        return "\n".join(lines)


def resolve_initial_states(
    states: dict[str, CompiledStateInfo],
    initial_states: Optional[tuple[str, str]],
) -> tuple[str, str]:
    """Determine the (home, cache) initial state names.

    If not given explicitly, look for the conventional names used by all
    protocols in this repository (``Home_Idle`` / ``Cache_Invalid``) and
    close variants.
    """
    if initial_states is not None:
        home, cache = initial_states
        for name in (home, cache):
            if name not in states:
                raise CompileError(
                    f"initial state {name!r} is not a state of the protocol")
        return home, cache

    home_candidates = [n for n in states if n in ("Home_Idle", "HomeIdle")]
    cache_candidates = [
        n for n in states if n in ("Cache_Invalid", "Cache_Inv", "CacheInvalid")
    ]
    if not home_candidates or not cache_candidates:
        raise CompileError(
            "cannot infer initial states: define Home_Idle and "
            "Cache_Invalid, or pass initial_states=(home, cache) "
            "to compile_protocol",
        )
    return home_candidates[0], cache_candidates[0]
