"""Executable semantics of the prelude routines.

Each entry receives the running :class:`~repro.runtime.exec.HandlerInterpreter`
and the already-evaluated argument values.  ``SetState`` and ``Suspend``
are not here: state constructors need unevaluated access to the
environment, so the interpreter handles them directly.
"""

from __future__ import annotations

from repro.lang.builtins import T_SHARERS
from repro.runtime.context import INFO_HANDLE
from repro.runtime.protocol import NOBODY, StateValue


def _sharer_var(interp) -> str:
    """Name of the protocol's (unique) SharerList info variable."""
    names = [
        name
        for name, type_name in interp.protocol.info_vars.items()
        if type_name == T_SHARERS
    ]
    if len(names) != 1:
        interp.ctx.error(
            "sharer-set builtins need exactly one SharerList protocol "
            f"variable; {interp.protocol.name} has {len(names)}")
    return names[0]


def _get_sharers(interp) -> frozenset:
    return interp.ctx.get_info(_sharer_var(interp))


def _set_sharers(interp, sharers: frozenset) -> None:
    interp.ctx.set_info(_sharer_var(interp), sharers)


# -- messaging ---------------------------------------------------------------


def bi_send(interp, args):
    dst, tag, block, *payload = args
    interp.ctx.send(int(dst), tag, block, tuple(payload), with_data=False)


def bi_send_blk(interp, args):
    dst, tag, block, *payload = args
    interp.ctx.send(int(dst), tag, block, tuple(payload), with_data=True)


def bi_nack(interp, args):
    dst, tag, block = args
    ctx = interp.ctx
    ctx.counters.nacks += 1
    obs = ctx.obs
    if obs is not None:
        obs.nack(ctx.node, block, tag, int(dst), getattr(ctx, "now", 0))
    ctx.send(int(dst), tag, block, (), with_data=False)


# -- block bookkeeping ---------------------------------------------------------


def bi_set_state(interp, args):
    _info, state_value = args
    if not isinstance(state_value, StateValue):
        interp.ctx.error(
            f"SetState expects a state constructor, got {state_value!r}")
        return
    interp.ctx.set_state(state_value.name, state_value.args)


def bi_access_change(interp, args):
    block, mode = args
    interp.ctx.access_change(block, mode)


def bi_recv_data(interp, args):
    block, mode = args
    interp.ctx.recv_data(block, mode)


def bi_read_word(interp, args):
    block, addr = args
    return interp.ctx.read_word(block, int(addr))


def bi_write_word(interp, args):
    block, addr, value = args
    interp.ctx.write_word(block, int(addr), value)


# -- deferral and control ---------------------------------------------------


def bi_enqueue(interp, args):
    # The arguments (MessageTag, id, info, src) are conventional; the
    # queued message is always the one being handled.
    interp.ctx.enqueue_current()


def bi_retry_queued(interp, args):
    # The conventional argument is the info handle; the context knows
    # which block the action is positioned at.
    interp.ctx.retry_queued(interp.ctx.current_message.block)


def bi_wakeup(interp, args):
    (block,) = args
    interp.ctx.wakeup(block)


def bi_error(interp, args):
    fmt, *rest = args
    text = str(fmt)
    for value in rest:
        text = text.replace("%s", str(value), 1)
    interp.ctx.error(text)


# -- queries -------------------------------------------------------------------


def bi_home_node(interp, args):
    (block,) = args
    return interp.ctx.home_node(block)


def bi_is_home(interp, args):
    (block,) = args
    return interp.ctx.home_node(block) == interp.ctx.node


def bi_msg_to_str(interp, args):
    (tag,) = args
    return str(tag)


def bi_node_to_int(interp, args):
    (node,) = args
    return int(node)


def bi_int_to_node(interp, args):
    (value,) = args
    return int(value)


def bi_msg_word(interp, args):
    (index,) = args
    payload = interp.ctx.current_message.payload
    if not (0 <= int(index) < len(payload)):
        interp.ctx.error(
            f"MsgWord({index}) out of range for payload {payload!r}")
        return 0
    return payload[int(index)]


# -- sharer sets ----------------------------------------------------------------


def bi_is_empty_sharers(interp, args):
    return len(_get_sharers(interp)) == 0


def bi_count_sharers(interp, args):
    return len(_get_sharers(interp))


def bi_has_sharer(interp, args):
    _info, node = args
    return int(node) in _get_sharers(interp)


def bi_pop_sharer(interp, args):
    sharers = _get_sharers(interp)
    if not sharers:
        interp.ctx.error("PopSharer on an empty sharer set")
        return NOBODY
    # Deterministic choice keeps simulation and model checking stable.
    node = min(sharers)
    _set_sharers(interp, sharers - {node})
    return node


def bi_nth_sharer(interp, args):
    _info, index = args
    sharers = sorted(_get_sharers(interp))
    if not (0 <= int(index) < len(sharers)):
        interp.ctx.error(
            f"NthSharer({index}) out of range for {len(sharers)} sharers")
        return NOBODY
    return sharers[int(index)]


def bi_add_sharer(interp, args):
    _info, node = args
    _set_sharers(interp, _get_sharers(interp) | {int(node)})


def bi_del_sharer(interp, args):
    _info, node = args
    _set_sharers(interp, _get_sharers(interp) - {int(node)})


def bi_clear_sharers(interp, args):
    _set_sharers(interp, frozenset())


# Routines whose first argument is the INFO handle; the interpreter has
# already positioned the context at the right block, so the handle itself
# carries no information.
_ = INFO_HANDLE

BUILTIN_IMPLS = {
    "Send": bi_send,
    "SendBlk": bi_send_blk,
    "Nack": bi_nack,
    "SetState": bi_set_state,
    "AccessChange": bi_access_change,
    "RecvData": bi_recv_data,
    "ReadWord": bi_read_word,
    "WriteWord": bi_write_word,
    "Enqueue": bi_enqueue,
    "RetryQueued": bi_retry_queued,
    "WakeUp": bi_wakeup,
    "Error": bi_error,
    "HomeNode": bi_home_node,
    "IsHome": bi_is_home,
    "Msg_To_Str": bi_msg_to_str,
    "NodeToInt": bi_node_to_int,
    "IntToNode": bi_int_to_node,
    "MsgWord": bi_msg_word,
    "IsEmptySharers": bi_is_empty_sharers,
    "CountSharers": bi_count_sharers,
    "HasSharer": bi_has_sharer,
    "PopSharer": bi_pop_sharer,
    "NthSharer": bi_nth_sharer,
    "AddSharer": bi_add_sharer,
    "DelSharer": bi_del_sharer,
    "ClearSharers": bi_clear_sharers,
}

# Per-builtin extra cycle charges, applied on top of the per-statement
# cost by the interpreter (attribute names into CostModel).
BUILTIN_COSTS = {
    "Send": "send",
    "SendBlk": "send_data",
    "Nack": "send",
    "AccessChange": "access_change",
    "RecvData": "recv_data",
    "Enqueue": "queue_alloc",
    "WakeUp": "wakeup",
}
