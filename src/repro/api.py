"""The typed programmatic facade: compile, check, simulate.

Everything the ``teapot`` CLI can do is available here as three
functions over three frozen option records::

    from repro.api import CheckOptions, check, compile_protocol, simulate

    protocol = compile_protocol("stache")
    result = check(protocol, CheckOptions(nodes=2, reorder=1))
    row = simulate("stache", workload="gauss")

``compile_protocol`` accepts a registered protocol name, a path to a
``.tea`` file, raw Teapot source text (anything containing a newline),
or an already-compiled :class:`~repro.runtime.protocol.CompiledProtocol`
(returned unchanged), so the other entry points compose: ``check`` and
``simulate`` take the same ``target`` union.

``check`` dispatches on :attr:`CheckOptions.workers`: ``0`` (the
default) runs the in-process serial
:class:`~repro.verify.checker.ModelChecker`; ``>= 1`` runs the sharded
:class:`~repro.verify.parallel.ParallelChecker` across that many worker
processes.  Both return the same
:class:`~repro.verify.checker.CheckResult`.

The option records are frozen on purpose: a configuration is a value
you can build once, share, and trust not to drift mid-run.  Derive
variants with :func:`dataclasses.replace`.

This module replaced ad-hoc imports of ``Machine``/``ModelChecker``
from the top-level ``repro`` package; those names still work but emit
:class:`DeprecationWarning` (see DESIGN.md for the migration map).
"""

from __future__ import annotations

import sys
from dataclasses import dataclass
from typing import IO, Optional, Union

from repro.compiler.pipeline import compile_source
from repro.faults import FaultBudget, FaultPlan, FaultRule, RecoveryConfig
from repro.protocols import PROTOCOLS, compile_named_protocol
from repro.runtime.protocol import CompiledProtocol, Flavor, OptLevel
from repro.tempest.machine import Machine, MachineConfig
from repro.tempest.network import NetworkConfig
from repro.tempest.stats import MachineStats
from repro.verify.checker import CheckResult, ModelChecker
from repro.verify.events import EventGenerator, events_for_protocol
from repro.verify.invariants import standard_invariants
from repro.verify.parallel import ParallelChecker

Target = Union[str, CompiledProtocol]


@dataclass(frozen=True)
class CompileOptions:
    """How to turn a target into a :class:`CompiledProtocol`."""

    opt_level: OptLevel = OptLevel.O2
    # None = the registry's flavor for named protocols, TEAPOT otherwise.
    flavor: Optional[Flavor] = None
    # Initial (cache, home) state names for raw source without them.
    initial_states: Optional[tuple[str, str]] = None
    filename: str = "<string>"


@dataclass(frozen=True)
class FaultOptions:
    """Fault injection and recovery for :func:`simulate`.

    Builds a rate-based :class:`~repro.faults.FaultPlan` (every message
    is independently dropped/duplicated with the given probability,
    from ``seed``) unless ``plan`` points at a saved JSON plan -- e.g.
    one exported from a checker counterexample via
    ``Violation.to_fault_plan().save(path)`` -- in which case the plan
    file wins and the rates are ignored.  ``watchdog=True`` layers the
    timeout/retry/dedup recovery protocol on top (see
    docs/ROBUSTNESS.md); without it a dropped message typically
    deadlocks the run, by design.
    """

    drop: float = 0.0          # per-message drop probability
    dup: float = 0.0           # per-message duplication probability
    seed: int = 0              # fault RNG seed (independent of --seed)
    max_faults: Optional[int] = None
    plan: Optional[str] = None  # path to a teapot-fault-plan JSON file
    watchdog: bool = False     # enable the timeout/retry recovery layer
    timeout: int = 4000        # cycles before the first retry
    backoff: float = 2.0       # timeout multiplier per attempt
    retries: int = 5           # retry attempts before giving up

    def build_plan(self) -> Optional[FaultPlan]:
        if self.plan is not None:
            return FaultPlan.load(self.plan)
        rules = []
        if self.drop:
            rules.append(FaultRule(action="drop", rate=self.drop))
        if self.dup:
            rules.append(FaultRule(action="dup", rate=self.dup))
        if not rules and self.max_faults is None:
            return None
        return FaultPlan(rules=tuple(rules), seed=self.seed,
                         max_faults=self.max_faults)

    def build_recovery(self) -> Optional[RecoveryConfig]:
        if not self.watchdog:
            return None
        return RecoveryConfig(timeout=self.timeout, backoff=self.backoff,
                              max_retries=self.retries)


@dataclass(frozen=True)
class CheckOptions:
    """Model-checking configuration (one Table 3 cell)."""

    nodes: int = 2
    addresses: int = 1
    reorder: int = 0
    max_states: int = 2_000_000
    # 0 = serial in-process checker; >= 1 = that many worker processes.
    workers: int = 0
    # Liveness (starvation) checking; serial-only, needs the full graph.
    liveness: bool = False
    # None = infer from the protocol (buffered-write relaxes coherence).
    coherent: Optional[bool] = None
    channel_cap: int = 4
    # Serial hash compaction: key the visited set by 64-bit fingerprints.
    # The parallel checker always fingerprints.
    fingerprints: bool = False
    # Successor engine: "fast" (mutate-and-undo journals, interned
    # states, memoized action effects) or "legacy" (the original
    # freeze-per-successor path, kept as a differential oracle).
    engine: str = "fast"
    progress: bool = False
    progress_every: int = 10_000
    progress_stream: Optional[IO] = None
    # Parallel only: dump a resumable JSON checkpoint on truncation or
    # interrupt / continue from one.
    checkpoint_out: Optional[str] = None
    resume: Optional[str] = None
    # Exploration profiling (repro.obs.profile): True arms a profiler
    # and attaches the CheckProfile to CheckResult.profile; False is
    # observably free (the checkers run their unprofiled code paths).
    profile: bool = False
    # Extra timeline samples every this many states inside large layers.
    profile_sample_every: int = 2000
    # State-space atlas recording (repro.verify.atlas): True attaches a
    # StateAtlas to CheckResult.atlas -- every explored transition plus
    # per-state annotations (depth, protocol-state vector, occupancy,
    # symmetry-orbit key).  Same contract as profile: False is
    # observably free.
    atlas: bool = False
    # Bottom-k sketch caps: the atlas is exact below these and a
    # uniform digest-keyed sample (with logged truncation) above.
    atlas_state_cap: int = 100_000
    atlas_edge_cap: int = 250_000
    events: Optional[EventGenerator] = None
    # Fault-bounded exploration: in every state the checker may also
    # drop or duplicate any in-flight message, up to this per-path
    # budget.  None = classic fault-free checking.
    faults: Optional[FaultBudget] = None
    compile: CompileOptions = CompileOptions()


@dataclass(frozen=True)
class SimOptions:
    """Simulator configuration (Table 1/2 runs)."""

    nodes: int = 16
    # None = the workload's conventional block count.
    blocks: Optional[int] = None
    # Network: seed the delay RNG (None = the default seed, 12345 --
    # every zero-fault run at the same seed/jitter is byte-identical,
    # which the golden-trace tests enforce) and allow up to ``jitter``
    # cycles of random extra latency.  jitter > 0 drops per-channel
    # FIFO unless ``fifo`` pins it, so reordering is reproducible from
    # the seed alone.
    seed: Optional[int] = None
    jitter: int = 0
    fifo: Optional[bool] = None
    trace: Optional[str] = None
    trace_format: str = "jsonl"
    metrics: Optional[str] = None
    # Fault injection and the timeout/retry recovery layer; None keeps
    # the network perfectly reliable (and the run byte-identical to
    # builds without the fault subsystem).
    faults: Optional[FaultOptions] = None
    compile: CompileOptions = CompileOptions()


@dataclass
class SimulateResult:
    """Outcome of :func:`simulate`."""

    protocol_name: str
    workload: Optional[str]
    cycles: int
    stats: MachineStats
    # The machine itself, for inspection beyond the aggregate stats
    # (e.g. per-node observed values in the examples).
    machine: Optional[Machine] = None
    # The Table 1/2 row, when a registered workload was run.
    table_row: Optional[object] = None
    # The fault plan the run executed under (its ledger records every
    # injected fault); None for reliable-network runs.
    fault_plan: Optional[FaultPlan] = None

    @property
    def fault_time_fraction(self) -> float:
        return self.stats.fault_time_fraction


def _registry_label(target: Target) -> str:
    """The name used for events/invariant inference (CLI semantics)."""
    if isinstance(target, str):
        return target
    return target.name


def compile_protocol(target: Target,
                     options: CompileOptions = CompileOptions(),
                     ) -> CompiledProtocol:
    """Compile a registered name, ``.tea`` path, or source text.

    Already-compiled protocols pass through unchanged.  A string with a
    newline is treated as source text; otherwise it must be a registered
    protocol name (see ``teapot list``) or a path to a ``.tea`` file.
    """
    if isinstance(target, CompiledProtocol):
        return target
    if not isinstance(target, str):
        raise TypeError(
            f"target must be a protocol name, .tea path, source text, or "
            f"CompiledProtocol, not {type(target).__name__}")
    if "\n" in target:
        return compile_source(
            target, opt_level=options.opt_level,
            flavor=options.flavor or Flavor.TEAPOT,
            initial_states=options.initial_states,
            filename=options.filename)
    if target in PROTOCOLS:
        return compile_named_protocol(
            target, opt_level=options.opt_level, flavor=options.flavor)
    with open(target) as handle:
        source = handle.read()
    return compile_source(
        source, opt_level=options.opt_level,
        flavor=options.flavor or Flavor.TEAPOT,
        initial_states=options.initial_states,
        filename=target)


def check(target: Target,
          options: CheckOptions = CheckOptions()) -> CheckResult:
    """Model-check a protocol; serial or parallel per ``options.workers``."""
    protocol = compile_protocol(target, options.compile)
    label = _registry_label(target)
    events = options.events
    if events is None:
        events = events_for_protocol(label if label in PROTOCOLS
                                     else "stache")
    coherent = options.coherent
    if coherent is None:
        coherent = not (label.lower().startswith("buffered")
                        or protocol.name.lower().startswith("buffered"))
    invariants = standard_invariants(coherent=coherent)
    progress_stream = options.progress_stream
    if progress_stream is None and options.progress:
        progress_stream = sys.stderr
    profiler = None
    if options.profile:
        from repro.obs.profile import CheckProfiler

        profiler = CheckProfiler(sample_every=options.profile_sample_every)
    atlas = None
    if options.atlas:
        from repro.verify.atlas import AtlasRecorder

        atlas = AtlasRecorder(state_cap=options.atlas_state_cap,
                              edge_cap=options.atlas_edge_cap)

    if options.workers < 0:
        raise ValueError("CheckOptions.workers must be >= 0")
    if options.workers == 0:
        if options.checkpoint_out or options.resume:
            raise ValueError(
                "checkpoint/resume requires the parallel checker "
                "(CheckOptions.workers >= 1)")
        return ModelChecker(
            protocol,
            n_nodes=options.nodes,
            n_blocks=options.addresses,
            reorder_bound=options.reorder,
            events=events,
            invariants=invariants,
            max_states=options.max_states,
            channel_cap=options.channel_cap,
            check_progress=options.liveness,
            progress_stream=progress_stream,
            progress_every=options.progress_every,
            fingerprint_states=options.fingerprints,
            fault_budget=options.faults,
            profiler=profiler,
            atlas=atlas,
            engine=options.engine,
        ).run()

    if options.liveness:
        raise ValueError(
            "liveness checking needs the full state graph and is "
            "serial-only (CheckOptions.workers must be 0)")
    return ParallelChecker(
        protocol,
        n_nodes=options.nodes,
        n_blocks=options.addresses,
        reorder_bound=options.reorder,
        events=events,
        invariants=invariants,
        workers=options.workers,
        max_states=options.max_states,
        channel_cap=options.channel_cap,
        progress_stream=progress_stream,
        progress_every=options.progress_every,
        checkpoint_out=options.checkpoint_out,
        resume=options.resume,
        fault_budget=options.faults,
        profiler=profiler,
        atlas=atlas,
        engine=options.engine,
    ).run()


def simulate(target: Target,
             workload: Optional[str] = None,
             programs: Optional[list] = None,
             options: SimOptions = SimOptions()) -> SimulateResult:
    """Simulate a registered workload, or caller-supplied programs.

    Exactly one of ``workload`` (a name from
    :data:`repro.workloads.STACHE_WORKLOADS` /
    :data:`~repro.workloads.LCM_WORKLOADS`) and ``programs`` (a list of
    per-node thread programs, one per node) must be given.
    """
    from repro.workloads import LCM_WORKLOADS, STACHE_WORKLOADS, run_workload

    if (workload is None) == (programs is None):
        raise ValueError("pass exactly one of workload= or programs=")
    protocol = compile_protocol(target, options.compile)

    n_nodes = options.nodes
    if workload is not None:
        table = {**STACHE_WORKLOADS, **LCM_WORKLOADS}
        if workload not in table:
            raise ValueError(
                f"unknown workload {workload!r}; known: "
                + ", ".join(sorted(table)))
        factory, blocks_fn = table[workload]
        programs = factory(n_nodes=n_nodes)
        n_blocks = options.blocks or blocks_fn(n_nodes)
    else:
        n_nodes = len(programs)
        n_blocks = options.blocks or 64

    network = NetworkConfig(
        jitter=options.jitter,
        fifo=(options.jitter == 0) if options.fifo is None else options.fifo,
        seed=options.seed if options.seed is not None else 12345,
    )
    observer = None
    registry = None
    if options.trace or options.metrics:
        from repro.obs import MetricsRegistry, Observer, open_sink

        if options.metrics:
            registry = MetricsRegistry(protocol.name)
        observer = Observer(open_sink(options.trace, options.trace_format),
                            registry)
    fault_plan = None
    recovery = None
    if options.faults is not None:
        fault_plan = options.faults.build_plan()
        recovery = options.faults.build_recovery()
    config = MachineConfig(n_nodes=n_nodes, n_blocks=n_blocks,
                           network=network, observer=observer,
                           faults=fault_plan, recovery=recovery)
    try:
        if workload is not None:
            row = run_workload(protocol, workload, programs, n_blocks,
                               config=config)
            result = SimulateResult(
                protocol_name=protocol.name, workload=workload,
                cycles=row.cycles, stats=row.stats, table_row=row,
                fault_plan=fault_plan)
        else:
            machine = Machine(protocol, programs, config)
            sim = machine.run()
            result = SimulateResult(
                protocol_name=protocol.name, workload=None,
                cycles=sim.cycles, stats=sim.stats, machine=machine,
                fault_plan=fault_plan)
    finally:
        if observer is not None:
            observer.close()
    if registry is not None:
        registry.save(options.metrics)
    return result
