"""The typed programmatic facade: compile, check, simulate.

Everything the ``teapot`` CLI can do is available here as three
functions over three frozen option records::

    from repro.api import CheckOptions, check, compile_protocol, simulate

    protocol = compile_protocol("stache")
    result = check(protocol, CheckOptions(nodes=2, reorder=1))
    row = simulate("stache", workload="gauss")

``compile_protocol`` accepts a registered protocol name, a path to a
``.tea`` file, raw Teapot source text (anything containing a newline),
or an already-compiled :class:`~repro.runtime.protocol.CompiledProtocol`
(returned unchanged), so the other entry points compose: ``check`` and
``simulate`` take the same ``target`` union.

``check`` dispatches on :attr:`CheckOptions.workers`: ``0`` (the
default) runs the in-process serial
:class:`~repro.verify.checker.ModelChecker`; ``>= 1`` runs the sharded
:class:`~repro.verify.parallel.ParallelChecker` across that many worker
processes.  Both return the same
:class:`~repro.verify.checker.CheckResult`.

The option records are frozen on purpose: a configuration is a value
you can build once, share, and trust not to drift mid-run.  Derive
variants with :func:`dataclasses.replace`.

This module replaced ad-hoc imports of ``Machine``/``ModelChecker``
from the top-level ``repro`` package; those names still work but emit
:class:`DeprecationWarning` (see DESIGN.md for the migration map).
"""

from __future__ import annotations

import sys
import warnings
from dataclasses import dataclass, field, replace as _dc_replace
from typing import IO, Optional, Union

from repro.compiler.pipeline import compile_source
from repro.faults import FaultBudget, FaultPlan, FaultRule, RecoveryConfig
from repro.protocols import PROTOCOLS, compile_named_protocol
from repro.runtime.protocol import CompiledProtocol, Flavor, OptLevel
from repro.tempest.machine import Machine, MachineConfig
from repro.tempest.network import NetworkConfig
from repro.tempest.stats import MachineStats
from repro.verify.checker import CheckResult, ModelChecker, SymmetryError
from repro.verify.events import EventGenerator, events_for_protocol
from repro.verify.invariants import standard_invariants
from repro.verify.parallel import ParallelChecker

Target = Union[str, CompiledProtocol]


@dataclass(frozen=True)
class CompileOptions:
    """How to turn a target into a :class:`CompiledProtocol`."""

    opt_level: OptLevel = OptLevel.O2
    # None = the registry's flavor for named protocols, TEAPOT otherwise.
    flavor: Optional[Flavor] = None
    # Initial (cache, home) state names for raw source without them.
    initial_states: Optional[tuple[str, str]] = None
    filename: str = "<string>"


@dataclass(frozen=True)
class FaultOptions:
    """Fault injection and recovery for :func:`simulate`.

    Builds a rate-based :class:`~repro.faults.FaultPlan` (every message
    is independently dropped/duplicated with the given probability,
    from ``seed``) unless ``plan`` points at a saved JSON plan -- e.g.
    one exported from a checker counterexample via
    ``Violation.to_fault_plan().save(path)`` -- in which case the plan
    file wins and the rates are ignored.  ``watchdog=True`` layers the
    timeout/retry/dedup recovery protocol on top (see
    docs/ROBUSTNESS.md); without it a dropped message typically
    deadlocks the run, by design.
    """

    drop: float = 0.0          # per-message drop probability
    dup: float = 0.0           # per-message duplication probability
    seed: int = 0              # fault RNG seed (independent of --seed)
    max_faults: Optional[int] = None
    plan: Optional[str] = None  # path to a teapot-fault-plan JSON file
    watchdog: bool = False     # enable the timeout/retry recovery layer
    timeout: int = 4000        # cycles before the first retry
    backoff: float = 2.0       # timeout multiplier per attempt
    retries: int = 5           # retry attempts before giving up

    def build_plan(self) -> Optional[FaultPlan]:
        if self.plan is not None:
            return FaultPlan.load(self.plan)
        rules = []
        if self.drop:
            rules.append(FaultRule(action="drop", rate=self.drop))
        if self.dup:
            rules.append(FaultRule(action="dup", rate=self.dup))
        if not rules and self.max_faults is None:
            return None
        return FaultPlan(rules=tuple(rules), seed=self.seed,
                         max_faults=self.max_faults)

    def build_recovery(self) -> Optional[RecoveryConfig]:
        if not self.watchdog:
            return None
        return RecoveryConfig(timeout=self.timeout, backoff=self.backoff,
                              max_retries=self.retries)


@dataclass(frozen=True)
class ReductionOptions:
    """State-space reduction (docs/VERIFICATION.md, "State-space
    reduction").

    ``symmetry`` canonicalizes every state under permutation of the
    free (non-home) caching nodes before the visited-set lookup, so one
    representative per orbit is explored; counterexample traces stay
    concrete and replay on an unreduced checker.  ``por`` prunes
    commuting independent transitions with sleep sets; it preserves the
    reachable state set exactly, so verdicts, deadlocks, and invariant
    coverage are unchanged.  Both are sound for safety checking and
    rejected under ``liveness``; ``por`` is serial-only.
    """

    symmetry: bool = False
    por: bool = False


@dataclass(frozen=True)
class ProgressOptions:
    """Progress reporting while a check runs.

    ``enabled`` turns on periodic progress lines (to ``stream``, or
    stderr when ``stream`` is None); an explicit ``stream`` enables
    reporting by itself, matching the old ``progress_stream`` kwarg.
    """

    enabled: bool = False
    every: int = 10_000
    stream: Optional[IO] = None

    def __bool__(self) -> bool:
        # Old code tested the flat bool `options.progress`; keep that
        # reading truthful for the grouped record.
        return self.enabled or self.stream is not None

    def effective_stream(self) -> Optional[IO]:
        if self.stream is not None:
            return self.stream
        return sys.stderr if self.enabled else None


@dataclass(frozen=True)
class CheckpointOptions:
    """Resumable JSON checkpoints, on either engine (docs/ROBUSTNESS.md,
    "Resilient checking").

    ``out`` names where to dump a sealed checkpoint whenever the run
    stops early -- ``max_states`` truncation, a resource budget, or an
    interrupt -- and ``resume`` continues from one (written at any
    worker count, serial included; the formats are identical).
    ``interval_waves`` / ``interval_seconds`` additionally write
    periodic checkpoints at wave boundaries while the run is healthy,
    and ``keep_last`` rotates that many most-recent files
    (``out``, ``out.1``, ...)."""

    out: Optional[str] = None
    resume: Optional[str] = None
    interval_waves: Optional[int] = None
    interval_seconds: Optional[float] = None
    keep_last: int = 1


@dataclass(frozen=True)
class BudgetOptions:
    """Resource budgets for a check (docs/ROBUSTNESS.md).

    When a budget trips, the run finishes the current wave (a clean,
    resumable cut), writes a checkpoint if ``CheckpointOptions.out`` is
    set, and returns with ``CheckResult.stop_reason`` of ``"deadline"``
    or ``"memory"`` and ``exhausted=False`` -- never a wrong verdict.
    ``deadline_seconds`` bounds this process's wall-clock time;
    ``max_visited_bytes`` caps the visited-set container bytes (the
    profiler's byte accounting; summed across shards when parallel)."""

    deadline_seconds: Optional[float] = None
    max_visited_bytes: Optional[int] = None

    def __bool__(self) -> bool:
        return (self.deadline_seconds is not None
                or self.max_visited_bytes is not None)


@dataclass(frozen=True)
class ArtifactOptions:
    """Optional run artifacts attached to the :class:`CheckResult`.

    ``profile`` arms an exploration profiler (repro.obs.profile) and
    attaches a CheckProfile to ``CheckResult.profile``; ``atlas``
    records the explored state graph (repro.verify.atlas) onto
    ``CheckResult.atlas``.  Both are observably free when off: the
    checkers run their uninstrumented code paths.
    """

    profile: bool = False
    # Extra timeline samples every this many states inside large layers.
    profile_sample_every: int = 2000
    atlas: bool = False
    # Bottom-k sketch caps: the atlas is exact below these and a
    # uniform digest-keyed sample (with logged truncation) above.
    atlas_state_cap: int = 100_000
    atlas_edge_cap: int = 250_000


# Sentinel distinguishing "kwarg not passed" from any real value in the
# deprecated flat-kwarg shims below.
_UNSET = object()


@dataclass(frozen=True)
class CheckOptions:
    """Model-checking configuration (one Table 3 cell).

    The auxiliary knobs live in grouped sub-records -- ``reduction``,
    ``progress``, ``checkpoint``, ``artifacts`` -- each a frozen
    dataclass of its own.  The pre-grouping flat kwargs (``progress=True``,
    ``progress_every=``, ``checkpoint_out=``, ``resume=``, ``profile=``,
    ``profile_sample_every=``, ``atlas=``, ``atlas_state_cap=``,
    ``atlas_edge_cap=``) still construct the same configuration but emit
    :class:`DeprecationWarning`; see the migration table in DESIGN.md.
    """

    nodes: int = 2
    addresses: int = 1
    reorder: int = 0
    max_states: int = 2_000_000
    # 0 = serial in-process checker; >= 1 = that many worker processes.
    workers: int = 0
    # Liveness (starvation) checking; serial-only, needs the full graph.
    liveness: bool = False
    # None = infer from the protocol (buffered-write relaxes coherence).
    coherent: Optional[bool] = None
    channel_cap: int = 4
    # Serial hash compaction: key the visited set by 64-bit fingerprints.
    # The parallel checker always fingerprints, as does symmetry
    # reduction (the orbit quotient is keyed by canonical fingerprint).
    fingerprints: bool = False
    # Successor engine: "fast" (mutate-and-undo journals, interned
    # states, memoized action effects) or "legacy" (the original
    # freeze-per-successor path, kept as a differential oracle).
    engine: str = "fast"
    # Grouped sub-options.  `progress` also accepts a bare bool (the
    # pre-grouping spelling) and normalizes it with a warning.
    reduction: ReductionOptions = ReductionOptions()
    progress: Union[ProgressOptions, bool] = ProgressOptions()
    checkpoint: CheckpointOptions = CheckpointOptions()
    budget: BudgetOptions = BudgetOptions()
    artifacts: ArtifactOptions = ArtifactOptions()
    # Worker-loss policy for parallel runs: "fail" raises
    # WorkerLostError on the first dead worker; "degrade" re-shards the
    # last completed wave onto the survivors and continues,
    # verdict-identical (docs/ROBUSTNESS.md).
    on_worker_loss: str = "fail"
    # With a timeout, a worker silent for that many seconds during a
    # barrier is treated as lost (killed first); None = wait forever.
    worker_stall_timeout: Optional[float] = None
    events: Optional[EventGenerator] = None
    # Fault-bounded exploration: in every state the checker may also
    # drop or duplicate any in-flight message, up to this per-path
    # budget.  None = classic fault-free checking.
    faults: Optional[FaultBudget] = None
    compile: CompileOptions = CompileOptions()
    # -- deprecated flat kwargs (DeprecationWarning shims) ---------------
    # Plain hidden fields, not InitVars: dataclasses.replace() refuses
    # to copy InitVars, and derived-configuration via replace() is the
    # documented idiom for these frozen records.  __post_init__ folds
    # any provided value into its group and resets the shim to _UNSET,
    # so replace() on an already-normalized record neither re-folds nor
    # re-warns.
    progress_every: object = field(default=_UNSET, repr=False,
                                   compare=False)
    progress_stream: object = field(default=_UNSET, repr=False,
                                    compare=False)
    checkpoint_out: object = field(default=_UNSET, repr=False,
                                   compare=False)
    resume: object = field(default=_UNSET, repr=False, compare=False)
    profile: object = field(default=_UNSET, repr=False, compare=False)
    profile_sample_every: object = field(default=_UNSET, repr=False,
                                         compare=False)
    atlas: object = field(default=_UNSET, repr=False, compare=False)
    atlas_state_cap: object = field(default=_UNSET, repr=False,
                                    compare=False)
    atlas_edge_cap: object = field(default=_UNSET, repr=False,
                                   compare=False)

    def __post_init__(self):
        progress_every = self.progress_every
        progress_stream = self.progress_stream
        checkpoint_out = self.checkpoint_out
        resume = self.resume
        profile = self.profile
        profile_sample_every = self.profile_sample_every
        atlas = self.atlas
        atlas_state_cap = self.atlas_state_cap
        atlas_edge_cap = self.atlas_edge_cap
        for shim in ("progress_every", "progress_stream",
                     "checkpoint_out", "resume", "profile",
                     "profile_sample_every", "atlas", "atlas_state_cap",
                     "atlas_edge_cap"):
            object.__setattr__(self, shim, _UNSET)
        deprecated = []

        def fold(group_attr, group, updates):
            changed = {field: value for field, (kwarg, value)
                       in updates.items() if value is not _UNSET}
            if changed:
                deprecated.extend(kwarg for _field, (kwarg, value)
                                  in updates.items()
                                  if value is not _UNSET)
                object.__setattr__(
                    self, group_attr,
                    _dc_replace(group, **changed))

        progress = self.progress
        if isinstance(progress, bool):
            deprecated.append("progress=<bool>")
            progress = ProgressOptions(enabled=progress)
            object.__setattr__(self, "progress", progress)
        fold("progress", progress, {
            "every": ("progress_every", progress_every),
            "stream": ("progress_stream", progress_stream)})
        fold("checkpoint", self.checkpoint, {
            "out": ("checkpoint_out", checkpoint_out),
            "resume": ("resume", resume)})
        fold("artifacts", self.artifacts, {
            "profile": ("profile", profile),
            "profile_sample_every": ("profile_sample_every",
                                     profile_sample_every),
            "atlas": ("atlas", atlas),
            "atlas_state_cap": ("atlas_state_cap", atlas_state_cap),
            "atlas_edge_cap": ("atlas_edge_cap", atlas_edge_cap)})
        if deprecated:
            warnings.warn(
                "flat CheckOptions kwargs are deprecated ("
                + ", ".join(sorted(set(deprecated)))
                + "); use the grouped ProgressOptions / CheckpointOptions"
                " / ArtifactOptions records instead (migration table in"
                " DESIGN.md)",
                DeprecationWarning, stacklevel=3)


@dataclass(frozen=True)
class SimOptions:
    """Simulator configuration (Table 1/2 runs)."""

    nodes: int = 16
    # None = the workload's conventional block count.
    blocks: Optional[int] = None
    # Network: seed the delay RNG (None = the default seed, 12345 --
    # every zero-fault run at the same seed/jitter is byte-identical,
    # which the golden-trace tests enforce) and allow up to ``jitter``
    # cycles of random extra latency.  jitter > 0 drops per-channel
    # FIFO unless ``fifo`` pins it, so reordering is reproducible from
    # the seed alone.
    seed: Optional[int] = None
    jitter: int = 0
    fifo: Optional[bool] = None
    trace: Optional[str] = None
    trace_format: str = "jsonl"
    metrics: Optional[str] = None
    # Fault injection and the timeout/retry recovery layer; None keeps
    # the network perfectly reliable (and the run byte-identical to
    # builds without the fault subsystem).
    faults: Optional[FaultOptions] = None
    compile: CompileOptions = CompileOptions()


@dataclass
class SimulateResult:
    """Outcome of :func:`simulate`."""

    protocol_name: str
    workload: Optional[str]
    cycles: int
    stats: MachineStats
    # The machine itself, for inspection beyond the aggregate stats
    # (e.g. per-node observed values in the examples).
    machine: Optional[Machine] = None
    # The Table 1/2 row, when a registered workload was run.
    table_row: Optional[object] = None
    # The fault plan the run executed under (its ledger records every
    # injected fault); None for reliable-network runs.
    fault_plan: Optional[FaultPlan] = None

    @property
    def fault_time_fraction(self) -> float:
        return self.stats.fault_time_fraction


def _registry_label(target: Target) -> str:
    """The name used for events/invariant inference (CLI semantics)."""
    if isinstance(target, str):
        return target
    return target.name


def compile_protocol(target: Target,
                     options: CompileOptions = CompileOptions(),
                     ) -> CompiledProtocol:
    """Compile a registered name, ``.tea`` path, or source text.

    Already-compiled protocols pass through unchanged.  A string with a
    newline is treated as source text; otherwise it must be a registered
    protocol name (see ``teapot list``) or a path to a ``.tea`` file.
    """
    if isinstance(target, CompiledProtocol):
        return target
    if not isinstance(target, str):
        raise TypeError(
            f"target must be a protocol name, .tea path, source text, or "
            f"CompiledProtocol, not {type(target).__name__}")
    if "\n" in target:
        return compile_source(
            target, opt_level=options.opt_level,
            flavor=options.flavor or Flavor.TEAPOT,
            initial_states=options.initial_states,
            filename=options.filename)
    if target in PROTOCOLS:
        return compile_named_protocol(
            target, opt_level=options.opt_level, flavor=options.flavor)
    with open(target) as handle:
        source = handle.read()
    return compile_source(
        source, opt_level=options.opt_level,
        flavor=options.flavor or Flavor.TEAPOT,
        initial_states=options.initial_states,
        filename=target)


def check(target: Target,
          options: CheckOptions = CheckOptions()) -> CheckResult:
    """Model-check a protocol; serial or parallel per ``options.workers``."""
    protocol = compile_protocol(target, options.compile)
    label = _registry_label(target)
    events = options.events
    if events is None:
        events = events_for_protocol(label if label in PROTOCOLS
                                     else "stache")
    coherent = options.coherent
    if coherent is None:
        coherent = not (label.lower().startswith("buffered")
                        or protocol.name.lower().startswith("buffered"))
    invariants = standard_invariants(coherent=coherent)
    progress = options.progress
    progress_stream = progress.effective_stream()

    reduction = options.reduction
    checkpointing = bool(options.checkpoint.out
                         or options.checkpoint.resume)
    if options.workers < 0:
        raise ValueError("CheckOptions.workers must be >= 0")
    if options.on_worker_loss not in ("fail", "degrade"):
        raise ValueError(
            f"CheckOptions.on_worker_loss must be 'fail' or 'degrade', "
            f"got {options.on_worker_loss!r}")
    if options.workers == 0:
        if checkpointing and options.liveness:
            raise ValueError(
                "checkpoint/resume and liveness checking are mutually "
                "exclusive: checkpoints key states by fingerprint, "
                "liveness needs the concrete state graph")
        if checkpointing and reduction.por:
            raise ValueError(
                "checkpoint/resume is incompatible with partial-order "
                "reduction (sleep-set state is not serialized)")
    else:
        if options.liveness:
            raise ValueError(
                "liveness checking needs the full state graph and is "
                "serial-only (CheckOptions.workers must be 0)")
        if reduction.por:
            raise ValueError(
                "partial-order reduction is serial-only: sleep sets need "
                "globally ordered re-arrival bookkeeping the sharded "
                "checker does not do (CheckOptions.workers must be 0)")

    def run_once(symmetry: bool) -> CheckResult:
        # Observers (profiler/atlas) are stateful accumulators; each
        # attempt gets fresh ones so a symmetry-certification fallback
        # rerun does not double-record.
        artifacts = options.artifacts
        profiler = None
        if artifacts.profile:
            from repro.obs.profile import CheckProfiler

            profiler = CheckProfiler(
                sample_every=artifacts.profile_sample_every)
        atlas = None
        if artifacts.atlas:
            from repro.verify.atlas import AtlasRecorder

            atlas = AtlasRecorder(state_cap=artifacts.atlas_state_cap,
                                  edge_cap=artifacts.atlas_edge_cap)
        if options.workers == 0:
            return ModelChecker(
                protocol,
                n_nodes=options.nodes,
                n_blocks=options.addresses,
                reorder_bound=options.reorder,
                events=events,
                invariants=invariants,
                max_states=options.max_states,
                channel_cap=options.channel_cap,
                check_progress=options.liveness,
                progress_stream=progress_stream,
                progress_every=progress.every,
                # Serial checkpoints key the visited set by fingerprint,
                # so checkpointing implies hash compaction.
                fingerprint_states=(options.fingerprints
                                    or checkpointing),
                fault_budget=options.faults,
                profiler=profiler,
                atlas=atlas,
                engine=options.engine,
                symmetry=symmetry,
                por=reduction.por,
                checkpoint_out=options.checkpoint.out,
                resume=options.checkpoint.resume,
                checkpoint_interval_waves=options.checkpoint.interval_waves,
                checkpoint_interval_seconds=(
                    options.checkpoint.interval_seconds),
                checkpoint_keep_last=options.checkpoint.keep_last,
                deadline_seconds=options.budget.deadline_seconds,
                max_visited_bytes=options.budget.max_visited_bytes,
            ).run()
        return ParallelChecker(
            protocol,
            n_nodes=options.nodes,
            n_blocks=options.addresses,
            reorder_bound=options.reorder,
            events=events,
            invariants=invariants,
            workers=options.workers,
            max_states=options.max_states,
            channel_cap=options.channel_cap,
            progress_stream=progress_stream,
            progress_every=progress.every,
            checkpoint_out=options.checkpoint.out,
            resume=options.checkpoint.resume,
            fault_budget=options.faults,
            profiler=profiler,
            atlas=atlas,
            engine=options.engine,
            symmetry=symmetry,
            on_worker_loss=options.on_worker_loss,
            worker_stall_timeout=options.worker_stall_timeout,
            checkpoint_interval_waves=options.checkpoint.interval_waves,
            checkpoint_interval_seconds=(
                options.checkpoint.interval_seconds),
            checkpoint_keep_last=options.checkpoint.keep_last,
            deadline_seconds=options.budget.deadline_seconds,
            max_visited_bytes=options.budget.max_visited_bytes,
        ).run()

    if not reduction.symmetry:
        return run_once(False)
    try:
        return run_once(True)
    except SymmetryError as error:
        # The protocol failed the per-state symmetry certification
        # (it makes a node-identity-dependent choice, so quotienting
        # would be unsound).  Warn and fall back to the exact,
        # unreduced exploration; POR (independently sound) stays on.
        warnings.warn(
            f"{error}; re-running without symmetry reduction",
            RuntimeWarning, stacklevel=2)
        return run_once(False)


def simulate(target: Target,
             workload: Optional[str] = None,
             programs: Optional[list] = None,
             options: SimOptions = SimOptions()) -> SimulateResult:
    """Simulate a registered workload, or caller-supplied programs.

    Exactly one of ``workload`` (a name from
    :data:`repro.workloads.STACHE_WORKLOADS` /
    :data:`~repro.workloads.LCM_WORKLOADS`) and ``programs`` (a list of
    per-node thread programs, one per node) must be given.
    """
    from repro.workloads import LCM_WORKLOADS, STACHE_WORKLOADS, run_workload

    if (workload is None) == (programs is None):
        raise ValueError("pass exactly one of workload= or programs=")
    protocol = compile_protocol(target, options.compile)

    n_nodes = options.nodes
    if workload is not None:
        table = {**STACHE_WORKLOADS, **LCM_WORKLOADS}
        if workload not in table:
            raise ValueError(
                f"unknown workload {workload!r}; known: "
                + ", ".join(sorted(table)))
        factory, blocks_fn = table[workload]
        programs = factory(n_nodes=n_nodes)
        n_blocks = options.blocks or blocks_fn(n_nodes)
    else:
        n_nodes = len(programs)
        n_blocks = options.blocks or 64

    network = NetworkConfig(
        jitter=options.jitter,
        fifo=(options.jitter == 0) if options.fifo is None else options.fifo,
        seed=options.seed if options.seed is not None else 12345,
    )
    observer = None
    registry = None
    if options.trace or options.metrics:
        from repro.obs import MetricsRegistry, Observer, open_sink

        if options.metrics:
            registry = MetricsRegistry(protocol.name)
        observer = Observer(open_sink(options.trace, options.trace_format),
                            registry)
    fault_plan = None
    recovery = None
    if options.faults is not None:
        fault_plan = options.faults.build_plan()
        recovery = options.faults.build_recovery()
    config = MachineConfig(n_nodes=n_nodes, n_blocks=n_blocks,
                           network=network, observer=observer,
                           faults=fault_plan, recovery=recovery)
    try:
        if workload is not None:
            row = run_workload(protocol, workload, programs, n_blocks,
                               config=config)
            result = SimulateResult(
                protocol_name=protocol.name, workload=workload,
                cycles=row.cycles, stats=row.stats, table_row=row,
                fault_plan=fault_plan)
        else:
            machine = Machine(protocol, programs, config)
            sim = machine.run()
            result = SimulateResult(
                protocol_name=protocol.name, workload=None,
                cycles=sim.cycles, stats=sim.stats, machine=machine,
                fault_plan=fault_plan)
    finally:
        if observer is not None:
            observer.close()
    if registry is not None:
        registry.save(options.metrics)
    return result
