"""The paper's case-study protocols, written in Teapot.

Each protocol ships as a ``.tea`` source file plus a registration entry
describing its initial states.  Two styles exist for Stache and LCM:

- the continuation style (``stache.tea``, ``lcm.tea``) -- the paper's
  contribution, using ``Suspend``/``Resume`` and subroutine states;
- the hand-written state-machine style (``stache_sm.tea``,
  ``lcm_sm.tea``) -- explicit intermediate states and pending-request
  bookkeeping, standing in for the paper's hand-written C protocols.

Both styles of a protocol are *behaviourally identical* on the wire,
which the test suite exploits for differential testing.
"""

from __future__ import annotations

from dataclasses import dataclass
from importlib import resources
from typing import Optional

from repro.compiler.pipeline import compile_source
from repro.runtime.protocol import CompiledProtocol, Flavor, OptLevel


@dataclass(frozen=True)
class ProtocolEntry:
    """Registry entry for a named protocol."""

    name: str
    filename: str
    initial_states: tuple[str, str]     # (home, cache)
    flavor: Flavor
    description: str


PROTOCOLS = {
    entry.name: entry
    for entry in [
        ProtocolEntry(
            "stache", "stache.tea", ("Home_Idle", "Cache_Invalid"),
            Flavor.TEAPOT,
            "Stache directory protocol, continuation style (Section 4)"),
        ProtocolEntry(
            "stache_sm", "stache_sm.tea", ("Home_Idle", "Cache_Invalid"),
            Flavor.BASELINE,
            "Stache as a hand-written state machine (the C baseline)"),
        ProtocolEntry(
            "stache_cas", "stache_cas.tea", ("Home_Idle", "Cache_Invalid"),
            Flavor.TEAPOT,
            "Stache extended with Compare&Swap (Figure 6)"),
        ProtocolEntry(
            "stache_cas_sm", "stache_cas_sm.tea",
            ("Home_Idle", "Cache_Invalid"), Flavor.BASELINE,
            "Compare&Swap retrofitted onto the state-machine Stache"),
        ProtocolEntry(
            "buffered_write", "buffered_write.tea",
            ("Home_Idle", "Cache_Invalid"), Flavor.TEAPOT,
            "Stache variant buffering writes until a synchronisation "
            "point (Section 6)"),
        ProtocolEntry(
            "stache_evict", "stache_evict.tea",
            ("Home_Idle", "Cache_Invalid"), Flavor.TEAPOT,
            "Stache with cache replacement and the Section 2 "
            "gratuitous-request queueing discipline"),
        ProtocolEntry(
            "stache_nack", "stache_nack.tea",
            ("Home_Idle", "Cache_Invalid"), Flavor.TEAPOT,
            "Stache with the NACK-and-retry policy for busy-home "
            "requests (Section 2's nack option)"),
        ProtocolEntry(
            "dash", "dash.tea", ("Home_Idle", "Cache_Invalid"),
            Flavor.TEAPOT,
            "DASH-style protocol: the writer collects invalidation acks "
            "via nested suspends (Section 3)"),
        ProtocolEntry(
            "lcm", "lcm.tea", ("Home_Idle", "Cache_Invalid"),
            Flavor.TEAPOT,
            "LCM: loosely coherent memory with phase-based reconciliation"),
        ProtocolEntry(
            "lcm_sm", "lcm_sm.tea", ("Home_Idle", "Cache_Invalid"),
            Flavor.BASELINE,
            "LCM as a hand-written state machine (the C baseline)"),
        ProtocolEntry(
            "lcm_update", "lcm_update.tea", ("Home_Idle", "Cache_Invalid"),
            Flavor.TEAPOT,
            "LCM variant eagerly updating consumers at phase end"),
        ProtocolEntry(
            "lcm_mcc", "lcm_mcc.tea", ("Home_Idle", "Cache_Invalid"),
            Flavor.TEAPOT,
            "LCM variant managing multiple distributed copies"),
        ProtocolEntry(
            "lcm_both", "lcm_both.tea", ("Home_Idle", "Cache_Invalid"),
            Flavor.TEAPOT,
            "LCM with both the update and MCC extensions"),
    ]
}


def load_protocol_source(name: str) -> str:
    """Return the Teapot source text of the named protocol."""
    entry = PROTOCOLS.get(name)
    if entry is None:
        known = ", ".join(sorted(PROTOCOLS))
        raise KeyError(f"unknown protocol {name!r}; known: {known}")
    return (resources.files(__package__) / entry.filename).read_text()


# Registered-protocol sources never change within a process, so compiling
# the same (name, opt level, flavor) twice always yields an equivalent
# CompiledProtocol.  Cache it: api.check() and the bench/CLI paths compile
# per call, and compilation otherwise dominates small verification runs.
# Cached objects are shared -- callers must not mutate them (code that
# wants a private protocol to patch should go through compile_source).
_COMPILE_CACHE: dict = {}


def compile_named_protocol(
    name: str,
    opt_level: OptLevel = OptLevel.O2,
    flavor: Optional[Flavor] = None,
) -> CompiledProtocol:
    """Compile a registered protocol by name (memoised per config)."""
    entry = PROTOCOLS[name]
    resolved_flavor = flavor if flavor is not None else entry.flavor
    key = (name, opt_level, resolved_flavor)
    cached = _COMPILE_CACHE.get(key)
    if cached is not None:
        return cached
    compiled = compile_source(
        load_protocol_source(name),
        opt_level=opt_level,
        flavor=resolved_flavor,
        initial_states=entry.initial_states,
        filename=entry.filename,
    )
    _COMPILE_CACHE[key] = compiled
    return compiled
