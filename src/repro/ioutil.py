"""Crash-safe file writes shared by checkpoints, tools, and benches.

Every JSON artifact the repo persists -- checkpoints, fault matrices,
bench reports -- goes through :func:`atomic_write_json`: serialize to a
sibling temp file, ``fsync``, then ``os.replace`` into place.  A crash
mid-write therefore leaves either the previous complete file or a
stray ``*.tmp``, never a parseable-but-partial artifact.
"""

from __future__ import annotations

import json
import os


def atomic_write_json(path: str, payload, indent=None) -> None:
    """Write ``payload`` as JSON to ``path`` atomically (tmp + fsync +
    rename).  The temp file lives next to the target so the rename
    never crosses a filesystem boundary."""
    tmp = f"{path}.tmp"
    with open(tmp, "w") as handle:
        json.dump(payload, handle, indent=indent)
        handle.write("\n")
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)


def atomic_write_text(path: str, text: str, fsync: bool = True) -> None:
    """Write pre-serialized ``text`` with the same tmp + fsync + rename
    discipline, for callers that already hold the bytes (the checkpoint
    writer serializes once and reuses the seal's canonical JSON).

    ``fsync=False`` keeps the rename atomicity (a crashed *process*
    still leaves either the old complete file or the new one) but skips
    the page-cache flush, for high-frequency writers whose durability
    window is the next write anyway -- periodic checkpoints fire many
    times a second and the fsync was a third of their cost."""
    tmp = f"{path}.tmp"
    with open(tmp, "w") as handle:
        handle.write(text)
        handle.flush()
        if fsync:
            os.fsync(handle.fileno())
    os.replace(tmp, path)
