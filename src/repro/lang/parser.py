"""Recursive-descent parser for the Teapot language.

Follows the grammar in Appendix A of the paper.  Two liberties are taken
to match the paper's own examples, which deviate slightly from the
appendix:

- State parameter lists and state constructors use braces (``{...}``) as
  in every example; the appendix's parenthesised form is also accepted.
- Argument lists may be separated by commas (as in the examples) or by
  semicolons (as in the appendix grammar).
"""

from __future__ import annotations

from typing import Optional

from repro.lang import ast
from repro.lang.errors import ParseError, SourceLocation
from repro.lang.lexer import Token, tokenize
from repro.lang.tokens import BINARY_PRECEDENCE, OPERATOR_SPELLING, TokenKind


class Parser:
    """Parses a token stream into a :class:`repro.lang.ast.Program`."""

    def __init__(self, tokens: list[Token]):
        self._tokens = tokens
        self._pos = 0

    # -- token stream helpers ------------------------------------------------

    def _peek(self, offset: int = 0) -> Token:
        index = min(self._pos + offset, len(self._tokens) - 1)
        return self._tokens[index]

    def _at(self, kind: TokenKind) -> bool:
        return self._peek().kind is kind

    def _advance(self) -> Token:
        token = self._peek()
        if token.kind is not TokenKind.EOF:
            self._pos += 1
        return token

    def _expect(self, kind: TokenKind, context: str = "") -> Token:
        token = self._peek()
        if token.kind is not kind:
            where = f" in {context}" if context else ""
            raise ParseError(
                f"expected {kind.value!r} but found "
                f"{token.text or token.kind.value!r}{where}",
                token.location,
            )
        return self._advance()

    def _accept(self, kind: TokenKind) -> Optional[Token]:
        if self._at(kind):
            return self._advance()
        return None

    def _expect_ident(self, context: str = "") -> Token:
        return self._expect(TokenKind.IDENT, context)

    def _location(self) -> SourceLocation:
        return self._peek().location

    # -- program structure ---------------------------------------------------

    def parse_program(self) -> ast.Program:
        """program: modules protocol states"""
        location = self._location()
        modules = []
        while self._at(TokenKind.KW_MODULE):
            modules.append(self._parse_module())
        protocol = self._parse_protocol()
        states = []
        while self._at(TokenKind.KW_STATE):
            states.append(self._parse_state_def())
        self._expect(TokenKind.EOF, "end of program")
        return ast.Program(modules, protocol, states, location=location)

    def _parse_module(self) -> ast.Module:
        location = self._location()
        self._expect(TokenKind.KW_MODULE)
        name = self._expect_ident("module header").text
        self._expect(TokenKind.KW_BEGIN, "module body")
        decls: list[ast.ModuleDecl] = []
        while not self._at(TokenKind.KW_END):
            decls.append(self._parse_module_decl())
        self._expect(TokenKind.KW_END)
        self._expect(TokenKind.SEMI, "module")
        return ast.Module(name, decls, location=location)

    def _parse_module_decl(self) -> ast.ModuleDecl:
        token = self._peek()
        if token.kind is TokenKind.KW_TYPE:
            self._advance()
            name = self._expect_ident("type declaration").text
            self._expect(TokenKind.SEMI, "type declaration")
            return ast.TypeDecl(name, location=token.location)
        if token.kind is TokenKind.KW_CONST:
            self._advance()
            name = self._expect_ident("const declaration").text
            self._expect(TokenKind.COLON, "const declaration")
            type_name = self._expect_ident("const declaration").text
            self._expect(TokenKind.SEMI, "const declaration")
            return ast.ConstDecl(name, type_name, location=token.location)
        if token.kind is TokenKind.KW_FUNCTION:
            self._advance()
            name = self._expect_ident("function prototype").text
            params = self._parse_param_list(TokenKind.LPAREN, TokenKind.RPAREN)
            self._expect(TokenKind.COLON, "function prototype")
            return_type = self._expect_ident("function prototype").text
            self._expect(TokenKind.SEMI, "function prototype")
            return ast.FunctionDecl(name, params, return_type, location=token.location)
        if token.kind is TokenKind.KW_PROCEDURE:
            self._advance()
            name = self._expect_ident("procedure prototype").text
            params = self._parse_param_list(TokenKind.LPAREN, TokenKind.RPAREN)
            self._expect(TokenKind.SEMI, "procedure prototype")
            return ast.ProcedureDecl(name, params, location=token.location)
        raise ParseError(
            f"expected a module declaration but found {token.text!r}",
            token.location,
        )

    def _parse_protocol(self) -> ast.Protocol:
        location = self._location()
        self._expect(TokenKind.KW_PROTOCOL, "protocol header")
        name = self._expect_ident("protocol header").text
        self._expect(TokenKind.KW_BEGIN, "protocol body")
        decls: list[ast.ProtocolDecl] = []
        while not self._at(TokenKind.KW_END):
            decls.extend(self._parse_protocol_decl())
        self._expect(TokenKind.KW_END)
        self._expect(TokenKind.SEMI, "protocol")
        return ast.Protocol(name, decls, location=location)

    def _parse_protocol_decl(self) -> list[ast.ProtocolDecl]:
        """Parse one protocol declaration.

        Returns a list because ``Var a, b : T;`` desugars into one
        :class:`~repro.lang.ast.ProtoVarDecl` per name.
        """
        token = self._peek()
        if token.kind is TokenKind.KW_VAR:
            self._advance()
            names = self._parse_name_list()
            self._expect(TokenKind.COLON, "protocol variable")
            type_name = self._expect_ident("protocol variable").text
            self._expect(TokenKind.SEMI, "protocol variable")
            return [
                ast.ProtoVarDecl(name, type_name, location=token.location)
                for name in names
            ]
        if token.kind is TokenKind.KW_CONST:
            self._advance()
            name = self._expect_ident("protocol constant").text
            self._expect(TokenKind.ASSIGN, "protocol constant")
            value = self._parse_expr()
            self._expect(TokenKind.SEMI, "protocol constant")
            return [ast.ProtoConstDef(name, value, location=token.location)]
        if token.kind is TokenKind.KW_STATE:
            self._advance()
            name = self._expect_ident("state declaration").text
            params = self._parse_state_params()
            transient = self._accept(TokenKind.KW_TRANSIENT) is not None
            self._expect(TokenKind.SEMI, "state declaration")
            return [ast.StateDecl(name, params, transient,
                                  location=token.location)]
        if token.kind is TokenKind.KW_MESSAGE:
            self._advance()
            name = self._expect_ident("message declaration").text
            self._expect(TokenKind.SEMI, "message declaration")
            return [ast.MessageDecl(name, location=token.location)]
        raise ParseError(
            f"expected a protocol declaration but found {token.text!r}",
            token.location,
        )

    # -- state definitions ---------------------------------------------------

    def _parse_state_def(self) -> ast.StateDef:
        location = self._location()
        self._expect(TokenKind.KW_STATE)
        first = self._expect_ident("state definition").text
        if self._accept(TokenKind.DOT):
            protocol_name = first
            state_name = self._expect_ident("state definition").text
        else:
            protocol_name = ""
            state_name = first
        params = self._parse_state_params()
        self._expect(TokenKind.KW_BEGIN, "state body")
        handlers = []
        while self._at(TokenKind.KW_MESSAGE):
            handlers.append(self._parse_handler())
        self._expect(TokenKind.KW_END, "state body")
        self._expect(TokenKind.SEMI, "state definition")
        return ast.StateDef(protocol_name, state_name, params, handlers,
                            location=location)

    def _parse_handler(self) -> ast.Handler:
        location = self._location()
        self._expect(TokenKind.KW_MESSAGE)
        name = self._expect_ident("message handler").text
        params: list[ast.Param] = []
        if self._at(TokenKind.LPAREN):
            params = self._parse_param_list(TokenKind.LPAREN, TokenKind.RPAREN)
        local_decls: list[ast.Param] = []
        if self._at(TokenKind.KW_VAR):
            local_decls = self._parse_block_decls()
        self._expect(TokenKind.KW_BEGIN, "handler body")
        body = self._parse_stmts(terminators=(TokenKind.KW_END,))
        self._expect(TokenKind.KW_END, "handler body")
        self._expect(TokenKind.SEMI, "handler")
        return ast.Handler(name, params, local_decls, body, location=location)

    def _parse_block_decls(self) -> list[ast.Param]:
        self._expect(TokenKind.KW_VAR)
        decls: list[ast.Param] = []
        # One or more "names : type ;" groups, up to Begin.
        while self._at(TokenKind.IDENT):
            location = self._location()
            names = self._parse_name_list()
            self._expect(TokenKind.COLON, "local variable declaration")
            type_name = self._expect_ident("local variable declaration").text
            self._expect(TokenKind.SEMI, "local variable declaration")
            for name in names:
                decls.append(ast.Param(name, type_name, location=location))
        return decls

    # -- parameters ----------------------------------------------------------

    def _parse_state_params(self) -> list[ast.Param]:
        """State parameter lists appear as ``{...}`` (examples) or ``(...)``."""
        if self._at(TokenKind.LBRACE):
            return self._parse_param_list(TokenKind.LBRACE, TokenKind.RBRACE)
        if self._at(TokenKind.LPAREN):
            return self._parse_param_list(TokenKind.LPAREN, TokenKind.RPAREN)
        raise ParseError(
            "expected a state parameter list ('{' or '(')",
            self._location(),
        )

    def _parse_param_list(self, open_kind: TokenKind,
                          close_kind: TokenKind) -> list[ast.Param]:
        self._expect(open_kind)
        params: list[ast.Param] = []
        if self._accept(close_kind):
            return params
        while True:
            by_ref = self._accept(TokenKind.KW_VAR) is not None
            location = self._location()
            names = self._parse_name_list()
            self._expect(TokenKind.COLON, "parameter")
            type_name = self._expect_ident("parameter type").text
            for name in names:
                params.append(ast.Param(name, type_name, by_ref, location))
            if self._accept(TokenKind.SEMI) or self._accept(TokenKind.COMMA):
                if self._at(close_kind):  # tolerate trailing separator
                    break
                continue
            break
        self._expect(close_kind, "parameter list")
        return params

    def _parse_name_list(self) -> list[str]:
        names = [self._expect_ident("name list").text]
        while self._accept(TokenKind.COMMA):
            names.append(self._expect_ident("name list").text)
        return names

    # -- statements ----------------------------------------------------------

    def _parse_stmts(self, terminators: tuple[TokenKind, ...]) -> list[ast.Stmt]:
        stmts: list[ast.Stmt] = []
        while not any(self._at(kind) for kind in terminators):
            stmts.append(self._parse_stmt())
        return stmts

    def _parse_stmt(self) -> ast.Stmt:
        token = self._peek()
        if token.kind is TokenKind.KW_IF:
            return self._parse_if()
        if token.kind is TokenKind.KW_WHILE:
            return self._parse_while()
        if token.kind is TokenKind.KW_SUSPEND:
            return self._parse_suspend()
        if token.kind is TokenKind.KW_RESUME:
            return self._parse_resume()
        if token.kind is TokenKind.KW_RETURN:
            return self._parse_return()
        if token.kind is TokenKind.KW_PRINT:
            return self._parse_print()
        if token.kind is TokenKind.IDENT:
            return self._parse_call_or_assign()
        raise ParseError(
            f"expected a statement but found {token.text or token.kind.value!r}",
            token.location,
        )

    def _parse_if(self) -> ast.Stmt:
        location = self._location()
        self._expect(TokenKind.KW_IF)
        self._expect(TokenKind.LPAREN, "if condition")
        cond = self._parse_expr()
        self._expect(TokenKind.RPAREN, "if condition")
        self._expect(TokenKind.KW_THEN, "if statement")
        then_body = self._parse_stmts(
            terminators=(TokenKind.KW_ELSE, TokenKind.KW_ENDIF))
        else_body: list[ast.Stmt] = []
        if self._accept(TokenKind.KW_ELSE):
            else_body = self._parse_stmts(terminators=(TokenKind.KW_ENDIF,))
        self._expect(TokenKind.KW_ENDIF, "if statement")
        self._expect(TokenKind.SEMI, "if statement")
        return ast.If(cond, then_body, else_body, location=location)

    def _parse_while(self) -> ast.Stmt:
        location = self._location()
        self._expect(TokenKind.KW_WHILE)
        self._expect(TokenKind.LPAREN, "while condition")
        cond = self._parse_expr()
        self._expect(TokenKind.RPAREN, "while condition")
        self._expect(TokenKind.KW_DO, "while statement")
        body = self._parse_stmts(terminators=(TokenKind.KW_END,))
        self._expect(TokenKind.KW_END, "while statement")
        self._expect(TokenKind.SEMI, "while statement")
        return ast.While(cond, body, location=location)

    def _parse_suspend(self) -> ast.Stmt:
        location = self._location()
        self._expect(TokenKind.KW_SUSPEND)
        self._expect(TokenKind.LPAREN, "suspend")
        cont_name = self._expect_ident("suspend continuation name").text
        self._expect(TokenKind.COMMA, "suspend")
        target = self._parse_state_constructor()
        self._expect(TokenKind.RPAREN, "suspend")
        self._expect(TokenKind.SEMI, "suspend")
        return ast.Suspend(cont_name, target, location=location)

    def _parse_resume(self) -> ast.Stmt:
        location = self._location()
        self._expect(TokenKind.KW_RESUME)
        self._expect(TokenKind.LPAREN, "resume")
        cont = self._parse_expr()
        self._expect(TokenKind.RPAREN, "resume")
        self._expect(TokenKind.SEMI, "resume")
        return ast.Resume(cont, location=location)

    def _parse_return(self) -> ast.Stmt:
        location = self._location()
        self._expect(TokenKind.KW_RETURN)
        value = None
        if not self._at(TokenKind.SEMI):
            value = self._parse_expr()
        self._expect(TokenKind.SEMI, "return")
        return ast.Return(value, location=location)

    def _parse_print(self) -> ast.Stmt:
        location = self._location()
        self._expect(TokenKind.KW_PRINT)
        self._expect(TokenKind.LPAREN, "print")
        args = self._parse_arg_list(TokenKind.RPAREN)
        self._expect(TokenKind.RPAREN, "print")
        self._expect(TokenKind.SEMI, "print")
        return ast.PrintStmt(args, location=location)

    def _parse_call_or_assign(self) -> ast.Stmt:
        location = self._location()
        name = self._expect_ident().text
        if self._accept(TokenKind.ASSIGN):
            value = self._parse_expr()
            self._expect(TokenKind.SEMI, "assignment")
            return ast.Assign(name, value, location=location)
        self._expect(TokenKind.LPAREN, "procedure call")
        args = self._parse_arg_list(TokenKind.RPAREN)
        self._expect(TokenKind.RPAREN, "procedure call")
        self._expect(TokenKind.SEMI, "procedure call")
        return ast.CallStmt(name, args, location=location)

    # -- expressions ---------------------------------------------------------

    def _parse_arg_list(self, close_kind: TokenKind) -> list[ast.Expr]:
        args: list[ast.Expr] = []
        if self._at(close_kind):
            return args
        args.append(self._parse_expr())
        while self._accept(TokenKind.COMMA) or self._accept(TokenKind.SEMI):
            if self._at(close_kind):  # tolerate trailing separator
                break
            args.append(self._parse_expr())
        return args

    def _parse_expr(self, min_precedence: int = 1) -> ast.Expr:
        """Precedence-climbing over the operators in ``BINARY_PRECEDENCE``."""
        left = self._parse_unary()
        while True:
            kind = self._peek().kind
            precedence = BINARY_PRECEDENCE.get(kind, 0)
            if precedence < min_precedence:
                return left
            op_token = self._advance()
            right = self._parse_expr(precedence + 1)
            left = ast.BinOp(OPERATOR_SPELLING[kind], left, right,
                             location=op_token.location)

    def _parse_unary(self) -> ast.Expr:
        token = self._peek()
        if token.kind is TokenKind.KW_NOT:
            self._advance()
            operand = self._parse_unary()
            return ast.UnOp("Not", operand, location=token.location)
        if token.kind is TokenKind.MINUS:
            self._advance()
            operand = self._parse_unary()
            return ast.UnOp("-", operand, location=token.location)
        return self._parse_app_expr()

    def _parse_app_expr(self) -> ast.Expr:
        token = self._peek()
        if token.kind is TokenKind.INTLIT:
            self._advance()
            return ast.IntLit(int(token.text), location=token.location)
        if token.kind is TokenKind.STRLIT:
            self._advance()
            return ast.StrLit(token.text, location=token.location)
        if token.kind is TokenKind.KW_TRUE:
            self._advance()
            return ast.BoolLit(True, location=token.location)
        if token.kind is TokenKind.KW_FALSE:
            self._advance()
            return ast.BoolLit(False, location=token.location)
        if token.kind is TokenKind.LPAREN:
            self._advance()
            expr = self._parse_expr()
            self._expect(TokenKind.RPAREN, "parenthesised expression")
            return expr
        if token.kind is TokenKind.IDENT:
            name = self._advance().text
            if self._at(TokenKind.LPAREN):
                self._advance()
                args = self._parse_arg_list(TokenKind.RPAREN)
                self._expect(TokenKind.RPAREN, "call")
                return ast.CallExpr(name, args, location=token.location)
            if self._at(TokenKind.LBRACE):
                self._advance()
                args = self._parse_arg_list(TokenKind.RBRACE)
                self._expect(TokenKind.RBRACE, "state constructor")
                return ast.StateExpr(name, args, location=token.location)
            return ast.NameRef(name, location=token.location)
        raise ParseError(
            f"expected an expression but found "
            f"{token.text or token.kind.value!r}",
            token.location,
        )

    def _parse_state_constructor(self) -> ast.StateExpr:
        token = self._peek()
        expr = self._parse_app_expr()
        if not isinstance(expr, ast.StateExpr):
            raise ParseError(
                "the second argument of Suspend must be a state "
                "constructor, e.g. AwaitResponse{L}",
                token.location,
            )
        return expr


def parse_program(source: str, filename: str = "<string>") -> ast.Program:
    """Parse Teapot ``source`` into an AST.

    Raises :class:`~repro.lang.errors.LexError` or
    :class:`~repro.lang.errors.ParseError` on malformed input.
    """
    return Parser(tokenize(source, filename)).parse_program()


def parse_handler_body(source: str, filename: str = "<handler>") -> list[ast.Stmt]:
    """Parse a bare statement list -- a convenience used heavily by tests."""
    parser = Parser(tokenize(source, filename))
    stmts = parser._parse_stmts(terminators=(TokenKind.EOF,))
    parser._expect(TokenKind.EOF)
    return stmts
