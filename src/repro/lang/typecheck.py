"""Semantic analysis for Teapot programs.

Checks performed (Sections 3-5 of the paper define the language rules):

- every ``State`` definition matches a declaration in the ``Protocol``
  block, with consistent parameters;
- states that take a ``CONT`` parameter (subroutine states) must be
  declared ``Transient``;
- handlers use the conventional ``(id : ID; Var info : INFO; src : NODE)``
  parameter prefix, optionally followed by payload parameters, and all
  handlers for the same message agree on the payload signature;
- ``Suspend`` targets a transient state and passes the freshly captured
  continuation to it; ``Resume`` is applied to a ``CONT`` value;
- names resolve (locals -> state params -> protocol vars/consts ->
  prelude) and expressions are simply typed.

The result is a :class:`CheckedProgram` carrying the symbol information
that the compiler middle end consumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.lang import ast
from repro.lang.builtins import (
    BUILTIN_CONSTS,
    BUILTIN_FUNCTIONS,
    BUILTIN_PROCEDURES,
    BUILTIN_TYPES,
    BuiltinSignature,
    EQUALITY_TYPES,
    FAULT_EVENTS,
    HANDLER_PARAM_TYPES,
    INT_LIKE_TYPES,
    T_BOOL,
    T_CONT,
    T_INT,
    T_STRING,
    types_compatible,
)
from repro.lang.errors import CheckError
from repro.lang.symbols import Scope, Symbol, SymbolKind

_ARITH_OPS = {"+", "-", "*", "/", "%"}
_COMPARE_OPS = {"<", "<=", ">", ">="}
_EQUALITY_OPS = {"=", "!="}
_LOGIC_OPS = {"And", "Or"}


@dataclass
class StateSig:
    """The checked signature of a protocol state."""

    name: str
    params: list[ast.Param]
    transient: bool
    location: object = None

    @property
    def cont_params(self) -> list[ast.Param]:
        return [p for p in self.params if p.type_name == T_CONT]

    @property
    def is_subroutine(self) -> bool:
        return bool(self.cont_params)


@dataclass
class CheckedProgram:
    """A type-checked program plus the tables the compiler needs."""

    program: ast.Program
    protocol_name: str
    states: dict[str, StateSig]
    messages: dict[str, tuple[str, ...]]  # message -> payload types
    info_vars: dict[str, str]             # per-block variable -> type
    consts: dict[str, tuple[str, ast.Expr]]
    functions: dict[str, BuiltinSignature]
    procedures: dict[str, BuiltinSignature]
    abstract_types: set[str]
    handler_scopes: dict[tuple[str, str], Scope] = field(default_factory=dict)
    suspend_targets: dict[str, int] = field(default_factory=dict)

    def state_def(self, name: str) -> ast.StateDef | None:
        return self.program.state_def(name)


class _HandlerChecker:
    """Checks one handler body: scoping, typing, suspend/resume rules."""

    def __init__(self, checked: CheckedProgram, state: ast.StateDef,
                 handler: ast.Handler, scope: Scope):
        self.checked = checked
        self.state = state
        self.handler = handler
        self.scope = scope

    def error(self, message: str, node) -> CheckError:
        return CheckError(
            f"in {self.state.state_name}.{self.handler.message_name}: {message}",
            getattr(node, "location", None),
        )

    # -- expression typing ---------------------------------------------------

    def type_of(self, expr: ast.Expr) -> str:
        if isinstance(expr, ast.IntLit):
            return T_INT
        if isinstance(expr, ast.BoolLit):
            return T_BOOL
        if isinstance(expr, ast.StrLit):
            return T_STRING
        if isinstance(expr, ast.NameRef):
            return self._type_of_name(expr)
        if isinstance(expr, ast.CallExpr):
            return self._type_of_call(expr)
        if isinstance(expr, ast.StateExpr):
            self.check_state_expr(expr)
            return "STATE"
        if isinstance(expr, ast.BinOp):
            return self._type_of_binop(expr)
        if isinstance(expr, ast.UnOp):
            return self._type_of_unop(expr)
        raise self.error(f"unknown expression form {expr!r}", expr)

    def _type_of_name(self, expr: ast.NameRef) -> str:
        symbol = self.scope.lookup(expr.name)
        if symbol is not None:
            return symbol.type_name
        if expr.name in self.checked.messages:
            return "MSGTAG"
        raise self.error(f"undefined name {expr.name!r}", expr)

    def _type_of_call(self, expr: ast.CallExpr) -> str:
        signature = self.checked.functions.get(expr.name)
        if signature is None:
            if expr.name in self.checked.procedures:
                raise self.error(
                    f"{expr.name!r} is a procedure and returns no value",
                    expr,
                )
            raise self.error(f"call to undefined function {expr.name!r}", expr)
        self._check_call_args(expr.name, signature, expr.args, expr)
        assert signature.return_type is not None
        return signature.return_type

    def _check_call_args(self, name: str, signature: BuiltinSignature,
                         args: list[ast.Expr], node) -> None:
        fixed = signature.fixed_param_types
        if signature.is_variadic:
            if len(args) < len(fixed):
                raise self.error(
                    f"{name} expects at least {len(fixed)} arguments, "
                    f"got {len(args)}",
                    node,
                )
        elif len(args) != len(fixed):
            raise self.error(
                f"{name} expects {len(fixed)} arguments, got {len(args)}",
                node,
            )
        for index, expected in enumerate(fixed):
            actual = self.type_of(args[index])
            if expected == "STATE":
                if actual != "STATE":
                    raise self.error(
                        f"argument {index + 1} of {name} must be a state "
                        f"constructor, got {actual}",
                        args[index],
                    )
                continue
            if not types_compatible(expected, actual):
                raise self.error(
                    f"argument {index + 1} of {name} has type {actual}, "
                    f"expected {expected}",
                    args[index],
                )
        # Variadic payload arguments must be simple values.
        for arg in args[len(fixed):]:
            actual = self.type_of(arg)
            if actual in ("STATE", T_CONT):
                raise self.error(
                    f"a {actual} value may not be passed as a message payload",
                    arg,
                )

    def _type_of_binop(self, expr: ast.BinOp) -> str:
        left = self.type_of(expr.left)
        right = self.type_of(expr.right)
        if expr.op in _ARITH_OPS:
            if left not in INT_LIKE_TYPES or right not in INT_LIKE_TYPES:
                raise self.error(
                    f"operator {expr.op!r} needs integer operands, "
                    f"got {left} and {right}",
                    expr,
                )
            return T_INT
        if expr.op in _COMPARE_OPS:
            if left not in INT_LIKE_TYPES or right not in INT_LIKE_TYPES:
                raise self.error(
                    f"operator {expr.op!r} needs integer operands, "
                    f"got {left} and {right}",
                    expr,
                )
            return T_BOOL
        if expr.op in _EQUALITY_OPS:
            comparable = (
                types_compatible(left, right) or types_compatible(right, left)
            )
            if not comparable:
                raise self.error(
                    f"cannot compare {left} with {right}", expr)
            if left not in EQUALITY_TYPES and left not in self.checked.abstract_types:
                raise self.error(
                    f"values of type {left} cannot be compared", expr)
            return T_BOOL
        if expr.op in _LOGIC_OPS:
            if left != T_BOOL or right != T_BOOL:
                raise self.error(
                    f"operator {expr.op!r} needs boolean operands, "
                    f"got {left} and {right}",
                    expr,
                )
            return T_BOOL
        raise self.error(f"unknown operator {expr.op!r}", expr)

    def _type_of_unop(self, expr: ast.UnOp) -> str:
        operand = self.type_of(expr.operand)
        if expr.op == "Not":
            if operand != T_BOOL:
                raise self.error(f"Not needs a boolean, got {operand}", expr)
            return T_BOOL
        if expr.op == "-":
            if operand not in INT_LIKE_TYPES:
                raise self.error(
                    f"unary minus needs an integer, got {operand}", expr)
            return T_INT
        raise self.error(f"unknown unary operator {expr.op!r}", expr)

    def check_state_expr(self, expr: ast.StateExpr) -> StateSig:
        sig = self.checked.states.get(expr.name)
        if sig is None:
            raise self.error(f"reference to undeclared state {expr.name!r}", expr)
        if len(expr.args) != len(sig.params):
            raise self.error(
                f"state {expr.name} takes {len(sig.params)} arguments, "
                f"got {len(expr.args)}",
                expr,
            )
        for param, arg in zip(sig.params, expr.args):
            actual = self.type_of(arg)
            if not types_compatible(param.type_name, actual):
                raise self.error(
                    f"state argument {param.name!r} of {expr.name} has type "
                    f"{actual}, expected {param.type_name}",
                    arg,
                )
        return sig

    # -- statement checking ----------------------------------------------------

    def check_body(self, stmts: list[ast.Stmt]) -> None:
        for stmt in stmts:
            self.check_stmt(stmt)

    def check_stmt(self, stmt: ast.Stmt) -> None:
        if isinstance(stmt, ast.Assign):
            self._check_assign(stmt)
        elif isinstance(stmt, ast.CallStmt):
            self._check_call_stmt(stmt)
        elif isinstance(stmt, ast.If):
            cond = self.type_of(stmt.cond)
            if cond != T_BOOL:
                raise self.error(f"If condition must be BOOL, got {cond}", stmt)
            self.check_body(stmt.then_body)
            self.check_body(stmt.else_body)
        elif isinstance(stmt, ast.While):
            cond = self.type_of(stmt.cond)
            if cond != T_BOOL:
                raise self.error(f"While condition must be BOOL, got {cond}", stmt)
            self.check_body(stmt.body)
        elif isinstance(stmt, ast.Suspend):
            self._check_suspend(stmt)
        elif isinstance(stmt, ast.Resume):
            cont = self.type_of(stmt.cont)
            if cont != T_CONT:
                raise self.error(
                    f"Resume needs a continuation, got {cont}", stmt)
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                raise self.error("handlers may not return a value", stmt)
        elif isinstance(stmt, ast.PrintStmt):
            for arg in stmt.args:
                self.type_of(arg)
        else:
            raise self.error(f"unknown statement form {stmt!r}", stmt)

    def _check_assign(self, stmt: ast.Assign) -> None:
        symbol = self.scope.lookup(stmt.target)
        if symbol is None:
            raise self.error(
                f"assignment to undefined name {stmt.target!r}", stmt)
        if not symbol.is_assignable:
            raise self.error(
                f"cannot assign to {stmt.target!r} (a {symbol.kind.value})",
                stmt,
            )
        actual = self.type_of(stmt.value)
        if not types_compatible(symbol.type_name, actual):
            raise self.error(
                f"cannot assign {actual} to {stmt.target!r} "
                f"of type {symbol.type_name}",
                stmt,
            )

    def _check_call_stmt(self, stmt: ast.CallStmt) -> None:
        signature = self.checked.procedures.get(stmt.name)
        if signature is None:
            if stmt.name in self.checked.functions:
                raise self.error(
                    f"function {stmt.name!r} used as a statement; "
                    "its result would be discarded",
                    stmt,
                )
            raise self.error(f"call to undefined procedure {stmt.name!r}", stmt)
        if stmt.name in ("Send", "SendBlk"):
            self._check_send(stmt, signature)
            return
        self._check_call_args(stmt.name, signature, stmt.args, stmt)

    def _check_send(self, stmt: ast.CallStmt, signature: BuiltinSignature) -> None:
        """Send payload arity/types must match the target message, when known."""
        self._check_call_args(stmt.name, signature, stmt.args, stmt)
        tag = stmt.args[1]
        if not isinstance(tag, ast.NameRef):
            return  # dynamic tag (e.g. forwarding MessageTag): unchecked
        payload_sig = self.checked.messages.get(tag.name)
        if payload_sig is None:
            if self.scope.lookup(tag.name) is not None:
                return  # a MSGTAG variable, not a literal tag
            raise self.error(f"Send of undeclared message {tag.name!r}", stmt)
        payload_args = stmt.args[3:]
        if len(payload_args) != len(payload_sig):
            raise self.error(
                f"message {tag.name} carries {len(payload_sig)} payload "
                f"word(s), but {len(payload_args)} were sent",
                stmt,
            )
        for index, (expected, arg) in enumerate(zip(payload_sig, payload_args)):
            actual = self.type_of(arg)
            if not types_compatible(expected, actual):
                raise self.error(
                    f"payload word {index + 1} of {tag.name} has type "
                    f"{actual}, expected {expected}",
                    arg,
                )

    def _check_suspend(self, stmt: ast.Suspend) -> None:
        # Bind the captured continuation first: the target state expression
        # references it (Suspend(L, Await{L})).
        existing = self.scope.lookup(stmt.cont_name)
        if existing is None:
            self.scope.declare(Symbol(stmt.cont_name, SymbolKind.CONT,
                                      T_CONT, stmt.location))
        elif existing.type_name != T_CONT:
            raise self.error(
                f"Suspend rebinds {stmt.cont_name!r}, which is already "
                f"a {existing.kind.value} of type {existing.type_name}",
                stmt,
            )
        target_sig = self.check_state_expr(stmt.target)
        if not target_sig.transient:
            raise self.error(
                f"Suspend target {stmt.target.name} must be a Transient "
                "(subroutine) state",
                stmt,
            )
        if not target_sig.is_subroutine:
            raise self.error(
                f"Suspend target {stmt.target.name} takes no CONT parameter",
                stmt,
            )
        # The continuation must actually be passed to the target state.
        passed = any(
            isinstance(arg, ast.NameRef) and arg.name == stmt.cont_name
            for arg in stmt.target.args
        )
        if not passed:
            raise self.error(
                f"captured continuation {stmt.cont_name!r} is not passed "
                f"to {stmt.target.name}; it could never be resumed",
                stmt,
            )
        self.checked.suspend_targets[stmt.target.name] = (
            self.checked.suspend_targets.get(stmt.target.name, 0) + 1)


def _collect_declarations(program: ast.Program) -> CheckedProgram:
    """Build the top-level tables and check declaration-level rules."""
    protocol = program.protocol
    abstract_types: set[str] = set()
    functions = dict(BUILTIN_FUNCTIONS)
    procedures = dict(BUILTIN_PROCEDURES)
    module_consts: dict[str, str] = {}

    known_types = set(BUILTIN_TYPES)
    for module in program.modules:
        for decl in module.decls:
            if isinstance(decl, ast.TypeDecl):
                if decl.name in known_types:
                    raise CheckError(
                        f"type {decl.name!r} redeclares a builtin type",
                        decl.location,
                    )
                known_types.add(decl.name)
                abstract_types.add(decl.name)
            elif isinstance(decl, ast.ConstDecl):
                module_consts[decl.name] = decl.type_name
            elif isinstance(decl, ast.FunctionDecl):
                if decl.name in functions or decl.name in procedures:
                    raise CheckError(
                        f"function {decl.name!r} redeclares a builtin",
                        decl.location,
                    )
                functions[decl.name] = BuiltinSignature(
                    decl.name,
                    tuple(p.type_name for p in decl.params),
                    decl.return_type,
                    f"module {module.name}",
                )
            elif isinstance(decl, ast.ProcedureDecl):
                if decl.name in functions or decl.name in procedures:
                    raise CheckError(
                        f"procedure {decl.name!r} redeclares a builtin",
                        decl.location,
                    )
                procedures[decl.name] = BuiltinSignature(
                    decl.name,
                    tuple(p.type_name for p in decl.params),
                    None,
                    f"module {module.name}",
                )

    # Validate declared types exist.
    def check_type(name: str, location) -> None:
        if name not in known_types:
            raise CheckError(f"unknown type {name!r}", location)

    for module in program.modules:
        for decl in module.decls:
            if isinstance(decl, ast.FunctionDecl):
                for param in decl.params:
                    check_type(param.type_name, decl.location)
                check_type(decl.return_type, decl.location)
            elif isinstance(decl, ast.ProcedureDecl):
                for param in decl.params:
                    check_type(param.type_name, decl.location)
            elif isinstance(decl, ast.ConstDecl):
                check_type(decl.type_name, decl.location)

    states: dict[str, StateSig] = {}
    messages: dict[str, tuple[str, ...]] = {}
    info_vars: dict[str, str] = {}
    consts: dict[str, tuple[str, ast.Expr]] = {}

    for decl in protocol.decls:
        if isinstance(decl, ast.StateDecl):
            if decl.name in states:
                raise CheckError(
                    f"state {decl.name!r} declared twice", decl.location)
            for param in decl.params:
                check_type(param.type_name, param.location)
            sig = StateSig(decl.name, decl.params, decl.transient, decl.location)
            if sig.is_subroutine and not decl.transient:
                raise CheckError(
                    f"state {decl.name!r} takes a CONT parameter and must "
                    "be declared Transient",
                    decl.location,
                )
            states[decl.name] = sig
        elif isinstance(decl, ast.MessageDecl):
            if decl.name in messages:
                raise CheckError(
                    f"message {decl.name!r} declared twice", decl.location)
            messages[decl.name] = ()
        elif isinstance(decl, ast.ProtoVarDecl):
            if decl.name in info_vars:
                raise CheckError(
                    f"protocol variable {decl.name!r} declared twice",
                    decl.location,
                )
            check_type(decl.type_name, decl.location)
            info_vars[decl.name] = decl.type_name
        elif isinstance(decl, ast.ProtoConstDef):
            if decl.name in consts:
                raise CheckError(
                    f"protocol constant {decl.name!r} declared twice",
                    decl.location,
                )
            if isinstance(decl.value, ast.IntLit):
                consts[decl.name] = (T_INT, decl.value)
            elif isinstance(decl.value, ast.BoolLit):
                consts[decl.name] = (T_BOOL, decl.value)
            else:
                raise CheckError(
                    f"protocol constant {decl.name!r} must be a literal",
                    decl.location,
                )

    # Fault events are implicitly declared messages.
    for fault in FAULT_EVENTS:
        messages.setdefault(fault, ())

    for name, type_name in module_consts.items():
        consts.setdefault(name, (type_name, ast.NameRef(name)))

    return CheckedProgram(
        program=program,
        protocol_name=protocol.name,
        states=states,
        messages=messages,
        info_vars=info_vars,
        consts=consts,
        functions=functions,
        procedures=procedures,
        abstract_types=abstract_types,
    )


def _infer_payload_signatures(checked: CheckedProgram) -> None:
    """Each message's payload signature is defined by its handlers.

    All handlers for a given message (across states) must agree on the
    number and types of payload parameters beyond the conventional
    ``(id, info, src)`` prefix.
    """
    seen: dict[str, tuple[tuple[str, ...], str]] = {}
    for state in checked.program.states:
        for handler in state.handlers:
            if handler.is_default:
                continue
            if handler.message_name not in checked.messages:
                # Leave undeclared messages to the per-handler check;
                # inferring a payload here would implicitly declare them.
                continue
            payload = tuple(p.type_name for p in handler.params[3:])
            where = f"{state.state_name}.{handler.message_name}"
            previous = seen.get(handler.message_name)
            if previous is not None and previous[0] != payload:
                raise CheckError(
                    f"handler {where} declares payload {payload} for "
                    f"message {handler.message_name}, but {previous[1]} "
                    f"declared {previous[0]}",
                    handler.location,
                )
            seen[handler.message_name] = (payload, where)
    for message, (payload, _) in seen.items():
        checked.messages[message] = payload


def _check_handler_signature(state: ast.StateDef, handler: ast.Handler) -> None:
    """Handlers must start with the conventional (ID, Var INFO, NODE) prefix."""
    where = f"{state.state_name}.{handler.message_name}"
    if len(handler.params) < len(HANDLER_PARAM_TYPES):
        raise CheckError(
            f"handler {where} must take at least the conventional "
            "(id : ID; Var info : INFO; src : NODE) parameters",
            handler.location,
        )
    for index, expected in enumerate(HANDLER_PARAM_TYPES):
        param = handler.params[index]
        if param.type_name != expected:
            raise CheckError(
                f"handler {where}: parameter {index + 1} ({param.name!r}) "
                f"must have type {expected}, got {param.type_name}",
                param.location,
            )
    if not handler.params[1].by_ref:
        raise CheckError(
            f"handler {where}: the INFO parameter must be declared Var",
            handler.params[1].location,
        )
    if handler.is_default and len(handler.params) > 3:
        raise CheckError(
            f"handler {where}: DEFAULT handlers take no payload parameters",
            handler.location,
        )


def check_program(program: ast.Program) -> CheckedProgram:
    """Run all semantic checks; returns the tables the compiler consumes.

    Raises :class:`~repro.lang.errors.CheckError` on the first violation.
    """
    checked = _collect_declarations(program)
    protocol = program.protocol

    # Every state definition must match a declaration, and vice versa.
    defined: set[str] = set()
    for state in program.states:
        if state.protocol_name and state.protocol_name != protocol.name:
            raise CheckError(
                f"state {state.state_name} belongs to protocol "
                f"{state.protocol_name!r}, expected {protocol.name!r}",
                state.location,
            )
        sig = checked.states.get(state.state_name)
        if sig is None:
            raise CheckError(
                f"state {state.state_name!r} is defined but never declared "
                "in the protocol block",
                state.location,
            )
        if state.state_name in defined:
            raise CheckError(
                f"state {state.state_name!r} is defined twice",
                state.location,
            )
        defined.add(state.state_name)
        declared = [(p.name, p.type_name) for p in sig.params]
        given = [(p.name, p.type_name) for p in state.params]
        if declared != given:
            raise CheckError(
                f"state {state.state_name!r} is defined with parameters "
                f"{given}, declared with {declared}",
                state.location,
            )

    for sig in checked.states.values():
        if sig.name not in defined:
            raise CheckError(
                f"state {sig.name!r} is declared but never defined",
                sig.location,
            )

    _infer_payload_signatures(checked)

    # Check each handler.
    for state in program.states:
        seen_messages: set[str] = set()
        for handler in state.handlers:
            where = f"{state.state_name}.{handler.message_name}"
            if handler.message_name in seen_messages:
                raise CheckError(
                    f"duplicate handler for {where}", handler.location)
            seen_messages.add(handler.message_name)
            if not handler.is_default and \
                    handler.message_name not in checked.messages:
                raise CheckError(
                    f"handler {where} for undeclared message "
                    f"{handler.message_name!r}",
                    handler.location,
                )
            _check_handler_signature(state, handler)

            scope = Scope(label=where)
            for param in state.params:
                scope.declare(Symbol(param.name, SymbolKind.STATE_PARAM,
                                     param.type_name, param.location))
            # Protocol-level names live logically outside the handler scope;
            # declare them first so handler params may shadow... the paper's
            # scoping is flat, so shadowing is an error instead: declare in
            # the same scope and let Scope.declare reject duplicates.
            for name, type_name in checked.info_vars.items():
                scope.declare(Symbol(name, SymbolKind.INFO_VAR, type_name))
            for name, (type_name, _value) in checked.consts.items():
                scope.declare(Symbol(name, SymbolKind.PROTO_CONST, type_name))
            for const in BUILTIN_CONSTS.values():
                scope.declare(Symbol(const.name, SymbolKind.BUILTIN_CONST,
                                     const.type_name))
            for param in handler.params:
                scope.declare(Symbol(param.name, SymbolKind.PARAM,
                                     param.type_name, param.location))
            for decl in handler.local_decls:
                if decl.type_name not in BUILTIN_TYPES and \
                        decl.type_name not in checked.abstract_types:
                    raise CheckError(
                        f"unknown type {decl.type_name!r}", decl.location)
                scope.declare(Symbol(decl.name, SymbolKind.LOCAL,
                                     decl.type_name, decl.location))

            checker = _HandlerChecker(checked, state, handler, scope)
            checker.check_body(handler.body)
            checked.handler_scopes[(state.state_name, handler.message_name)] = scope

    return checked
