"""Token kinds and keyword tables for the Teapot lexer.

The token set follows Appendix A of the paper.  Keywords are recognised
case-insensitively (the paper's examples mix ``Begin``/``begin`` and
``DEFAULT``), while identifiers remain case-sensitive.
"""

from __future__ import annotations

from enum import Enum, unique


@unique
class TokenKind(Enum):
    # Literals and identifiers
    IDENT = "identifier"
    INTLIT = "integer literal"
    STRLIT = "string literal"

    # Keywords
    KW_MODULE = "Module"
    KW_PROTOCOL = "Protocol"
    KW_STATE = "State"
    KW_MESSAGE = "Message"
    KW_BEGIN = "Begin"
    KW_END = "End"
    KW_TYPE = "Type"
    KW_CONST = "Const"
    KW_VAR = "Var"
    KW_FUNCTION = "Function"
    KW_PROCEDURE = "Procedure"
    KW_IF = "If"
    KW_THEN = "Then"
    KW_ELSE = "Else"
    KW_ENDIF = "Endif"
    KW_WHILE = "While"
    KW_DO = "Do"
    KW_SUSPEND = "Suspend"
    KW_RESUME = "Resume"
    KW_RETURN = "Return"
    KW_PRINT = "Print"
    KW_TRANSIENT = "Transient"
    KW_AND = "And"
    KW_OR = "Or"
    KW_NOT = "Not"
    KW_TRUE = "True"
    KW_FALSE = "False"

    # Punctuation
    LPAREN = "("
    RPAREN = ")"
    LBRACE = "{"
    RBRACE = "}"
    SEMI = ";"
    COMMA = ","
    COLON = ":"
    DOT = "."
    ASSIGN = ":="

    # Operators (the grammar's "sym-id")
    EQ = "="
    NE = "!="
    LT = "<"
    LE = "<="
    GT = ">"
    GE = ">="
    PLUS = "+"
    MINUS = "-"
    STAR = "*"
    SLASH = "/"
    PERCENT = "%"

    EOF = "end of input"


# Keyword lookup, keyed by lower-cased spelling.
KEYWORDS = {
    "module": TokenKind.KW_MODULE,
    "protocol": TokenKind.KW_PROTOCOL,
    "state": TokenKind.KW_STATE,
    "message": TokenKind.KW_MESSAGE,
    "begin": TokenKind.KW_BEGIN,
    "end": TokenKind.KW_END,
    "type": TokenKind.KW_TYPE,
    "const": TokenKind.KW_CONST,
    "var": TokenKind.KW_VAR,
    "function": TokenKind.KW_FUNCTION,
    "procedure": TokenKind.KW_PROCEDURE,
    "if": TokenKind.KW_IF,
    "then": TokenKind.KW_THEN,
    "else": TokenKind.KW_ELSE,
    "endif": TokenKind.KW_ENDIF,
    "while": TokenKind.KW_WHILE,
    "do": TokenKind.KW_DO,
    "suspend": TokenKind.KW_SUSPEND,
    "resume": TokenKind.KW_RESUME,
    "return": TokenKind.KW_RETURN,
    "print": TokenKind.KW_PRINT,
    "transient": TokenKind.KW_TRANSIENT,
    "and": TokenKind.KW_AND,
    "or": TokenKind.KW_OR,
    "not": TokenKind.KW_NOT,
    "true": TokenKind.KW_TRUE,
    "false": TokenKind.KW_FALSE,
}

# Multi-character punctuation, longest match first.
MULTI_CHAR_OPERATORS = [
    (":=", TokenKind.ASSIGN),
    ("!=", TokenKind.NE),
    ("<>", TokenKind.NE),
    ("<=", TokenKind.LE),
    (">=", TokenKind.GE),
    ("==", TokenKind.EQ),
]

SINGLE_CHAR_OPERATORS = {
    "(": TokenKind.LPAREN,
    ")": TokenKind.RPAREN,
    "{": TokenKind.LBRACE,
    "}": TokenKind.RBRACE,
    ";": TokenKind.SEMI,
    ",": TokenKind.COMMA,
    ":": TokenKind.COLON,
    ".": TokenKind.DOT,
    "=": TokenKind.EQ,
    "<": TokenKind.LT,
    ">": TokenKind.GT,
    "+": TokenKind.PLUS,
    "-": TokenKind.MINUS,
    "*": TokenKind.STAR,
    "/": TokenKind.SLASH,
    "%": TokenKind.PERCENT,
}

# Binary operators usable in expressions, with parser precedence
# (higher binds tighter).
BINARY_PRECEDENCE = {
    TokenKind.KW_OR: 1,
    TokenKind.KW_AND: 2,
    TokenKind.EQ: 3,
    TokenKind.NE: 3,
    TokenKind.LT: 4,
    TokenKind.LE: 4,
    TokenKind.GT: 4,
    TokenKind.GE: 4,
    TokenKind.PLUS: 5,
    TokenKind.MINUS: 5,
    TokenKind.STAR: 6,
    TokenKind.SLASH: 6,
    TokenKind.PERCENT: 6,
}

# Spelling used when pretty-printing operators back to source.
OPERATOR_SPELLING = {
    TokenKind.KW_OR: "Or",
    TokenKind.KW_AND: "And",
    TokenKind.EQ: "=",
    TokenKind.NE: "!=",
    TokenKind.LT: "<",
    TokenKind.LE: "<=",
    TokenKind.GT: ">",
    TokenKind.GE: ">=",
    TokenKind.PLUS: "+",
    TokenKind.MINUS: "-",
    TokenKind.STAR: "*",
    TokenKind.SLASH: "/",
    TokenKind.PERCENT: "%",
}
