"""Abstract syntax tree for the Teapot language (Appendix A of the paper).

A program is: support ``Module`` declarations (abstract types, constants,
and prototypes of externally supplied functions/procedures), one
``Protocol`` declaration (per-block variables, state and message
declarations), and a series of ``State`` definitions, each containing
``Message`` handlers.

Every node carries a :class:`~repro.lang.errors.SourceLocation` so the
checker and compiler can report positioned diagnostics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Union

from repro.lang.errors import SourceLocation

# Name of the catch-all handler (as in the paper's examples).
DEFAULT_MESSAGE = "DEFAULT"

_NOWHERE = SourceLocation(0, 0, "<generated>")


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


@dataclass
class Expr:
    """Base class for expression nodes."""

    location: SourceLocation = field(default=_NOWHERE, kw_only=True)


@dataclass
class IntLit(Expr):
    """An integer literal, e.g. ``42``."""

    value: int


@dataclass
class BoolLit(Expr):
    """``True`` or ``False``."""

    value: bool


@dataclass
class StrLit(Expr):
    """A string literal (used for Error/Print format strings)."""

    value: str


@dataclass
class NameRef(Expr):
    """A reference to a variable, parameter, constant, or builtin."""

    name: str


@dataclass
class CallExpr(Expr):
    """A function application ``id ( exprs )``."""

    name: str
    args: list[Expr]


@dataclass
class StateExpr(Expr):
    """A state constructor ``id { exprs }``.

    Appears as the target of ``Suspend``, as the argument of ``SetState``,
    and anywhere a state value is needed.  The arguments instantiate the
    state's declared parameters (typically a continuation).
    """

    name: str
    args: list[Expr]


@dataclass
class BinOp(Expr):
    """A binary operation; ``op`` is a source spelling like ``+`` or ``And``."""

    op: str
    left: Expr
    right: Expr


@dataclass
class UnOp(Expr):
    """A unary operation; ``op`` is ``Not`` or ``-``."""

    op: str
    operand: Expr


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------


@dataclass
class Stmt:
    """Base class for statement nodes."""

    location: SourceLocation = field(default=_NOWHERE, kw_only=True)


@dataclass
class Assign(Stmt):
    """``target := expr``."""

    target: str
    value: Expr


@dataclass
class CallStmt(Stmt):
    """A procedure call used as a statement, e.g. ``Send(home, REQ, id)``."""

    name: str
    args: list[Expr]


@dataclass
class If(Stmt):
    """``If (expr) Then stmts [Else stmts] Endif``."""

    cond: Expr
    then_body: list[Stmt]
    else_body: list[Stmt]


@dataclass
class While(Stmt):
    """``While (expr) Do stmts End``."""

    cond: Expr
    body: list[Stmt]


@dataclass
class Suspend(Stmt):
    """``Suspend(L, State{...L...})``.

    Captures the current continuation into ``cont_name``, transfers the
    block to the subroutine state built by ``target`` (whose arguments
    normally include ``cont_name``), and yields the processor.  Execution
    continues after this statement when some handler in the subroutine
    state executes ``Resume`` on the captured continuation.
    """

    cont_name: str
    target: StateExpr


@dataclass
class Resume(Stmt):
    """``Resume(C)`` -- restore the suspended handler held in ``C``."""

    cont: Expr


@dataclass
class Return(Stmt):
    """``Return [expr]`` -- finish the handler early."""

    value: Optional[Expr]


@dataclass
class PrintStmt(Stmt):
    """``Print(exprs)`` -- debugging output."""

    args: list[Expr]


# ---------------------------------------------------------------------------
# Declarations
# ---------------------------------------------------------------------------


@dataclass
class Param:
    """A formal parameter ``[Var] name : type``.

    ``by_ref`` corresponds to the grammar's ``Var`` prefix; the paper uses
    it for the per-block ``info`` record passed to every handler.
    """

    name: str
    type_name: str
    by_ref: bool = False
    location: SourceLocation = field(default=_NOWHERE)


@dataclass
class TypeDecl:
    """``Type id;`` -- an abstract type supplied by support code."""

    name: str
    location: SourceLocation = field(default=_NOWHERE)


@dataclass
class ConstDecl:
    """``Const id : type;`` inside a module -- an abstract constant."""

    name: str
    type_name: str
    location: SourceLocation = field(default=_NOWHERE)


@dataclass
class FunctionDecl:
    """``Function id(params) : rettype;`` -- an external function prototype."""

    name: str
    params: list[Param]
    return_type: str
    location: SourceLocation = field(default=_NOWHERE)


@dataclass
class ProcedureDecl:
    """``Procedure id(params);`` -- an external procedure prototype."""

    name: str
    params: list[Param]
    location: SourceLocation = field(default=_NOWHERE)


ModuleDecl = Union[TypeDecl, ConstDecl, FunctionDecl, ProcedureDecl]


@dataclass
class Module:
    """``Module id Begin ... End;`` -- support-code interface declarations."""

    name: str
    decls: list[ModuleDecl]
    location: SourceLocation = field(default=_NOWHERE)


@dataclass
class ProtoVarDecl:
    """``Var id : type;`` inside a protocol -- a per-block info field."""

    name: str
    type_name: str
    location: SourceLocation = field(default=_NOWHERE)


@dataclass
class ProtoConstDef:
    """``Const id := value;`` inside a protocol."""

    name: str
    value: Expr
    location: SourceLocation = field(default=_NOWHERE)


@dataclass
class StateDecl:
    """``State id {params} [Transient];`` -- declares a state's signature."""

    name: str
    params: list[Param]
    transient: bool = False
    location: SourceLocation = field(default=_NOWHERE)


@dataclass
class MessageDecl:
    """``Message id;`` -- declares a protocol message tag."""

    name: str
    location: SourceLocation = field(default=_NOWHERE)


ProtocolDecl = Union[ProtoVarDecl, ProtoConstDef, StateDecl, MessageDecl]


@dataclass
class Protocol:
    """``Protocol id Begin ... End;``"""

    name: str
    decls: list[ProtocolDecl]
    location: SourceLocation = field(default=_NOWHERE)

    @property
    def var_decls(self) -> list[ProtoVarDecl]:
        return [d for d in self.decls if isinstance(d, ProtoVarDecl)]

    @property
    def const_defs(self) -> list[ProtoConstDef]:
        return [d for d in self.decls if isinstance(d, ProtoConstDef)]

    @property
    def state_decls(self) -> list[StateDecl]:
        return [d for d in self.decls if isinstance(d, StateDecl)]

    @property
    def message_decls(self) -> list[MessageDecl]:
        return [d for d in self.decls if isinstance(d, MessageDecl)]


# ---------------------------------------------------------------------------
# State and handler definitions
# ---------------------------------------------------------------------------


@dataclass
class Handler:
    """``Message id (params) [Var decls] Begin stmts End;``

    ``message_name`` is ``DEFAULT`` for the catch-all handler.
    """

    message_name: str
    params: list[Param]
    local_decls: list[Param]
    body: list[Stmt]
    location: SourceLocation = field(default=_NOWHERE)

    @property
    def is_default(self) -> bool:
        return self.message_name == DEFAULT_MESSAGE


@dataclass
class StateDef:
    """``State protocol.state {params} Begin messages End;``"""

    protocol_name: str
    state_name: str
    params: list[Param]
    handlers: list[Handler]
    location: SourceLocation = field(default=_NOWHERE)

    def handler_for(self, message_name: str) -> Optional[Handler]:
        for handler in self.handlers:
            if handler.message_name == message_name:
                return handler
        return None

    @property
    def default_handler(self) -> Optional[Handler]:
        return self.handler_for(DEFAULT_MESSAGE)


@dataclass
class Program:
    """A complete Teapot compilation unit."""

    modules: list[Module]
    protocol: Protocol
    states: list[StateDef]
    location: SourceLocation = field(default=_NOWHERE)

    def state_def(self, name: str) -> Optional[StateDef]:
        for state in self.states:
            if state.state_name == name:
                return state
        return None


# ---------------------------------------------------------------------------
# Generic traversal helpers
# ---------------------------------------------------------------------------


def walk_expr(expr: Expr):
    """Yield ``expr`` and every sub-expression, pre-order."""
    yield expr
    if isinstance(expr, (CallExpr, StateExpr)):
        for arg in expr.args:
            yield from walk_expr(arg)
    elif isinstance(expr, BinOp):
        yield from walk_expr(expr.left)
        yield from walk_expr(expr.right)
    elif isinstance(expr, UnOp):
        yield from walk_expr(expr.operand)


def walk_stmts(stmts: list[Stmt]):
    """Yield every statement in ``stmts``, recursively, pre-order."""
    for stmt in stmts:
        yield stmt
        if isinstance(stmt, If):
            yield from walk_stmts(stmt.then_body)
            yield from walk_stmts(stmt.else_body)
        elif isinstance(stmt, While):
            yield from walk_stmts(stmt.body)


def stmt_exprs(stmt: Stmt) -> list[Expr]:
    """The immediate expressions of a statement (not recursive into bodies)."""
    if isinstance(stmt, Assign):
        return [stmt.value]
    if isinstance(stmt, CallStmt):
        return list(stmt.args)
    if isinstance(stmt, If):
        return [stmt.cond]
    if isinstance(stmt, While):
        return [stmt.cond]
    if isinstance(stmt, Suspend):
        return [stmt.target]
    if isinstance(stmt, Resume):
        return [stmt.cont]
    if isinstance(stmt, Return):
        return [stmt.value] if stmt.value is not None else []
    if isinstance(stmt, PrintStmt):
        return list(stmt.args)
    return []
