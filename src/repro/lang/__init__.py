"""The Teapot language front end: lexer, parser, and semantic checker."""

from repro.lang.lexer import tokenize, Token
from repro.lang.parser import parse_program
from repro.lang.typecheck import check_program
from repro.lang.errors import TeapotError, LexError, ParseError, CheckError

__all__ = [
    "tokenize",
    "Token",
    "parse_program",
    "check_program",
    "TeapotError",
    "LexError",
    "ParseError",
    "CheckError",
]
