"""Pretty-printer: renders an AST back to canonical Teapot source.

``parse(pretty(parse(src)))`` is structurally identical to ``parse(src)``
-- a property the test suite checks with hypothesis-generated programs.
"""

from __future__ import annotations

from repro.lang import ast

_INDENT = "  "


def _indent(lines: list[str], depth: int) -> list[str]:
    return [_INDENT * depth + line if line else line for line in lines]


def format_expr(expr: ast.Expr) -> str:
    """Render an expression to source text (fully parenthesised binops)."""
    if isinstance(expr, ast.IntLit):
        return str(expr.value)
    if isinstance(expr, ast.BoolLit):
        return "True" if expr.value else "False"
    if isinstance(expr, ast.StrLit):
        escaped = expr.value.replace("\\", "\\\\").replace('"', '\\"')
        escaped = escaped.replace("\n", "\\n").replace("\t", "\\t")
        return f'"{escaped}"'
    if isinstance(expr, ast.NameRef):
        return expr.name
    if isinstance(expr, ast.CallExpr):
        args = ", ".join(format_expr(a) for a in expr.args)
        return f"{expr.name}({args})"
    if isinstance(expr, ast.StateExpr):
        args = ", ".join(format_expr(a) for a in expr.args)
        return f"{expr.name}{{{args}}}"
    if isinstance(expr, ast.BinOp):
        return f"({format_expr(expr.left)} {expr.op} {format_expr(expr.right)})"
    if isinstance(expr, ast.UnOp):
        if expr.op == "Not":
            return f"(Not {format_expr(expr.operand)})"
        return f"(-{format_expr(expr.operand)})"
    raise TypeError(f"unknown expression node: {expr!r}")


def format_param(param: ast.Param) -> str:
    prefix = "Var " if param.by_ref else ""
    return f"{prefix}{param.name} : {param.type_name}"


def _format_stmt(stmt: ast.Stmt) -> list[str]:
    if isinstance(stmt, ast.Assign):
        return [f"{stmt.target} := {format_expr(stmt.value)};"]
    if isinstance(stmt, ast.CallStmt):
        args = ", ".join(format_expr(a) for a in stmt.args)
        return [f"{stmt.name}({args});"]
    if isinstance(stmt, ast.If):
        lines = [f"If ({format_expr(stmt.cond)}) Then"]
        lines += _indent(format_stmts(stmt.then_body), 1)
        if stmt.else_body:
            lines.append("Else")
            lines += _indent(format_stmts(stmt.else_body), 1)
        lines.append("Endif;")
        return lines
    if isinstance(stmt, ast.While):
        lines = [f"While ({format_expr(stmt.cond)}) Do"]
        lines += _indent(format_stmts(stmt.body), 1)
        lines.append("End;")
        return lines
    if isinstance(stmt, ast.Suspend):
        return [f"Suspend({stmt.cont_name}, {format_expr(stmt.target)});"]
    if isinstance(stmt, ast.Resume):
        return [f"Resume({format_expr(stmt.cont)});"]
    if isinstance(stmt, ast.Return):
        if stmt.value is None:
            return ["Return;"]
        return [f"Return {format_expr(stmt.value)};"]
    if isinstance(stmt, ast.PrintStmt):
        args = ", ".join(format_expr(a) for a in stmt.args)
        return [f"Print({args});"]
    raise TypeError(f"unknown statement node: {stmt!r}")


def format_stmts(stmts: list[ast.Stmt]) -> list[str]:
    lines: list[str] = []
    for stmt in stmts:
        lines.extend(_format_stmt(stmt))
    return lines


def _format_handler(handler: ast.Handler) -> list[str]:
    params = "; ".join(format_param(p) for p in handler.params)
    head = f"Message {handler.message_name}({params})"
    lines = [head]
    if handler.local_decls:
        lines.append("Var")
        for decl in handler.local_decls:
            lines.append(f"{_INDENT}{decl.name} : {decl.type_name};")
    lines.append("Begin")
    lines += _indent(format_stmts(handler.body), 1)
    lines.append("End;")
    return lines


def _format_state_def(state: ast.StateDef) -> list[str]:
    params = "; ".join(format_param(p) for p in state.params)
    qualifier = f"{state.protocol_name}." if state.protocol_name else ""
    lines = [f"State {qualifier}{state.state_name}{{{params}}}", "Begin"]
    for handler in state.handlers:
        lines += _indent(_format_handler(handler), 1)
        lines.append("")
    if lines[-1] == "":
        lines.pop()
    lines.append("End;")
    return lines


def _format_module(module: ast.Module) -> list[str]:
    lines = [f"Module {module.name}", "Begin"]
    for decl in module.decls:
        if isinstance(decl, ast.TypeDecl):
            lines.append(f"{_INDENT}Type {decl.name};")
        elif isinstance(decl, ast.ConstDecl):
            lines.append(f"{_INDENT}Const {decl.name} : {decl.type_name};")
        elif isinstance(decl, ast.FunctionDecl):
            params = "; ".join(format_param(p) for p in decl.params)
            lines.append(
                f"{_INDENT}Function {decl.name}({params}) : {decl.return_type};")
        elif isinstance(decl, ast.ProcedureDecl):
            params = "; ".join(format_param(p) for p in decl.params)
            lines.append(f"{_INDENT}Procedure {decl.name}({params});")
        else:
            raise TypeError(f"unknown module declaration: {decl!r}")
    lines.append("End;")
    return lines


def _format_protocol(protocol: ast.Protocol) -> list[str]:
    lines = [f"Protocol {protocol.name}", "Begin"]
    for decl in protocol.decls:
        if isinstance(decl, ast.ProtoVarDecl):
            lines.append(f"{_INDENT}Var {decl.name} : {decl.type_name};")
        elif isinstance(decl, ast.ProtoConstDef):
            lines.append(f"{_INDENT}Const {decl.name} := {format_expr(decl.value)};")
        elif isinstance(decl, ast.StateDecl):
            params = "; ".join(format_param(p) for p in decl.params)
            suffix = " Transient" if decl.transient else ""
            lines.append(f"{_INDENT}State {decl.name}{{{params}}}{suffix};")
        elif isinstance(decl, ast.MessageDecl):
            lines.append(f"{_INDENT}Message {decl.name};")
        else:
            raise TypeError(f"unknown protocol declaration: {decl!r}")
    lines.append("End;")
    return lines


def format_program(program: ast.Program) -> str:
    """Render a complete program back to Teapot source text."""
    lines: list[str] = []
    for module in program.modules:
        lines += _format_module(module)
        lines.append("")
    lines += _format_protocol(program.protocol)
    lines.append("")
    for state in program.states:
        lines += _format_state_def(state)
        lines.append("")
    return "\n".join(lines).rstrip() + "\n"
