"""Source-located error reporting for the Teapot front end.

All front-end errors derive from :class:`TeapotError` and carry an
optional :class:`SourceLocation` so that callers (the CLI, tests, and the
compiler pipeline) can render ``file:line:column`` diagnostics uniformly.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class SourceLocation:
    """A position in a Teapot source file (1-based line and column)."""

    line: int
    column: int
    filename: str = "<string>"

    def __str__(self) -> str:
        return f"{self.filename}:{self.line}:{self.column}"


class TeapotError(Exception):
    """Base class for every error raised by the Teapot system."""

    def __init__(self, message: str, location: SourceLocation | None = None):
        self.message = message
        self.location = location
        super().__init__(str(self))

    def __str__(self) -> str:
        if self.location is not None:
            return f"{self.location}: {self.message}"
        return self.message


class LexError(TeapotError):
    """Raised when the lexer encounters an unrecognised character."""


class ParseError(TeapotError):
    """Raised when the parser encounters an unexpected token."""


class CheckError(TeapotError):
    """Raised when semantic analysis rejects a well-formed parse tree."""


class CompileError(TeapotError):
    """Raised by the middle end (splitting, liveness, code generation)."""


class RuntimeProtocolError(TeapotError):
    """Raised when a compiled protocol misbehaves at execution time.

    Examples: an ``Error`` handler fires, a ``Resume`` is applied to a
    continuation that was already consumed, or a message arrives for a
    state with no handler and no DEFAULT.
    """


class SimulationLimitError(RuntimeProtocolError):
    """The simulator's ``max_events`` budget was exhausted.

    Usually a livelock (a request/nack cycle that never settles) rather
    than a protocol-semantics error; the message carries the simulated
    cycle reached and the number of events still pending so the run can
    be diagnosed without re-running under a tracer.
    """


def format_error_with_context(error: TeapotError, source: str) -> str:
    """Render ``error`` with a caret pointing into ``source``.

    Produces a GCC-style two-line context snippet::

        <file>:<line>:<col>: <message>
            Send(home, UPGRADE_REQ id);
                               ^
    """
    if error.location is None:
        return str(error)
    lines = source.splitlines()
    if not (1 <= error.location.line <= len(lines)):
        return str(error)
    src_line = lines[error.location.line - 1]
    caret = " " * (error.location.column - 1) + "^"
    return f"{error}\n    {src_line}\n    {caret}"
