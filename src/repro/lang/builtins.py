"""The Teapot prelude: built-in types, constants, and Tempest operations.

The paper keeps the language small by pushing data manipulation into
"support routines" supplied outside the protocol (Section 4).  A standard
set of those routines -- the Tempest interface operations (Send,
AccessChange, ...) plus sharer-set bookkeeping -- is needed by every
protocol, so this module declares their signatures once as a prelude.
The checker types calls against these signatures; executable semantics
live in :mod:`repro.runtime.builtins`, and the Mur-phi/C back ends emit
per-target implementations or externs for them.

Protocol-specific support routines can still be declared in ``Module``
blocks and supplied to the runtime through a support registry.
"""

from __future__ import annotations

from dataclasses import dataclass

# ---------------------------------------------------------------------------
# Types
# ---------------------------------------------------------------------------

# Core value types.
T_INT = "INT"
T_BOOL = "BOOL"
T_STRING = "STRING"

# Protocol-domain types.
T_CONT = "CONT"          # a captured continuation
T_NODE = "NODE"          # a processor number
T_ID = "ID"              # a shared-memory block identifier
T_INFO = "INFO"          # the per-block protocol record
T_MSGTAG = "MSGTAG"      # a message tag
T_ACCESS = "ACCESSMODE"  # an access-control change request
T_VALUE = "VALUE"        # a machine word read from / written to a block
T_ADDR = "ADDR"          # a word offset within a block
T_SHARERS = "SharerList"  # a set of sharer nodes

BUILTIN_TYPES = frozenset({
    T_INT, T_BOOL, T_STRING, T_CONT, T_NODE, T_ID, T_INFO, T_MSGTAG,
    T_ACCESS, T_VALUE, T_ADDR, T_SHARERS,
})

# Types that behave like integers for literals and arithmetic.
INT_LIKE_TYPES = frozenset({T_INT, T_VALUE, T_ADDR})

# Types whose values may be compared with = and != .
EQUALITY_TYPES = frozenset({
    T_INT, T_BOOL, T_VALUE, T_ADDR, T_NODE, T_ID, T_MSGTAG, T_STRING,
})


def types_compatible(expected: str, actual: str) -> bool:
    """Assignment/argument compatibility (int-like types interconvert)."""
    if expected == actual:
        return True
    return expected in INT_LIKE_TYPES and actual in INT_LIKE_TYPES


# ---------------------------------------------------------------------------
# Constants
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class BuiltinConst:
    name: str
    type_name: str
    doc: str


BUILTIN_CONSTS = {
    c.name: c
    for c in [
        BuiltinConst("MyNode", T_NODE, "the node executing the handler"),
        BuiltinConst("Nobody", T_NODE, "the distinguished null node"),
        BuiltinConst("MessageTag", T_MSGTAG, "tag of the message being handled"),
        # Access-control change requests (Blizzard/Tempest naming).
        BuiltinConst("Blk_Invalidate", T_ACCESS, "drop all access to the block"),
        BuiltinConst("Blk_Upgrade_RO", T_ACCESS, "grant read-only access"),
        BuiltinConst("Blk_Upgrade_RW", T_ACCESS, "grant read-write access"),
        BuiltinConst("Blk_Downgrade_RO", T_ACCESS, "reduce to read-only access"),
    ]
}


# ---------------------------------------------------------------------------
# Functions and procedures
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class BuiltinSignature:
    """Type signature of a prelude routine.

    ``param_types`` may end with the pseudo-type ``...`` meaning "zero or
    more further arguments of any simple type" (used by Send and Error,
    whose payloads vary by message).  ``return_type`` is None for
    procedures.
    """

    name: str
    param_types: tuple[str, ...]
    return_type: str | None
    doc: str

    @property
    def is_variadic(self) -> bool:
        return bool(self.param_types) and self.param_types[-1] == "..."

    @property
    def fixed_param_types(self) -> tuple[str, ...]:
        if self.is_variadic:
            return self.param_types[:-1]
        return self.param_types


def _sig(name: str, params: tuple[str, ...], ret: str | None, doc: str):
    return BuiltinSignature(name, params, ret, doc)


BUILTIN_FUNCTIONS = {
    s.name: s
    for s in [
        _sig("HomeNode", (T_ID,), T_NODE, "home node of a block"),
        _sig("IsHome", (T_ID,), T_BOOL, "does this node own the directory entry"),
        _sig("Msg_To_Str", (T_MSGTAG,), T_STRING, "printable name of a tag"),
        _sig("NodeToInt", (T_NODE,), T_INT, "processor number as an integer"),
        _sig("IntToNode", (T_INT,), T_NODE, "integer as a processor number"),
        # Sharer-set bookkeeping on the block's info record.
        _sig("IsEmptySharers", (T_INFO,), T_BOOL, "is the sharer set empty"),
        _sig("CountSharers", (T_INFO,), T_INT, "number of sharers"),
        _sig("HasSharer", (T_INFO, T_NODE), T_BOOL, "membership test"),
        _sig("PopSharer", (T_INFO,), T_NODE, "remove and return some sharer"),
        _sig("NthSharer", (T_INFO, T_INT), T_NODE,
             "the i-th sharer in deterministic order (for iteration)"),
        # Block data access (used by Compare&Swap and data-value checks).
        _sig("ReadWord", (T_ID, T_ADDR), T_VALUE, "read a word of block data"),
        # Message payload accessors.
        _sig("MsgWord", (T_INT,), T_VALUE, "nth word of the current payload"),
    ]
}

BUILTIN_PROCEDURES = {
    s.name: s
    for s in [
        # Tempest messaging.
        _sig("Send", (T_NODE, T_MSGTAG, T_ID, "..."), None,
             "send a control message (optional payload words)"),
        _sig("SendBlk", (T_NODE, T_MSGTAG, T_ID, "..."), None,
             "send a message carrying the block's data"),
        # Block bookkeeping.
        _sig("SetState", (T_INFO, "STATE"), None,
             "move the block to a new protocol state"),
        _sig("AccessChange", (T_ID, T_ACCESS), None,
             "change the block's access-control tag"),
        _sig("RecvData", (T_ID, T_ACCESS), None,
             "install the arriving message's data and change access"),
        _sig("WriteWord", (T_ID, T_ADDR, T_VALUE), None,
             "write a word of block data"),
        # Deferred-message machinery (Section 2's advocated policy).
        _sig("Enqueue", (T_MSGTAG, T_ID, T_INFO, T_NODE), None,
             "queue the current message for redelivery after the next "
             "state change"),
        _sig("RetryQueued", (T_INFO,), None,
             "redeliver this block's queued messages after the current "
             "action, even without a state change"),
        _sig("Nack", (T_NODE, T_MSGTAG, T_ID), None,
             "negatively acknowledge the current message"),
        # Processor control.
        _sig("WakeUp", (T_ID,), None,
             "unblock the faulting processor waiting on this block"),
        _sig("Error", (T_STRING, "..."), None,
             "protocol error: abort execution / fail verification"),
        # Sharer-set updates.
        _sig("AddSharer", (T_INFO, T_NODE), None, "add a node to the sharer set"),
        _sig("DelSharer", (T_INFO, T_NODE), None, "remove a node"),
        _sig("ClearSharers", (T_INFO,), None, "empty the sharer set"),
    ]
}

# Fault events delivered by Tempest access control rather than by another
# node.  These arrive "from" the local node and may be raised by the
# simulator when an application load/store traps.
FAULT_EVENTS = {
    "RD_FAULT": "load to an invalid block",
    "WR_FAULT": "store to an invalid block",
    "WR_RO_FAULT": "store to a read-only block",
}

# The conventional handler parameter signature: every handler receives the
# block id, its info record (by reference), and the sending node.
HANDLER_PARAM_TYPES = (T_ID, T_INFO, T_NODE)
