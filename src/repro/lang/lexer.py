"""A hand-written lexer for the Teapot language.

Comments come in two forms: ``--`` to end of line (Pascal/Mur-phi style,
matching the paper's lineage) and ``/* ... */`` block comments (the paper
shows protocols maintained alongside C support code).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.lang.errors import LexError, SourceLocation
from repro.lang.tokens import (
    KEYWORDS,
    MULTI_CHAR_OPERATORS,
    SINGLE_CHAR_OPERATORS,
    TokenKind,
)


@dataclass(frozen=True)
class Token:
    """A single lexical token with its source location."""

    kind: TokenKind
    text: str
    location: SourceLocation

    def __repr__(self) -> str:
        return f"Token({self.kind.name}, {self.text!r}, {self.location})"


class _Scanner:
    """Cursor over the source text that tracks line/column positions."""

    def __init__(self, source: str, filename: str):
        self.source = source
        self.filename = filename
        self.pos = 0
        self.line = 1
        self.column = 1

    def at_end(self) -> bool:
        return self.pos >= len(self.source)

    def peek(self, offset: int = 0) -> str:
        index = self.pos + offset
        if index >= len(self.source):
            return ""
        return self.source[index]

    def advance(self, count: int = 1) -> None:
        for _ in range(count):
            if self.at_end():
                return
            if self.source[self.pos] == "\n":
                self.line += 1
                self.column = 1
            else:
                self.column += 1
            self.pos += 1

    def location(self) -> SourceLocation:
        return SourceLocation(self.line, self.column, self.filename)

    def starts_with(self, text: str) -> bool:
        return self.source.startswith(text, self.pos)


def _skip_trivia(scanner: _Scanner) -> None:
    """Consume whitespace and comments between tokens."""
    while not scanner.at_end():
        char = scanner.peek()
        if char in " \t\r\n":
            scanner.advance()
        elif scanner.starts_with("--"):
            while not scanner.at_end() and scanner.peek() != "\n":
                scanner.advance()
        elif scanner.starts_with("/*"):
            start = scanner.location()
            scanner.advance(2)
            while not scanner.at_end() and not scanner.starts_with("*/"):
                scanner.advance()
            if scanner.at_end():
                raise LexError("unterminated block comment", start)
            scanner.advance(2)
        else:
            return


def _lex_identifier(scanner: _Scanner) -> Token:
    start = scanner.location()
    chars = []
    while not scanner.at_end() and (scanner.peek().isalnum() or scanner.peek() == "_"):
        chars.append(scanner.peek())
        scanner.advance()
    text = "".join(chars)
    kind = KEYWORDS.get(text.lower(), TokenKind.IDENT)
    return Token(kind, text, start)


def _lex_number(scanner: _Scanner) -> Token:
    start = scanner.location()
    chars = []
    while not scanner.at_end() and scanner.peek().isdigit():
        chars.append(scanner.peek())
        scanner.advance()
    if not scanner.at_end() and (scanner.peek().isalpha() or scanner.peek() == "_"):
        raise LexError(
            f"identifier may not start with a digit: "
            f"{''.join(chars)}{scanner.peek()}...",
            start,
        )
    return Token(TokenKind.INTLIT, "".join(chars), start)


def _lex_string(scanner: _Scanner) -> Token:
    start = scanner.location()
    quote = scanner.peek()
    scanner.advance()
    chars = []
    while not scanner.at_end() and scanner.peek() != quote:
        if scanner.peek() == "\n":
            raise LexError("newline in string literal", start)
        if scanner.peek() == "\\" and scanner.peek(1) in (quote, "\\", "n", "t"):
            escape = scanner.peek(1)
            chars.append({"n": "\n", "t": "\t"}.get(escape, escape))
            scanner.advance(2)
        else:
            chars.append(scanner.peek())
            scanner.advance()
    if scanner.at_end():
        raise LexError("unterminated string literal", start)
    scanner.advance()  # closing quote
    return Token(TokenKind.STRLIT, "".join(chars), start)


def _lex_operator(scanner: _Scanner) -> Token:
    start = scanner.location()
    for spelling, kind in MULTI_CHAR_OPERATORS:
        if scanner.starts_with(spelling):
            scanner.advance(len(spelling))
            return Token(kind, spelling, start)
    char = scanner.peek()
    kind = SINGLE_CHAR_OPERATORS.get(char)
    if kind is None:
        raise LexError(f"unexpected character {char!r}", start)
    scanner.advance()
    return Token(kind, char, start)


def iter_tokens(source: str, filename: str = "<string>") -> Iterator[Token]:
    """Yield the tokens of ``source``, ending with a single EOF token."""
    scanner = _Scanner(source, filename)
    while True:
        _skip_trivia(scanner)
        if scanner.at_end():
            yield Token(TokenKind.EOF, "", scanner.location())
            return
        char = scanner.peek()
        if char.isalpha() or char == "_":
            yield _lex_identifier(scanner)
        elif char.isdigit():
            yield _lex_number(scanner)
        elif char in "'\"":
            yield _lex_string(scanner)
        else:
            yield _lex_operator(scanner)


def tokenize(source: str, filename: str = "<string>") -> list[Token]:
    """Lex ``source`` into a complete token list (EOF token last)."""
    return list(iter_tokens(source, filename))
