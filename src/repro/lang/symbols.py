"""Symbol tables for Teapot semantic analysis.

Name resolution inside a handler proceeds outward through four scopes:

1. handler locals and parameters,
2. the enclosing state's parameters (typically a continuation),
3. the protocol's per-block variables (info fields) and constants,
4. the prelude (built-in constants and routines).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum, unique
from typing import Optional

from repro.lang.errors import CheckError, SourceLocation


@unique
class SymbolKind(Enum):
    LOCAL = "local variable"
    PARAM = "handler parameter"
    STATE_PARAM = "state parameter"
    INFO_VAR = "protocol variable"
    PROTO_CONST = "protocol constant"
    BUILTIN_CONST = "builtin constant"
    MODULE_CONST = "module constant"
    CONT = "continuation"          # bound by Suspend


@dataclass(frozen=True)
class Symbol:
    """A resolved name with its kind and type."""

    name: str
    kind: SymbolKind
    type_name: str
    location: SourceLocation | None = None

    @property
    def is_assignable(self) -> bool:
        return self.kind in (
            SymbolKind.LOCAL,
            SymbolKind.PARAM,
            SymbolKind.INFO_VAR,
            SymbolKind.CONT,
        )


class Scope:
    """A single lexical scope; chains to an enclosing parent scope."""

    def __init__(self, parent: Optional["Scope"] = None, label: str = ""):
        self.parent = parent
        self.label = label
        self._symbols: dict[str, Symbol] = {}

    def declare(self, symbol: Symbol) -> None:
        """Add ``symbol``; duplicate names within one scope are errors."""
        existing = self._symbols.get(symbol.name)
        if existing is not None:
            raise CheckError(
                f"duplicate declaration of {symbol.name!r} "
                f"(already declared as a {existing.kind.value})",
                symbol.location,
            )
        self._symbols[symbol.name] = symbol

    def lookup_local(self, name: str) -> Optional[Symbol]:
        return self._symbols.get(name)

    def lookup(self, name: str) -> Optional[Symbol]:
        scope: Optional[Scope] = self
        while scope is not None:
            symbol = scope._symbols.get(name)
            if symbol is not None:
                return symbol
            scope = scope.parent
        return None

    def symbols(self) -> list[Symbol]:
        return list(self._symbols.values())

    def __contains__(self, name: str) -> bool:
        return self.lookup(name) is not None
