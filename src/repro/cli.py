"""The ``teapot`` command-line interface.

Subcommands::

    teapot check <file.tea>              parse and type-check
    teapot compile <file.tea> [--target python|c|murphi] [-O0|-O1|-O2]
    teapot fmt <file.tea> [-i]           canonical pretty-printing
    teapot info <file.tea>               compiled-protocol summary
    teapot verify <name|file.tea> [...]  model-check (--progress reporting,
                                         --liveness starvation check,
                                         --trace-out counterexample JSONL)
    teapot run <name|file.tea> <workload>  simulate a Table 1/2 workload
                                         (--trace/--trace-format/--metrics)
    teapot report <metrics.json>         pretty-print a metrics export
    teapot analyze causal <trace>        causal chain ending at an event
    teapot analyze critical-path <trace> per-fault wait decomposition
    teapot analyze coverage ...          handler coverage (trace/verify)
    teapot analyze check-profile <p>     render a verify --profile-out file
    teapot analyze atlas <atlas>         render a verify --atlas-out file
    teapot analyze diff <a> <b>          compare traces/coverage/profiles/
                                         atlases
    teapot graph <name|file.tea>         state graph (text or dot)
    teapot list                          registered protocols
"""

from __future__ import annotations

import argparse
import sys

from repro import api
from repro.api import CheckOptions, CompileOptions, FaultOptions, SimOptions
from repro.backends import emit_c, emit_murphi, emit_python
from repro.faults import FaultBudget, FaultPlanError
from repro.lang.errors import (
    RuntimeProtocolError,
    TeapotError,
    format_error_with_context,
)
from repro.lang.parser import parse_program
from repro.lang.typecheck import check_program
from repro.runtime.protocol import OptLevel
from repro.protocols import PROTOCOLS
from repro.verify import (
    CheckpointError,
    WorkerLostError,
    events_for_protocol,
)
from repro.analysis import build_state_graph


def _load(target: str, opt_level: OptLevel):
    """Compile a registered protocol name or a .tea file path."""
    options = CompileOptions(opt_level=opt_level)
    return api.compile_protocol(target, options), target


def _check_options(args, name: str, workers: int = 0,
                   **extra) -> CheckOptions:
    """CLI verify/coverage flags -> a CheckOptions record.

    Events and coherence follow the registry *name* the user typed
    (a ``.tea`` path falls back to the Stache event loop), matching the
    historical CLI behaviour.
    """
    return CheckOptions(
        nodes=args.nodes,
        addresses=args.addresses,
        reorder=args.reorder,
        max_states=args.max_states,
        workers=workers,
        events=events_for_protocol(name if name in PROTOCOLS else "stache"),
        coherent=not name.startswith("buffered"),
        **extra)


def _opt_level(args) -> OptLevel:
    if args.O0:
        return OptLevel.O0
    if args.O1:
        return OptLevel.O1
    return OptLevel.O2


def _add_opt_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("-O0", action="store_true",
                        help="no optimisation (save the whole frame)")
    parser.add_argument("-O1", action="store_true",
                        help="live-variable analysis only")
    parser.add_argument("-O2", action="store_true",
                        help="liveness + constant continuations (default)")


def cmd_check(args) -> int:
    with open(args.file) as handle:
        source = handle.read()
    try:
        check_program(parse_program(source, args.file))
    except TeapotError as error:
        print(format_error_with_context(error, source), file=sys.stderr)
        return 1
    print(f"{args.file}: OK")
    return 0


def cmd_compile(args) -> int:
    protocol, _name = _load(args.file, _opt_level(args))
    emitters = {"python": emit_python, "c": emit_c, "murphi": emit_murphi}
    text = emitters[args.target](protocol)
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(text)
        print(f"wrote {args.output} ({len(text.splitlines())} lines)")
    else:
        print(text, end="")
    return 0


def cmd_fmt(args) -> int:
    from repro.lang.pretty import format_program

    with open(args.file) as handle:
        source = handle.read()
    try:
        program = parse_program(source, args.file)
        check_program(program)
    except TeapotError as error:
        print(format_error_with_context(error, source), file=sys.stderr)
        return 1
    text = format_program(program)
    if args.in_place:
        with open(args.file, "w") as handle:
            handle.write(text)
        print(f"formatted {args.file}")
    else:
        print(text, end="")
    return 0


def cmd_info(args) -> int:
    protocol, _name = _load(args.file, _opt_level(args))
    print(protocol.describe())
    return 0


def _parse_fault_budget(spec) -> "FaultBudget | None":
    if not spec:
        return None
    try:
        return FaultBudget.parse(spec)
    except (FaultPlanError, ValueError) as error:
        raise TeapotError(f"--faults {spec!r}: {error}") from None


def cmd_verify(args) -> int:
    protocol, name = _load(args.protocol, _opt_level(args))
    options = _check_options(
        args, name,
        workers=args.workers,
        liveness=args.liveness,
        fingerprints=args.fingerprints,
        reduction=api.ReductionOptions(symmetry=args.symmetry,
                                       por=args.por),
        progress=api.ProgressOptions(enabled=args.progress,
                                     every=args.progress_every),
        checkpoint=api.CheckpointOptions(
            out=args.checkpoint_out,
            resume=args.resume,
            interval_waves=args.checkpoint_every_waves,
            interval_seconds=args.checkpoint_every_seconds,
            keep_last=args.checkpoint_keep),
        budget=api.BudgetOptions(
            deadline_seconds=args.deadline,
            max_visited_bytes=args.max_visited_bytes),
        on_worker_loss=args.on_worker_loss,
        worker_stall_timeout=args.worker_stall_timeout,
        faults=_parse_fault_budget(args.faults),
        artifacts=api.ArtifactOptions(profile=bool(args.profile_out),
                                      atlas=bool(args.atlas_out)),
    )
    try:
        result = api.check(protocol, options)
    except KeyboardInterrupt:
        if args.checkpoint_out:
            print(f"\ninterrupted; resumable checkpoint written to "
                  f"{args.checkpoint_out} (continue with --resume)",
                  file=sys.stderr)
            return 130
        raise
    except (CheckpointError, WorkerLostError, ValueError) as error:
        # Bad checkpoint files, dead workers under --on-worker-loss
        # fail, and rejected option combinations are outcomes, not
        # crashes: one readable line, no traceback.
        print(f"error: {error}", file=sys.stderr)
        return 1
    print(result.summary())
    stop = result.stop_reason
    if stop is not None:
        reason = {
            "interrupted": "interrupted (SIGINT); the completed wave "
                           "was drained first",
            "deadline": f"wall-clock budget reached "
                        f"(--deadline {args.deadline})",
            "memory": "visited-set byte budget reached "
                      f"(--max-visited-bytes {args.max_visited_bytes})",
            "worker_lost": f"gave up re-sharding after "
                           f"{result.worker_losses} worker "
                           "losses; result covers the last "
                           "consistent cut",
        }.get(stop, stop)
        note = f"note: stopped early: {reason}"
        if args.checkpoint_out:
            note += (f"; a resumable checkpoint is at "
                     f"{args.checkpoint_out} (continue with --resume "
                     f"{args.checkpoint_out})")
        print(note, file=sys.stderr)
        if stop == "interrupted":
            return 130
    elif not result.exhausted:
        note = (f"note: exploration truncated at "
                f"{result.states_explored} states "
                f"(--max-states {args.max_states}): PASS covers only "
                "the explored prefix, not the full state space")
        if args.checkpoint_out:
            note += f"; resume with --resume {args.checkpoint_out}"
        print(note)
    from repro.obs.analyze import coverage_from_checker

    coverage = coverage_from_checker(protocol, result)
    print(coverage.summary_line())
    if args.coverage_out:
        coverage.save(args.coverage_out)
        print(f"wrote coverage report to {args.coverage_out}",
              file=sys.stderr)
    if args.profile_out and result.profile is not None:
        result.profile.save(args.profile_out)
        print(f"wrote check profile to {args.profile_out} "
              f"(render with `teapot analyze check-profile "
              f"{args.profile_out}`)", file=sys.stderr)
    if args.atlas_out and result.atlas is not None:
        result.atlas.save(args.atlas_out)
        note = (f"wrote state atlas to {args.atlas_out} (render with "
                f"`teapot analyze atlas {args.atlas_out}`)")
        if result.atlas.sampled:
            trunc = result.atlas.truncation
            note += (f"; truncated to a uniform sample: kept "
                     f"{trunc['states_kept']}/{trunc['states_seen']} "
                     f"states, {trunc['edges_kept']}/"
                     f"{trunc['edges_seen']} edges")
        print(note, file=sys.stderr)
    if args.progress and result.invariant_evals:
        evals = "  ".join(f"{name}={count}" for name, count
                          in result.invariant_evals.items())
        print(f"invariant evaluations: {evals}", file=sys.stderr)
    if result.violation is not None:
        print(result.violation.format_trace())
        if args.trace_out:
            result.violation.write_trace(args.trace_out)
            print(f"wrote counterexample trace to {args.trace_out}",
                  file=sys.stderr)
        if args.fault_plan_out:
            schedule = result.violation.fault_schedule()
            if schedule:
                result.violation.to_fault_plan().save(args.fault_plan_out)
                print(f"wrote fault plan to {args.fault_plan_out} "
                      f"(replay with `teapot run ... --fault-plan "
                      f"{args.fault_plan_out}`)", file=sys.stderr)
            else:
                print("no faults on the counterexample path; "
                      "no fault plan written", file=sys.stderr)
        return 1
    return 0


def _fault_options(args) -> "FaultOptions | None":
    """run's fault flags -> a FaultOptions record (None when all off)."""
    injecting = (args.fault_plan or args.drop or args.dup
                 or args.max_faults is not None)
    if not injecting and not args.watchdog:
        return None
    return FaultOptions(
        drop=args.drop,
        dup=args.dup,
        seed=args.fault_seed,
        max_faults=args.max_faults,
        plan=args.fault_plan,
        watchdog=args.watchdog,
        timeout=args.timeout,
        backoff=args.backoff,
        retries=args.retries,
    )


def cmd_run(args) -> int:
    protocol, _name = _load(args.protocol, _opt_level(args))
    faults = _fault_options(args)
    options = SimOptions(
        nodes=args.nodes,
        seed=args.seed,
        jitter=args.jitter,
        trace=args.trace,
        trace_format=args.trace_format,
        metrics=args.metrics,
        faults=faults,
    )
    try:
        result = api.simulate(protocol, workload=args.workload,
                              options=options)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    except (RuntimeProtocolError, AssertionError) as error:
        # A failed run (deadlock, event-budget exhaustion, non-quiescent
        # finish) is an outcome, not a crash: one readable report and a
        # nonzero exit instead of a traceback.
        print(f"error: simulation failed: {error}", file=sys.stderr)
        if faults is not None and not args.watchdog:
            print("hint: faults were injected without the recovery "
                  "layer; retry with --watchdog", file=sys.stderr)
        return 1
    if args.trace:
        print(f"wrote {args.trace_format} trace to {args.trace}",
              file=sys.stderr)
    if args.metrics:
        print(f"wrote metrics to {args.metrics}", file=sys.stderr)
    counters = result.stats.counters
    network = (f", seed={args.seed}, jitter={args.jitter}"
               if args.jitter or args.seed is not None else "")
    print(f"workload:   {args.workload} on {args.nodes} nodes{network}")
    print(f"protocol:   {protocol.name} "
          f"(opt={protocol.opt_level.name}, flavor={protocol.flavor.value})")
    print(f"cycles:     {result.cycles}")
    print(f"messages:   {result.stats.messages} "
          f"({counters.data_messages_sent} with data)")
    print(f"faults:     {result.stats.total_faults}")
    print(f"allocs:     {counters.cont_allocs} continuation records, "
          f"{counters.queue_allocs} queue records")
    print(f"fault time: {result.fault_time_fraction:.0%}")
    if result.fault_plan is not None:
        print(f"injected:   {result.fault_plan.ledger.summary()}")
    if faults is not None and args.watchdog:
        print(f"recovery:   {counters.timeouts} timeouts, "
              f"{counters.retries} retries, "
              f"{counters.dups_absorbed} duplicates absorbed")
    return 0


def cmd_report(args) -> int:
    import json

    from repro.obs.metrics import format_metrics, load_metrics

    try:
        payload = load_metrics(args.file)
    except FileNotFoundError:
        raise TeapotError(f"{args.file}: no such file") from None
    except IsADirectoryError:
        raise TeapotError(f"{args.file}: is a directory") from None
    except json.JSONDecodeError as error:
        raise TeapotError(
            f"{args.file}: not valid JSON ({error.msg} at line "
            f"{error.lineno}); expected a `run --metrics` export"
        ) from None
    try:
        print(format_metrics(payload))
    except (KeyError, TypeError, AttributeError):
        raise TeapotError(
            f"{args.file}: not a metrics export (unexpected shape); "
            "expected a `run --metrics` file") from None
    return 0


def cmd_analyze_causal(args) -> int:
    from repro.obs.analyze import TraceError, format_causal, load_trace

    trace = load_trace(args.trace)
    if args.event is not None:
        target = args.event
    else:
        kinds = ((args.kind,) if args.kind
                 else ("error", "nack", "deliver"))
        candidates = trace.indices(*kinds)
        if not candidates:
            raise TraceError(
                f"{args.trace}: no {'/'.join(kinds)} events to anchor "
                "the chain (pick one with --event N)")
        target = candidates[-1]
    print(format_causal(trace, target), end="")
    return 0


def cmd_analyze_critpath(args) -> int:
    from repro.obs.analyze import format_critical_path, load_trace

    print(format_critical_path(load_trace(args.trace),
                               per_fault=args.per_fault), end="")
    return 0


def cmd_analyze_coverage(args) -> int:
    from repro.obs.analyze import (
        TraceError,
        coverage_from_checker,
        coverage_from_trace,
        format_fault_only,
        load_trace,
    )

    if args.verify and args.faults:
        # Fault-only coverage: explore fault-free and fault-bounded,
        # then flag the arms only the faulted exploration reaches.
        protocol, name = _load(args.verify, OptLevel.O2)
        base = coverage_from_checker(
            protocol, api.check(protocol, _check_options(args, name)))
        budget = _parse_fault_budget(args.faults)
        faulted_result = api.check(
            protocol, _check_options(args, name, faults=budget))
        faulted = coverage_from_checker(protocol, faulted_result)
        if not faulted_result.ok:
            print(f"note: faulted exploration FAILED "
                  f"({faulted_result.violation.kind}); its coverage is "
                  "of the states reached before the violation",
                  file=sys.stderr)
        print(format_fault_only(base, faulted, args.faults), end="")
        if args.output:
            faulted.save(args.output)
            print(f"wrote faulted coverage report to {args.output}",
                  file=sys.stderr)
        return 0
    if args.verify:
        protocol, name = _load(args.verify, OptLevel.O2)
        result = api.check(protocol, _check_options(args, name))
        report = coverage_from_checker(protocol, result)
        if not result.ok:
            print(f"note: exploration FAILED "
                  f"({result.violation.kind}); coverage below is of "
                  "the states reached before the violation",
                  file=sys.stderr)
    elif args.trace:
        if not args.protocol:
            raise TraceError(
                "analyze coverage --trace needs --protocol to know the "
                "arm universe")
        protocol, _name = _load(args.protocol, OptLevel.O2)
        report = coverage_from_trace(load_trace(args.trace), protocol)
    else:
        raise TraceError(
            "analyze coverage needs --verify PROTOCOL or "
            "--trace FILE --protocol PROTOCOL")
    print(report.format(), end="")
    if args.output:
        report.save(args.output)
        print(f"wrote coverage report to {args.output}", file=sys.stderr)
    if args.strict and report.unreached:
        return 1
    return 0


def cmd_analyze_check_profile(args) -> int:
    from repro.obs.profile import format_profile, load_profile

    print(format_profile(load_profile(args.profile), top=args.top),
          end="")
    return 0


def cmd_analyze_atlas(args) -> int:
    from repro.verify.atlas import (
        atlas_to_dot,
        atlas_to_graphml,
        format_atlas,
        load_atlas,
    )

    atlas = load_atlas(args.atlas)
    if args.dot or args.graphml:
        render = atlas_to_dot if args.dot else atlas_to_graphml
        print(render(atlas, max_depth=args.max_depth,
                     protocol_state=args.protocol_state,
                     collapse_orbits=args.collapse_orbits))
        return 0
    print(format_atlas(atlas, top=args.top), end="")
    return 0


def cmd_analyze_diff(args) -> int:
    import re

    from repro.obs.analyze import (
        TraceError,
        diff_coverage,
        diff_traces,
        load_coverage,
        load_trace,
    )
    from repro.obs.profile import diff_profiles, load_profile
    from repro.verify.atlas import diff_atlases, load_atlas

    def sniff(path: str) -> str:
        try:
            with open(path) as handle:
                head = handle.read(4096)
        except FileNotFoundError:
            raise TraceError(f"{path}: no such file") from None
        except OSError as error:
            raise TraceError(f"{path}: {error.strerror}") from None
        if '"kind"' in head and '"teapot-coverage"' in head:
            return "coverage"
        if '"kind"' in head and '"teapot-check-profile"' in head:
            return "check-profile"
        if '"kind"' in head and '"teapot-state-atlas"' in head:
            return "state-atlas"
        if '"kind"' in head and '"teapot-' in head:
            match = re.search(r'"kind"\s*:\s*"([^"]+)"', head)
            found = match.group(1) if match else "unknown"
            raise TraceError(
                f"{path}: unrecognised artifact kind {found!r}; diff "
                "compares traces, coverage reports, check profiles, and "
                "state atlases")
        return "trace"

    kind_a, kind_b = sniff(args.a), sniff(args.b)
    if kind_a != kind_b:
        raise TraceError(
            f"cannot diff a {kind_a} ({args.a}) against a {kind_b} "
            f"({args.b})")
    if kind_a == "coverage":
        print(diff_coverage(load_coverage(args.a),
                            load_coverage(args.b)), end="")
    elif kind_a == "check-profile":
        print(diff_profiles(load_profile(args.a),
                            load_profile(args.b)), end="")
    elif kind_a == "state-atlas":
        print(diff_atlases(load_atlas(args.a), load_atlas(args.b)),
              end="")
    else:
        print(diff_traces(load_trace(args.a), load_trace(args.b)),
              end="")
    return 0


def cmd_graph(args) -> int:
    protocol, _name = _load(args.protocol, OptLevel.O2)
    graph = build_state_graph(protocol)
    if args.side:
        graph = graph.restricted_to(args.side)
    if args.contract:
        graph = graph.contracted()
    if args.dot:
        print(graph.to_dot())
    else:
        print(graph.summary())
        for transition in graph.transitions:
            print(f"  {transition}")
    return 0


def cmd_list(args) -> int:
    for name, entry in sorted(PROTOCOLS.items()):
        print(f"{name:16s} {entry.description}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="teapot",
        description="Teapot: a language for writing memory coherence "
                    "protocols (PLDI 1996 reproduction)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    p = subparsers.add_parser("check", help="parse and type-check a file")
    p.add_argument("file")
    p.set_defaults(fn=cmd_check)

    p = subparsers.add_parser("compile", help="generate code")
    p.add_argument("file", help="registered protocol name or .tea path")
    p.add_argument("--target", choices=("python", "c", "murphi"),
                   default="c")
    p.add_argument("-o", "--output")
    _add_opt_flags(p)
    p.set_defaults(fn=cmd_compile)

    p = subparsers.add_parser(
        "fmt", help="pretty-print a protocol to canonical form")
    p.add_argument("file")
    p.add_argument("-i", "--in-place", action="store_true")
    p.set_defaults(fn=cmd_fmt)

    p = subparsers.add_parser("info", help="compiled-protocol summary")
    p.add_argument("file")
    _add_opt_flags(p)
    p.set_defaults(fn=cmd_info)

    p = subparsers.add_parser("verify", help="model-check a protocol")
    p.add_argument("protocol")
    p.add_argument("--nodes", type=int, default=2)
    p.add_argument("--addresses", type=int, default=1)
    p.add_argument("--reorder", type=int, default=0,
                   help="network reordering bound (0 = FIFO)")
    p.add_argument("--max-states", type=int, default=2_000_000)
    p.add_argument("--progress", action="store_true",
                   help="print states/sec progress lines (with frontier/"
                        "visited sizes and invariant evaluation counts) "
                        "to stderr while exploring")
    p.add_argument("--progress-every", type=int, default=10_000,
                   help="states between progress lines (default 10000)")
    p.add_argument("--liveness", action="store_true",
                   help="also check liveness: every blocked thread can "
                        "reach a wake-up (catches starvation); serial only")
    p.add_argument("--workers", type=int, default=0, metavar="N",
                   help="explore with N shard-owning worker processes "
                        "(0 = serial, the default); verdict and state "
                        "count are identical at any worker count")
    p.add_argument("--fingerprints", action="store_true",
                   help="serial hash compaction: key the visited set by "
                        "64-bit state fingerprints (an order of "
                        "magnitude less memory; violation traces are "
                        "replay-validated against collisions)")
    p.add_argument("--symmetry", action=argparse.BooleanOptionalAction,
                   default=False,
                   help="symmetry reduction: explore one representative "
                        "per orbit under free-caching-node permutation "
                        "(canonical fingerprints; implies hash "
                        "compaction; counterexamples stay concrete and "
                        "replay unreduced); sound for safety, rejected "
                        "with --liveness")
    p.add_argument("--por", action=argparse.BooleanOptionalAction,
                   default=False,
                   help="partial-order reduction: prune commuting "
                        "independent transitions with sleep sets "
                        "(preserves the reachable state set, so the "
                        "verdict is unchanged); serial only, rejected "
                        "with --liveness")
    p.add_argument("--checkpoint-out", metavar="PATH",
                   help="write a sealed, resumable JSON checkpoint if "
                        "the run truncates at --max-states, hits a "
                        "--deadline/--max-visited-bytes budget, or is "
                        "interrupted (serial or --workers; writes are "
                        "atomic and BLAKE2b-sealed)")
    p.add_argument("--resume", metavar="PATH",
                   help="continue from a checkpoint (written serially "
                        "or at any worker count; the final verdict and "
                        "state count match an uninterrupted run)")
    p.add_argument("--checkpoint-every-waves", type=int, default=None,
                   metavar="N",
                   help="with --checkpoint-out: also checkpoint every N "
                        "completed BFS waves, not just at truncation")
    p.add_argument("--checkpoint-every-seconds", type=float,
                   default=None, metavar="S",
                   help="with --checkpoint-out: also checkpoint when S "
                        "seconds have passed since the last one "
                        "(written at the next wave boundary)")
    p.add_argument("--checkpoint-keep", type=int, default=1,
                   metavar="N",
                   help="keep the last N checkpoints, rotating older "
                        "ones to PATH.1, PATH.2, ... (default 1)")
    p.add_argument("--deadline", type=float, default=None,
                   metavar="SECONDS",
                   help="wall-clock budget: stop gracefully after this "
                        "many seconds, finish the current wave, write "
                        "any --checkpoint-out, and report "
                        "stop_reason=deadline instead of dying mid-run")
    p.add_argument("--max-visited-bytes", type=int, default=None,
                   metavar="BYTES",
                   help="memory budget: stop gracefully once the "
                        "visited-set containers exceed this many bytes "
                        "(same graceful path as --deadline)")
    p.add_argument("--on-worker-loss", choices=("fail", "degrade"),
                   default="fail",
                   help="with --workers: what to do when a worker "
                        "process dies mid-run; 'fail' (default) raises "
                        "a one-line error, 'degrade' re-shards the "
                        "last completed wave onto the survivors and "
                        "continues to the identical verdict")
    p.add_argument("--worker-stall-timeout", type=float, default=None,
                   metavar="SECONDS",
                   help="with --workers: treat a worker that has not "
                        "answered for this long as lost (killed and "
                        "handled per --on-worker-loss); default: wait "
                        "forever")
    p.add_argument("--faults", metavar="SPEC",
                   help="fault-bounded exploration: also drop/duplicate "
                        "in-flight messages, up to a per-path budget "
                        "(e.g. drop=1 or drop=1,dup=1); a protocol that "
                        "passes fault-free but FAILs here needs the "
                        "recovery layer (see docs/ROBUSTNESS.md)")
    p.add_argument("--fault-plan-out", metavar="PATH",
                   help="with --faults: save the counterexample's fault "
                        "schedule as a plan JSON replayable via "
                        "`teapot run --fault-plan`")
    p.add_argument("--trace-out", metavar="PATH",
                   help="dump any counterexample trace as JSONL events")
    p.add_argument("--coverage-out", metavar="PATH",
                   help="write the handler-coverage report as JSON "
                        "(compare runs with `teapot analyze diff`)")
    p.add_argument("--profile-out", metavar="PATH",
                   help="profile the exploration hot loop and write the "
                        "check-profile JSON (render with `teapot analyze "
                        "check-profile`, compare with `teapot analyze "
                        "diff`); off = zero overhead")
    p.add_argument("--atlas-out", metavar="PATH",
                   help="record every explored state and transition and "
                        "write the state-atlas JSON (render with "
                        "`teapot analyze atlas`: SCC/deadlock-basin "
                        "structure, depth profile, residence heatmap, "
                        "symmetry-orbit estimate, POR headroom); off = "
                        "zero overhead")
    _add_opt_flags(p)
    p.set_defaults(fn=cmd_verify)

    p = subparsers.add_parser(
        "run", help="simulate a registered workload under a protocol")
    p.add_argument("protocol")
    p.add_argument("workload", help="gauss|appbt|shallow|mp3d|"
                                    "adaptive|stencil|unstruct")
    p.add_argument("--nodes", type=int, default=16)
    p.add_argument("--seed", type=int, default=None, metavar="N",
                   help="seed the network delay RNG so jittered "
                        "(reordered) runs are reproducible "
                        "(default 12345; fault-free runs at the same "
                        "seed/jitter are byte-identical)")
    p.add_argument("--jitter", type=int, default=0, metavar="CYCLES",
                   help="max random extra network latency; > 0 drops "
                        "per-channel FIFO, exercising reordering")
    p.add_argument("--fault-plan", metavar="PATH",
                   help="inject faults from a saved plan JSON (e.g. one "
                        "exported by `teapot verify --fault-plan-out`); "
                        "overrides --drop/--dup")
    p.add_argument("--drop", type=float, default=0.0, metavar="P",
                   help="drop each message with probability P "
                        "(deterministic from --fault-seed)")
    p.add_argument("--dup", type=float, default=0.0, metavar="P",
                   help="duplicate each message with probability P")
    p.add_argument("--fault-seed", type=int, default=0, metavar="N",
                   help="fault RNG seed, independent of --seed (the "
                        "delay RNG never sees fault decisions)")
    p.add_argument("--max-faults", type=int, default=None, metavar="N",
                   help="cap the total number of injected faults")
    p.add_argument("--watchdog", action="store_true",
                   help="enable the timeout/retry/dedup recovery layer "
                        "(see docs/ROBUSTNESS.md); without it a dropped "
                        "message typically deadlocks the run")
    p.add_argument("--timeout", type=int, default=4000, metavar="CYCLES",
                   help="watchdog: cycles before the first retry "
                        "(default 4000)")
    p.add_argument("--backoff", type=float, default=2.0, metavar="F",
                   help="watchdog: timeout multiplier per attempt "
                        "(default 2.0)")
    p.add_argument("--retries", type=int, default=5, metavar="N",
                   help="watchdog: attempts before giving up (default 5)")
    p.add_argument("--trace", metavar="PATH",
                   help="write a structured event trace of the run")
    p.add_argument("--trace-format", choices=("jsonl", "chrome"),
                   default="jsonl",
                   help="jsonl: one event per line; chrome: trace_event "
                        "JSON for chrome://tracing / Perfetto")
    p.add_argument("--metrics", metavar="PATH",
                   help="write per-handler metrics JSON "
                        "(pretty-print with `teapot report`)")
    _add_opt_flags(p)
    p.set_defaults(fn=cmd_run)

    p = subparsers.add_parser(
        "report", help="pretty-print a metrics JSON from `run --metrics`")
    p.add_argument("file")
    p.set_defaults(fn=cmd_report)

    p = subparsers.add_parser(
        "analyze", help="ask questions of a JSONL trace "
                        "(see docs/OBSERVABILITY.md)")
    analyses = p.add_subparsers(dest="analysis", required=True)

    q = analyses.add_parser(
        "causal", help="happens-before chain ending at an event, "
                       "rendered as per-node lanes (Figure 11)")
    q.add_argument("trace", help="JSONL trace from run --trace")
    q.add_argument("--event", type=int, metavar="N",
                   help="target event by 0-based line index "
                        "(default: last error/nack/delivery)")
    q.add_argument("--kind", metavar="KIND",
                   help="anchor at the last event of this kind "
                        "(e.g. error, nack, deliver, fault_end)")
    q.set_defaults(fn=cmd_analyze_causal)

    q = analyses.add_parser(
        "critical-path", help="per-fault wait decomposition: which "
                              "handler/queue/network leg each fault's "
                              "latency was spent in")
    q.add_argument("trace", help="JSONL trace from run --trace")
    q.add_argument("--per-fault", type=int, default=0, metavar="N",
                   help="also expand the N longest-waiting faults")
    q.set_defaults(fn=cmd_analyze_critpath)

    q = analyses.add_parser(
        "coverage", help="handler/transition coverage of a trace or of "
                         "a checker exploration")
    q.add_argument("--trace", metavar="PATH",
                   help="count handler_entry events of this trace")
    q.add_argument("--protocol", metavar="NAME|FILE",
                   help="protocol defining the arm universe "
                        "(required with --trace)")
    q.add_argument("--verify", metavar="NAME|FILE",
                   help="run the model checker and report which arms "
                        "the exhaustive exploration fired")
    q.add_argument("--nodes", type=int, default=2)
    q.add_argument("--addresses", type=int, default=1)
    q.add_argument("--reorder", type=int, default=0)
    q.add_argument("--max-states", type=int, default=2_000_000)
    q.add_argument("--faults", metavar="SPEC",
                   help="with --verify: also explore under this fault "
                        "budget (e.g. drop=1,dup=1) and flag arms "
                        "reachable only when faults are injected")
    q.add_argument("-o", "--output", metavar="PATH",
                   help="also save the report as JSON (for diff)")
    q.add_argument("--strict", action="store_true",
                   help="exit 1 if any coverable arm never fired")
    q.set_defaults(fn=cmd_analyze_coverage)

    q = analyses.add_parser(
        "check-profile", help="render a `verify --profile-out` export: "
                              "phase attribution, top dispatch costs, "
                              "timeline, parallel imbalance")
    q.add_argument("profile", help="JSON file from verify --profile-out")
    q.add_argument("--top", type=int, default=10, metavar="N",
                   help="rows in the dispatch-cost table (default 10)")
    q.set_defaults(fn=cmd_analyze_check_profile)

    q = analyses.add_parser(
        "atlas", help="render a `verify --atlas-out` export: SCCs and "
                      "deadlock basins, depth/degree profiles, the "
                      "residence heatmap, the symmetry-orbit estimate, "
                      "and POR headroom; or export the explored graph "
                      "as DOT/GraphML")
    q.add_argument("atlas", help="JSON file from verify --atlas-out")
    q.add_argument("--top", type=int, default=10, metavar="N",
                   help="rows in the report tables (default 10)")
    q.add_argument("--dot", action="store_true",
                   help="emit the *explored* global state graph as "
                        "Graphviz instead of the report (for the "
                        "syntactic per-machine graph, see `teapot graph "
                        "--dot`)")
    q.add_argument("--graphml", action="store_true",
                   help="emit the explored graph as GraphML instead of "
                        "the report")
    q.add_argument("--max-depth", type=int, default=None, metavar="D",
                   help="export filter: only states at BFS depth <= D")
    q.add_argument("--protocol-state", metavar="NAME",
                   help="export filter: only states where some node is "
                        "in this protocol state (e.g. Home_Excl)")
    q.add_argument("--collapse-orbits", action="store_true",
                   help="export one node per symmetry orbit (collapses "
                        "node-permutation-equivalent states)")
    q.set_defaults(fn=cmd_analyze_atlas)

    q = analyses.add_parser(
        "diff", help="compare two traces, coverage reports, check "
                     "profiles, or state atlases")
    q.add_argument("a")
    q.add_argument("b")
    q.set_defaults(fn=cmd_analyze_diff)

    p = subparsers.add_parser("graph", help="print the state graph")
    p.add_argument("protocol")
    p.add_argument("--side", help="restrict to a state-name prefix "
                                  "(e.g. Home_)")
    p.add_argument("--contract", action="store_true",
                   help="contract transient states (the idealized machine)")
    p.add_argument("--dot", action="store_true",
                   help="emit Graphviz (the *syntactic* per-machine "
                        "graph; for the explored global state space, "
                        "see `teapot analyze atlas --dot`)")
    p.set_defaults(fn=cmd_graph)

    p = subparsers.add_parser("list", help="list registered protocols")
    p.set_defaults(fn=cmd_list)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.fn(args)
    except TeapotError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    except FileNotFoundError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    except BrokenPipeError:
        # Reader went away (e.g. `teapot report ... | head`): exit
        # quietly.  Point stdout at devnull so the interpreter's final
        # flush does not raise a second time.
        import os

        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0


if __name__ == "__main__":
    sys.exit(main())
