"""The paper's application workloads, synthesised.

Tables 1 and 2 run real CM-5 programs; offline, we reproduce each
program's *sharing pattern* -- the sequence of protocol events its
memory references generate -- which is what drives the Teapot-versus-C
overhead the tables measure (see DESIGN.md's substitution notes).

- Table 1 (Stache): gauss, appbt, shallow, mp3d
- Table 2 (LCM):    adaptive, stencil, unstruct
"""

from repro.workloads.table1 import (
    gauss_programs,
    appbt_programs,
    shallow_programs,
    mp3d_programs,
    STACHE_WORKLOADS,
)
from repro.workloads.table2 import (
    adaptive_programs,
    stencil_programs,
    unstruct_programs,
    LCM_WORKLOADS,
)
from repro.workloads.driver import WorkloadResult, run_workload

__all__ = [
    "gauss_programs",
    "appbt_programs",
    "shallow_programs",
    "mp3d_programs",
    "adaptive_programs",
    "stencil_programs",
    "unstruct_programs",
    "STACHE_WORKLOADS",
    "LCM_WORKLOADS",
    "WorkloadResult",
    "run_workload",
]
