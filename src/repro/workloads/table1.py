"""Reference generators for the Stache benchmarks of Table 1.

Each function returns one application program (a list of operations) per
node.  The operation vocabulary is the simulator's: ``("read", blk)``,
``("write", blk, value)``, ``("compute", cycles)``, ``("barrier",)``.

What matters for Table 1 is each application's *protocol-event mix*:

- **gauss** -- Gaussian elimination: the pivot row's owner produces it,
  everyone else consumes it (producer-consumer broadcast; Section 1
  notes invalidation protocols do poorly here), then nodes update their
  own row partitions.
- **appbt** -- NAS BT: 3-D block-structured nearest-neighbour exchange
  followed by heavy local computation.
- **shallow** -- shallow-water model: 2-D stencil with halo reads from
  the four neighbours and local writes.
- **mp3d** -- particle simulation: fine-grain migratory write sharing of
  particle cells with little computation per access (the paper's
  highest fault-time fraction, 72%).
"""

from __future__ import annotations

import random

Program = list


def _block_of(owner: int, index: int, blocks_per_node: int) -> int:
    return owner * blocks_per_node + index


def gauss_programs(n_nodes: int = 16, iterations: int = 6,
                   blocks_per_node: int = 2, seed: int = 11) -> list[Program]:
    """Pivot-row broadcast plus private-partition updates."""
    rng = random.Random(seed)
    programs: list[Program] = [[] for _ in range(n_nodes)]
    for iteration in range(iterations):
        pivot_owner = iteration % n_nodes
        pivot_block = _block_of(pivot_owner, 0, blocks_per_node)
        # The owner produces the pivot row.
        for node, program in enumerate(programs):
            if node == pivot_owner:
                program.append(("write", pivot_block, iteration + 1))
                program.append(("compute", 400))
            program.append(("barrier",))
        # Everyone consumes it, then updates its own partition.
        for node, program in enumerate(programs):
            if node != pivot_owner:
                program.append(("read", pivot_block))
            own = _block_of(node, 1, blocks_per_node)
            program.append(("compute", 420 + rng.randrange(120)))
            program.append(("write", own, iteration))
            program.append(("compute", 500))
            program.append(("barrier",))
    return programs


def appbt_programs(n_nodes: int = 16, iterations: int = 5,
                   seed: int = 12) -> list[Program]:
    """3-D nearest-neighbour exchange with heavy local compute."""
    rng = random.Random(seed)
    programs: list[Program] = [[] for _ in range(n_nodes)]
    # One face block per node per direction; neighbours on a 1-D ring
    # approximate the 3-D decomposition's six faces with two.
    for _iteration in range(iterations):
        for node, program in enumerate(programs):
            left = (node - 1) % n_nodes
            right = (node + 1) % n_nodes
            program.append(("read", left * 2))       # left neighbour's face
            program.append(("read", right * 2 + 1))  # right neighbour's face
            program.append(("compute", 3400 + rng.randrange(700)))
            program.append(("write", node * 2, node))      # own faces
            program.append(("write", node * 2 + 1, node))
            program.append(("compute", 2600))
            program.append(("barrier",))
    return programs


def shallow_programs(n_nodes: int = 16, iterations: int = 5,
                     seed: int = 13) -> list[Program]:
    """2-D stencil halo exchange (four neighbours on a grid)."""
    rng = random.Random(seed)
    side = max(2, int(n_nodes ** 0.5))
    programs: list[Program] = [[] for _ in range(n_nodes)]
    for _iteration in range(iterations):
        for node, program in enumerate(programs):
            row, col = divmod(node, side)
            neighbours = [
                ((row - 1) % side) * side + col,
                ((row + 1) % side) * side + col,
                row * side + (col - 1) % side,
                row * side + (col + 1) % side,
            ]
            for neighbour in neighbours:
                if neighbour < n_nodes and neighbour != node:
                    program.append(("read", neighbour))
            program.append(("compute", 2000 + rng.randrange(400)))
            program.append(("write", node, node))
            program.append(("compute", 1200))
            program.append(("barrier",))
    return programs


def mp3d_programs(n_nodes: int = 16, iterations: int = 4,
                  n_cells: int | None = None, seed: int = 17) -> list[Program]:
    """Migratory fine-grain write sharing of particle cells."""
    if n_cells is None:
        n_cells = n_nodes  # cell population scales with the machine
    rng = random.Random(seed)
    programs: list[Program] = [[] for _ in range(n_nodes)]
    for _iteration in range(iterations):
        for node, program in enumerate(programs):
            # Each node moves a few particles through random cells:
            # read-modify-write with almost no compute in between.
            for _particle in range(3):
                cell = rng.randrange(n_cells)
                program.append(("read", cell))
                program.append(("compute", 30))
                program.append(("write", cell, node))
                program.append(("compute", 40))
            program.append(("barrier",))
    return programs


def _blocks_for(name: str, n_nodes: int) -> int:
    if name == "gauss":
        return n_nodes * 2
    if name == "appbt":
        return n_nodes * 2
    if name == "shallow":
        return n_nodes
    if name == "mp3d":
        return n_nodes
    raise KeyError(name)


STACHE_WORKLOADS = {
    "gauss": (gauss_programs, lambda n: n * 2),
    "appbt": (appbt_programs, lambda n: n * 2),
    "shallow": (shallow_programs, lambda n: n),
    "mp3d": (mp3d_programs, lambda n: n),
}
