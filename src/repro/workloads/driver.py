"""Runs a workload on the simulated machine and collects Table 1/2 rows."""

from __future__ import annotations

from dataclasses import dataclass

from repro.runtime.protocol import CompiledProtocol
from repro.tempest.machine import Machine, MachineConfig
from repro.tempest.stats import MachineStats


@dataclass
class WorkloadResult:
    """One cell of Table 1 or Table 2."""

    workload: str
    protocol: str
    opt_level: str
    cycles: int
    cont_allocs: int
    queue_allocs: int
    fault_time_fraction: float
    stats: MachineStats

    @property
    def alloc_records(self) -> int:
        return self.cont_allocs + self.queue_allocs

    def overhead_vs(self, baseline: "WorkloadResult") -> float:
        """Percentage slowdown relative to ``baseline`` (the C column)."""
        if baseline.cycles == 0:
            return 0.0
        return 100.0 * (self.cycles - baseline.cycles) / baseline.cycles


def run_workload(
    protocol: CompiledProtocol,
    workload_name: str,
    programs: list,
    n_blocks: int,
    n_nodes: int | None = None,
    config: MachineConfig | None = None,
) -> WorkloadResult:
    """Simulate ``programs`` under ``protocol``; returns the table cell."""
    if config is None:
        config = MachineConfig(
            n_nodes=n_nodes if n_nodes is not None else len(programs),
            n_blocks=n_blocks,
        )
    machine = Machine(protocol, programs, config)
    result = machine.run()
    machine.assert_quiescent()
    counters = result.stats.counters
    return WorkloadResult(
        workload=workload_name,
        protocol=protocol.name,
        opt_level=protocol.opt_level.name,
        cycles=result.cycles,
        cont_allocs=counters.cont_allocs,
        queue_allocs=counters.queue_allocs,
        fault_time_fraction=result.stats.fault_time_fraction,
        stats=result.stats,
    )
