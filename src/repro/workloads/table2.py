"""Reference generators for the LCM benchmarks of Table 2.

LCM applications alternate consistent phases with loose (LCM) phases:
each participating node enters the phase on the blocks it will touch,
obtains private copies, computes, and reconciles on exit.

- **adaptive** -- adaptive refinement: an irregular, iteration-varying
  subset of blocks is refined by a random subset of nodes.
- **stencil** -- a regular grid relaxation run under copy-in/copy-out
  semantics: every node works on its own block and reads neighbours'
  reconciled values between phases.
- **unstruct** -- an unstructured mesh: many nodes share each block
  inside a phase (the heaviest reconciliation traffic; the paper's
  worst-overhead benchmark).
"""

from __future__ import annotations

import random

Program = list


def _enter(program: Program, block: int) -> None:
    program.append(("event", "ENTER_LCM_FAULT", block))


def _exit(program: Program, block: int) -> None:
    program.append(("event", "EXIT_LCM_FAULT", block))


def adaptive_programs(n_nodes: int = 16, phases: int = 4,
                      n_blocks: int = 8, seed: int = 21) -> list[Program]:
    """Irregular refinement: random node subsets refine random blocks."""
    rng = random.Random(seed)
    programs: list[Program] = [[] for _ in range(n_nodes)]
    for _phase in range(phases):
        # Every node participates on one randomly chosen block.
        choices = [rng.randrange(n_blocks) for _ in range(n_nodes)]
        for node, program in enumerate(programs):
            block = choices[node]
            _enter(program, block)
            program.append(("compute", 120))
            program.append(("write", block, node))
            program.append(("compute", 400 + rng.randrange(150)))
            program.append(("read", block))
            _exit(program, block)
            program.append(("barrier",))
        # A consistent interlude: read the reconciled values.
        for node, program in enumerate(programs):
            program.append(("read", choices[node]))
            program.append(("compute", 200))
            program.append(("barrier",))
    return programs


def stencil_programs(n_nodes: int = 16, phases: int = 4,
                     seed: int = 22) -> list[Program]:
    """Grid relaxation with copy-in/copy-out phases."""
    rng = random.Random(seed)
    programs: list[Program] = [[] for _ in range(n_nodes)]
    for _phase in range(phases):
        for node, program in enumerate(programs):
            block = node  # one grid block per node
            _enter(program, block)
            program.append(("write", block, node))
            program.append(("compute", 600 + rng.randrange(100)))
            _exit(program, block)
            program.append(("barrier",))
        # Between phases, read the neighbours' reconciled blocks.
        for node, program in enumerate(programs):
            program.append(("read", (node - 1) % n_nodes))
            program.append(("read", (node + 1) % n_nodes))
            program.append(("compute", 300))
            program.append(("barrier",))
    return programs


def unstruct_programs(n_nodes: int = 16, phases: int = 4,
                      n_blocks: int = 4, seed: int = 23) -> list[Program]:
    """Unstructured mesh: many nodes share each block inside a phase."""
    rng = random.Random(seed)
    programs: list[Program] = [[] for _ in range(n_nodes)]
    for _phase in range(phases):
        for node, program in enumerate(programs):
            block = rng.randrange(n_blocks)
            _enter(program, block)
            program.append(("read", block))
            program.append(("compute", 80))
            program.append(("write", block, node))
            program.append(("compute", 120))
            _exit(program, block)
            program.append(("barrier",))
    return programs


LCM_WORKLOADS = {
    "adaptive": (adaptive_programs, lambda n: 8),
    "stencil": (stencil_programs, lambda n: n),
    "unstruct": (unstruct_programs, lambda n: 4),
}
