"""The Python back end: compiled protocols as executable Python source.

Each handler fragment becomes a Python function over ``(rt, env)`` where
``rt`` is a :class:`GeneratedRuntime` adapter around the host
:class:`~repro.runtime.context.ProtocolContext`.  Control flow uses a
program-counter trampoline, so suspend points inside loops and
conditionals split exactly as in the interpreter.

The generated module is self-contained apart from the adapter: tests
exec it and check behavioural equivalence with the interpreter.
"""

from __future__ import annotations

import io

from repro.lang import ast
from repro.lang.errors import CompileError
from repro.compiler.ir import (
    HandlerIR,
    IAssign,
    ICall,
    IPrint,
    IResume,
    TBranch,
    TGoto,
    TReturn,
    TSuspend,
)
from repro.runtime.builtins import BUILTIN_IMPLS
from repro.runtime.context import INFO_HANDLE
from repro.runtime.continuation import ContinuationRecord, make_continuation
from repro.runtime.protocol import (
    CompiledProtocol,
    StateValue,
    default_value_for,
)

_OP_MAP = {
    "=": "==", "!=": "!=", "<": "<", "<=": "<=", ">": ">", ">=": ">=",
    "+": "+", "-": "-", "*": "*", "%": "%",
    "And": "and", "Or": "or",
}


def _fn_name(state: str, message: str) -> str:
    return f"h_{state}__{message}"


class _ExprEmitter:
    """Compiles Teapot expressions to Python expression strings."""

    def __init__(self, protocol: CompiledProtocol, handler: HandlerIR):
        self.protocol = protocol
        self.handler = handler
        self.frame = set(handler.frame_vars)

    def emit(self, expr: ast.Expr) -> str:
        if isinstance(expr, ast.IntLit):
            return repr(expr.value)
        if isinstance(expr, ast.BoolLit):
            return repr(expr.value)
        if isinstance(expr, ast.StrLit):
            return repr(expr.value)
        if isinstance(expr, ast.NameRef):
            return self._emit_name(expr.name)
        if isinstance(expr, ast.CallExpr):
            args = ", ".join(self.emit(a) for a in expr.args)
            return f"rt.call({expr.name!r}, [{args}])"
        if isinstance(expr, ast.StateExpr):
            args = ", ".join(self.emit(a) for a in expr.args)
            return f"rt.state_value({expr.name!r}, ({args}{',' if expr.args else ''}))"
        if isinstance(expr, ast.BinOp):
            left = self.emit(expr.left)
            right = self.emit(expr.right)
            if expr.op == "/":
                return f"rt.div({left}, {right})"
            return f"({left} {_OP_MAP[expr.op]} {right})"
        if isinstance(expr, ast.UnOp):
            operand = self.emit(expr.operand)
            return f"(not {operand})" if expr.op == "Not" else f"(-{operand})"
        raise CompileError(f"cannot emit expression {expr!r}")

    def _emit_name(self, name: str) -> str:
        if name in self.frame:
            return f"env[{name!r}]"
        if name in self.protocol.info_vars:
            return f"rt.get_info({name!r})"
        if name in self.protocol.consts:
            return repr(self.protocol.consts[name])
        if name == "MyNode":
            return "rt.node"
        if name == "Nobody":
            return "NOBODY"
        if name == "MessageTag":
            return "rt.tag"
        if name.startswith("Blk_") or name in self.protocol.messages:
            return repr(name)
        if name in self.protocol.checked.consts:
            return f"rt.support_const({name!r})"
        raise CompileError(
            f"cannot resolve name {name!r} in {self.handler.qualified_name}")


def _emit_handler(out: io.StringIO, protocol: CompiledProtocol,
                  handler: HandlerIR) -> None:
    emitter = _ExprEmitter(protocol, handler)
    name = _fn_name(handler.state_name, handler.message_name)
    out.write(f"def {name}(rt, env, pc={handler.entry}):\n")
    out.write(f'    """{handler.qualified_name}"""\n')
    out.write("    while True:\n")
    for block_id in sorted(handler.blocks):
        block = handler.blocks[block_id]
        out.write(f"        if pc == {block_id}:\n")
        body: list[str] = []
        for op in block.ops:
            body.extend(_emit_op(emitter, handler, op))
        body.extend(_emit_terminator(emitter, handler, block.terminator))
        for line in body:
            out.write(f"            {line}\n")
        out.write("            continue\n")
    out.write("        raise RuntimeError(f'bad pc {pc}')\n\n\n")


def _emit_op(emitter: _ExprEmitter, handler: HandlerIR, op) -> list[str]:
    if isinstance(op, IAssign):
        value = emitter.emit(op.value)
        if op.target in emitter.frame:
            return [f"env[{op.target!r}] = {value}"]
        if op.target in emitter.protocol.info_vars:
            return [f"rt.set_info({op.target!r}, {value})"]
        raise CompileError(f"cannot assign to {op.target!r}")
    if isinstance(op, ICall):
        args = ", ".join(emitter.emit(a) for a in op.args)
        return [f"rt.call({op.name!r}, [{args}])"]
    if isinstance(op, IResume):
        cont = emitter.emit(op.cont)
        direct = repr(op.direct_site is not None)
        return [f"rt.resume({cont}, direct={direct})"]
    if isinstance(op, IPrint):
        args = ", ".join(emitter.emit(a) for a in op.args)
        return [f"rt.debug_print([{args}])"]
    raise CompileError(f"cannot emit op {op!r}")


def _emit_terminator(emitter: _ExprEmitter, handler: HandlerIR,
                     term) -> list[str]:
    if isinstance(term, TGoto):
        return [f"pc = {term.target}"]
    if isinstance(term, TBranch):
        cond = emitter.emit(term.cond)
        return [
            f"pc = {term.true_target} if {cond} else {term.false_target}",
        ]
    if isinstance(term, TReturn):
        return ["return"]
    if isinstance(term, TSuspend):
        site = handler.suspend_sites[term.site_id]
        saved = ", ".join(
            f"({name!r}, env.get({name!r}))" for name in site.save_set)
        target_args = ", ".join(
            emitter.emit(a) for a in site.target.args)
        trailing = "," if site.target.args else ""
        return [
            f"env[{site.cont_name!r}] = rt.suspend("
            f"{handler.qualified_name!r}, {site.site_id}, "
            f"({saved}{',' if site.save_set else ''}), "
            f"{site.is_static!r})",
            f"rt.set_state({site.target.name!r}, ({target_args}{trailing}))",
            "return",
        ]
    raise CompileError(f"cannot emit terminator {term!r}")


def emit_python(protocol: CompiledProtocol) -> str:
    """Generate the executable Python module for ``protocol``."""
    out = io.StringIO()
    out.write(f'"""Generated by the Teapot Python back end.\n\n')
    out.write(f"protocol: {protocol.name}\n")
    out.write(f"optimisation level: {protocol.opt_level.name}\n")
    out.write('"""\n\n')
    out.write("NOBODY = -1\n\n\n")
    for key in sorted(protocol.handlers):
        _emit_handler(out, protocol, protocol.handlers[key])

    out.write("HANDLERS = {\n")
    for state_name, message_name in sorted(protocol.handlers):
        fn = _fn_name(state_name, message_name)
        out.write(f"    ({state_name!r}, {message_name!r}): {fn},\n")
    out.write("}\n")
    return out.getvalue()


class GeneratedRuntime:
    """The ``rt`` object generated handler code runs against.

    Thin adapter over a :class:`~repro.runtime.context.ProtocolContext`;
    reuses the interpreter's builtin implementations so generated code
    and interpreted code share one source of truth for Tempest
    semantics.
    """

    def __init__(self, runner: "GeneratedProtocolRunner"):
        self._runner = runner
        self.ctx = runner.ctx
        self.protocol = runner.protocol  # for BUILTIN_IMPLS compatibility

    @property
    def node(self) -> int:
        return self.ctx.node

    @property
    def tag(self) -> str:
        return self.ctx.current_message.tag

    def call(self, name: str, args: list):
        impl = BUILTIN_IMPLS.get(name)
        if impl is None:
            return self.ctx.support_call(name, args)
        return impl(self, args)

    def div(self, left, right):
        if right == 0:
            self.ctx.error("division by zero in protocol code")
            return 0
        return int(left / right)

    def get_info(self, name: str):
        return self.ctx.get_info(name)

    def set_info(self, name: str, value) -> None:
        self.ctx.set_info(name, value)

    def set_state(self, name: str, args: tuple) -> None:
        self.ctx.set_state(name, args)

    def state_value(self, name: str, args: tuple) -> StateValue:
        return StateValue(name, args)

    def debug_print(self, values: list) -> None:
        self.ctx.debug_print(values)

    def support_const(self, name: str):
        return self.ctx.support_const(name)

    def suspend(self, qualified: str, site_id: int,
                saved: tuple, is_static: bool) -> ContinuationRecord:
        self.ctx.counters.suspends += 1
        static = is_static and not saved
        if static:
            self.ctx.counters.static_cont_uses += 1
        else:
            self.ctx.counters.cont_allocs += 1
        return make_continuation(qualified, site_id, saved, static)

    def resume(self, record, direct: bool = False) -> None:
        if not isinstance(record, ContinuationRecord):
            self.ctx.error(f"Resume applied to {record!r}")
            return
        counters = self.ctx.counters
        counters.resumes += 1
        if direct:
            counters.direct_resumes += 1
        if not record.is_static:
            counters.cont_frees += 1
        self._runner.run_fragment(record)


class GeneratedProtocolRunner:
    """Drives generated Python handlers; drop-in for HandlerInterpreter."""

    def __init__(self, protocol: CompiledProtocol, ctx):
        self.protocol = protocol
        self.ctx = ctx
        namespace: dict = {}
        exec(compile(emit_python(protocol), f"<{protocol.name}.py>", "exec"),
             namespace)
        self.handlers = namespace["HANDLERS"]
        self.rt = GeneratedRuntime(self)

    def dispatch(self) -> None:
        msg = self.ctx.current_message
        state_name, state_args = self.ctx.get_state()
        state = self.protocol.states.get(state_name)
        if state is None:
            self.ctx.error(f"unknown state {state_name!r}")
            return
        handler = state.dispatch(msg.tag)
        if handler is None:
            self.ctx.error(
                f"unexpected message {msg.tag} to state {state_name}")
            return
        self.ctx.counters.handler_dispatches += 1
        env = self._initial_env(handler, state_args, msg)
        fn = self.handlers[(handler.state_name, handler.message_name)]
        fn(self.rt, env)

    def run_fragment(self, record: ContinuationRecord) -> None:
        handler, site = self.protocol.suspend_site(
            record.handler, record.site_id)
        env: dict = {name: None for name in handler.frame_vars}
        for name, type_name in handler.locals.items():
            env[name] = default_value_for(type_name)
        env[handler.params[0]] = self.ctx.current_message.block
        env[handler.params[1]] = INFO_HANDLE
        env.update(record.environment())
        fn = self.handlers[(handler.state_name, handler.message_name)]
        fn(self.rt, env, pc=site.resume_block)

    def _initial_env(self, handler: HandlerIR, state_args: tuple, msg) -> dict:
        env: dict = {}
        for (name, _type), value in zip(handler.state_params.items(),
                                        state_args):
            env[name] = value
        for name, type_name in handler.locals.items():
            env[name] = default_value_for(type_name)
        for name in handler.cont_vars:
            env.setdefault(name, None)
        params = handler.params
        env[params[0]] = msg.block
        env[params[1]] = INFO_HANDLE
        env[params[2]] = msg.src
        if handler.message_name != "DEFAULT":
            for index, name in enumerate(params[3:]):
                env[name] = (msg.payload[index]
                             if index < len(msg.payload) else None)
        return env
