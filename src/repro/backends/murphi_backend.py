"""The Mur-phi back end: model-checker input from the same source.

"In general, Mur-phi requires a programmer to write a protocol twice ...
To solve this problem, Teapot automatically generates a Mur-phi
specification from a Teapot protocol" (Section 7).  This module emits a
Mur-phi description of the compiled protocol:

- constants and types (nodes, addresses, state/tag enums, the network);
- the per-block protocol record, including a continuation record (a
  fragment id plus saved-variable slots -- the push-down extension of
  the state machine);
- one procedure per handler fragment, with ``Suspend`` compiled into a
  continuation store plus state change and ``Resume`` into a dispatch
  over fragment ids;
- rulesets for message delivery and the protocol event-generation loop;
- the standard invariants (no unexpected message is expressed through
  the generated ``Error`` branches of the DEFAULT handlers).

Since Mur-phi itself is not available in this environment, the emitted
text is validated structurally by the test suite, and the *checking* is
performed by :mod:`repro.verify`, which explores the same compiled IR.
"""

from __future__ import annotations

import io

from repro.lang import ast
from repro.lang.errors import CompileError
from repro.compiler.ir import (
    HandlerIR,
    IAssign,
    ICall,
    IPrint,
    IResume,
    TBranch,
    TGoto,
    TReturn,
    TSuspend,
)
from repro.runtime.protocol import CompiledProtocol

_MURPHI_OPS = {
    "=": "=", "!=": "!=", "<": "<", "<=": "<=", ">": ">", ">=": ">=",
    "+": "+", "-": "-", "*": "*", "/": "/", "%": "%",
    "And": "&", "Or": "|",
}


def _frag_id(handler: HandlerIR, site_id: int) -> str:
    return f"F_{handler.state_name}_{handler.message_name}_{site_id}"


def _proc_name(handler: HandlerIR, block_id: int | None = None) -> str:
    base = f"Do_{handler.state_name}_{handler.message_name}"
    if block_id is None or block_id == handler.entry:
        return base
    return f"{base}_resume{block_id}"


_RESERVED = {"n", "a", "msg", "m", "i"}


class _MurphiExpr:
    """Compiles Teapot expressions to Mur-phi expression strings."""

    def __init__(self, protocol: CompiledProtocol, handler: HandlerIR):
        self.protocol = protocol
        self.handler = handler
        self.frame = set(handler.frame_vars)
        # Frame variables that collide with the generated procedures'
        # own parameters are renamed.
        self.renames = {
            name: f"loc_{name}" for name in self.frame if name in _RESERVED
        }

    def frame_name(self, name: str) -> str:
        return self.renames.get(name, name)

    def emit(self, expr: ast.Expr) -> str:
        if isinstance(expr, ast.IntLit):
            return str(expr.value)
        if isinstance(expr, ast.BoolLit):
            return "true" if expr.value else "false"
        if isinstance(expr, ast.StrLit):
            return f'"{expr.value}"'
        if isinstance(expr, ast.NameRef):
            return self._name(expr.name)
        if isinstance(expr, ast.CallExpr):
            args = ["n", "a"] + [self.emit(arg) for arg in expr.args]
            return f"Fn_{expr.name}({', '.join(args)})"
        if isinstance(expr, ast.StateExpr):
            return f"S_{expr.name}"
        if isinstance(expr, ast.BinOp):
            return (f"({self.emit(expr.left)} {_MURPHI_OPS[expr.op]} "
                    f"{self.emit(expr.right)})")
        if isinstance(expr, ast.UnOp):
            inner = self.emit(expr.operand)
            return f"(!{inner})" if expr.op == "Not" else f"(-{inner})"
        raise CompileError(f"cannot emit Mur-phi for {expr!r}")

    def _name(self, name: str) -> str:
        if name in self.frame:
            return self.frame_name(name)
        if name in self.protocol.info_vars:
            return f"blocks[n][a].{name}"
        if name in self.protocol.consts:
            return f"K_{name}"
        if name == "MyNode":
            return "n"
        if name == "Nobody":
            return "NOBODY"
        if name == "MessageTag":
            return "msg.tag"
        if name.startswith("Blk_"):
            return f"A_{name[4:].upper()}"
        if name in self.protocol.messages:
            return f"M_{name}"
        raise CompileError(f"cannot resolve {name!r} in Mur-phi back end")


_ACCESS_OF = {
    "Blk_Invalidate": "A_INVALIDATE",
    "Blk_Upgrade_RO": "A_UPGRADE_RO",
    "Blk_Upgrade_RW": "A_UPGRADE_RW",
    "Blk_Downgrade_RO": "A_DOWNGRADE_RO",
}


def _reaches_by_goto(handler: HandlerIR, start: int, target: int) -> bool:
    """Does ``start`` flow back to ``target`` along Goto/Branch edges
    without passing a suspend?  (Loop back-edge detection.)"""
    seen: set[int] = set()
    stack = [start]
    while stack:
        block_id = stack.pop()
        if block_id == target:
            return True
        if block_id in seen:
            continue
        seen.add(block_id)
        term = handler.blocks[block_id].terminator
        if isinstance(term, TGoto):
            stack.append(term.target)
        elif isinstance(term, TBranch):
            stack.extend((term.true_target, term.false_target))
    return False


def _emit_stmts(out: list[str], emitter: _MurphiExpr, handler: HandlerIR,
                block_id: int, depth: int, visited: set[int],
                stop_at: int | None = None) -> None:
    """Structured re-emission of the CFG as nested Mur-phi statements.

    The CFG came from structured source, so a depth-first walk that
    stops at suspends re-creates structured code.  A branch whose true
    arm flows back to the branch block is a While loop head and is
    emitted as a Mur-phi ``while``; ``stop_at`` cuts the walk at the
    loop head when emitting the loop body.
    """
    indent = "    " * depth
    if block_id == stop_at:
        return
    if block_id in visited:
        out.append(f"{indent}-- join with block {block_id}")
        return
    visited = visited | {block_id}
    block = handler.blocks[block_id]
    for op in block.ops:
        out.extend(_emit_op(emitter, handler, op, indent))
    term = block.terminator
    if isinstance(term, TGoto):
        _emit_stmts(out, emitter, handler, term.target, depth, visited,
                    stop_at)
    elif isinstance(term, TBranch):
        if _reaches_by_goto(handler, term.true_target, block_id):
            # A While loop: body runs while the condition holds.
            out.append(f"{indent}while {emitter.emit(term.cond)} do")
            _emit_stmts(out, emitter, handler, term.true_target, depth + 1,
                        visited, stop_at=block_id)
            out.append(f"{indent}end;")
            _emit_stmts(out, emitter, handler, term.false_target, depth,
                        visited, stop_at)
            return
        out.append(f"{indent}if {emitter.emit(term.cond)} then")
        _emit_stmts(out, emitter, handler, term.true_target, depth + 1,
                    visited, stop_at)
        out.append(f"{indent}else")
        _emit_stmts(out, emitter, handler, term.false_target, depth + 1,
                    visited, stop_at)
        out.append(f"{indent}endif;")
    elif isinstance(term, TSuspend):
        site = handler.suspend_sites[term.site_id]
        out.append(f"{indent}-- Suspend: park continuation "
                   f"{_frag_id(handler, site.site_id)}")
        out.append(f"{indent}blocks[n][a].cont.frag := "
                   f"{_frag_id(handler, site.site_id)};")
        for index, var in enumerate(site.save_set):
            out.append(f"{indent}blocks[n][a].cont.saved[{index}] := "
                       f"ToWord({emitter.frame_name(var)});")
        out.append(f"{indent}blocks[n][a].state := S_{site.target.name};")
    elif isinstance(term, TReturn):
        out.append(f"{indent}return;")


def _emit_op(emitter: _MurphiExpr, handler: HandlerIR, op,
             indent: str) -> list[str]:
    if isinstance(op, IAssign):
        return [f"{indent}{emitter._name(op.target)} := "
                f"{emitter.emit(op.value)};"]
    if isinstance(op, ICall):
        if op.name == "SetState":
            state_expr = op.args[1]
            assert isinstance(state_expr, ast.StateExpr)
            lines = [f"{indent}blocks[n][a].state := S_{state_expr.name};"]
            return lines
        if op.name == "Send" or op.name == "SendBlk":
            dst = emitter.emit(op.args[0])
            tag = emitter.emit(op.args[1])
            data = "true" if op.name == "SendBlk" else "false"
            return [f"{indent}NetSend(n, {dst}, {tag}, a, {data});"]
        if op.name == "AccessChange":
            mode = op.args[1]
            mode_name = mode.name if isinstance(mode, ast.NameRef) else "?"
            return [f"{indent}access[n][a] := "
                    f"{_ACCESS_OF.get(mode_name, 'A_INVALIDATE')};"]
        if op.name == "Enqueue":
            return [f"{indent}QueueDefer(n, a, msg);"]
        if op.name == "Error":
            text = op.args[0]
            literal = text.value if isinstance(text, ast.StrLit) else "error"
            return [f'{indent}error "{literal}";']
        args = ["n", "a"] + [emitter.emit(a) for a in op.args]
        return [f"{indent}Pr_{op.name}({', '.join(args)});"]
    if isinstance(op, IResume):
        return [f"{indent}ResumeCont(n, a, {emitter.emit(op.cont)});"]
    if isinstance(op, IPrint):
        return [f"{indent}-- print"]
    raise CompileError(f"cannot emit Mur-phi op {op!r}")


def emit_murphi(protocol: CompiledProtocol, n_nodes: int = 2,
                n_addrs: int = 1, net_max: int = 4) -> str:
    """Generate Mur-phi source for ``protocol``."""
    out = io.StringIO()
    out.write(f"-- Generated by the Teapot Mur-phi back end.\n")
    out.write(f"-- protocol: {protocol.name} "
              f"(opt={protocol.opt_level.name})\n\n")

    out.write("Const\n")
    out.write(f"  NodeCount : {n_nodes};\n")
    out.write(f"  AddrCount : {n_addrs};\n")
    out.write(f"  NetMax    : {net_max};\n")
    out.write("  ContSlots : 4;\n")
    out.write("  NOBODY    : -1;\n")
    for name, value in sorted(protocol.consts.items()):
        literal = ("true" if value is True
                   else "false" if value is False else value)
        out.write(f"  K_{name} : {literal};\n")
    out.write("\n")

    out.write("Type\n")
    out.write("  NodeId  : 0..NodeCount-1;\n")
    out.write("  Addr    : 0..AddrCount-1;\n")
    out.write("  Word    : -1..255;\n")
    states = ", ".join(f"S_{n}" for n in sorted(protocol.states))
    out.write(f"  StateName : enum {{ {states} }};\n")
    tags = ", ".join(f"M_{n}" for n in sorted(protocol.messages))
    out.write(f"  TagName : enum {{ {tags} }};\n")
    frags = [
        _frag_id(handler, site.site_id)
        for key in sorted(protocol.handlers)
        for handler in [protocol.handlers[key]]
        for site in handler.suspend_sites
    ]
    frag_list = ", ".join(["F_NONE"] + frags)
    out.write(f"  FragId : enum {{ {frag_list} }};\n")
    out.write("  AccessTag : enum { ACC_INV, ACC_RO, ACC_RW };\n")
    out.write("  ContRec : Record\n")
    out.write("    frag  : FragId;\n")
    out.write("    saved : Array[0..ContSlots-1] of Word;\n")
    out.write("  End;\n")
    out.write("  MessageRec : Record\n")
    out.write("    tag : TagName; addr : Addr; src : NodeId; "
              "hasData : boolean;\n")
    out.write("  End;\n")
    out.write("  BlockRec : Record\n")
    out.write("    state : StateName;\n")
    out.write("    cont  : ContRec;\n")
    for name, type_name in protocol.info_vars.items():
        murphi_type = {
            "INT": "Word", "BOOL": "boolean", "NODE": "Word",
            "VALUE": "Word", "ADDR": "Word", "MSGTAG": "TagName",
            # "Mur-phi represents the same information as an array of
            # BitType" (Section 4): the sharer bit vector.
            "SharerList": "Array[NodeId] of boolean",
        }.get(type_name, "Word")
        out.write(f"    {name} : {murphi_type};\n")
    out.write("  End;\n\n")

    out.write("Var\n")
    out.write("  blocks : Array[NodeId] of Array[Addr] of BlockRec;\n")
    out.write("  access : Array[NodeId] of Array[Addr] of AccessTag;\n")
    out.write("  net    : Array[NodeId] of Array[NodeId] of\n")
    out.write("             Record count : 0..NetMax;\n")
    out.write("                    msgs : Array[0..NetMax-1] of MessageRec;\n")
    out.write("             End;\n")
    out.write("  blocked : Array[NodeId] of boolean;\n\n")

    # Handler procedures (entry + resume fragments).
    for key in sorted(protocol.handlers):
        handler = protocol.handlers[key]
        emitter = _MurphiExpr(protocol, handler)
        entries = [(handler.entry, None)] + [
            (site.resume_block, site) for site in handler.suspend_sites]
        for entry_block, site in entries:
            name = _proc_name(handler, entry_block)
            out.write(f"Procedure {name}(n : NodeId; a : Addr; "
                      "msg : MessageRec);\n")
            if handler.frame_vars:
                out.write("Var\n")
                for var in handler.frame_vars:
                    out.write(f"  {emitter.frame_name(var)} : Word;\n")
            out.write("Begin\n")
            out.write(f"  -- {handler.qualified_name}"
                      + (f" (resume after suspend {site.site_id})"
                         if site else "") + "\n")
            if site is None:
                out.write(f"  {emitter.frame_name(handler.params[0])}"
                          " := a;\n")
                out.write(f"  {emitter.frame_name(handler.params[2])}"
                          " := msg.src;\n")
            else:
                for index, var in enumerate(site.save_set):
                    out.write(f"  {emitter.frame_name(var)} := "
                              f"blocks[n][a].cont.saved[{index}];\n")
            lines: list[str] = []
            _emit_stmts(lines, emitter, handler, entry_block, 1, set())
            for line in lines:
                out.write(line + "\n")
            out.write("End;\n\n")

    # Runtime helper procedures, so the unit is self-contained.
    out.write("-- runtime helpers ------------------------------------\n\n")
    out.write("Function HomeOf(a : Addr) : NodeId;\n")
    out.write("Begin\n  return a % NodeCount;\nEnd;\n\n")
    out.write("Function ToWord(w : Word) : Word;\n")
    out.write("Begin\n  return w;\nEnd;\n\n")
    out.write("Function EmptyMessage() : MessageRec;\n")
    out.write("Var m : MessageRec;\n")
    out.write("Begin\n")
    out.write(f"  m.tag := M_{sorted(protocol.messages)[0]};\n")
    out.write("  m.addr := 0; m.src := 0; m.hasData := false;\n")
    out.write("  return m;\nEnd;\n\n")
    out.write("Procedure NetSend(src : NodeId; dst : NodeId; tag : TagName;\n")
    out.write("                  a : Addr; hasData : boolean);\n")
    out.write("Begin\n")
    out.write("  Assert net[src][dst].count < NetMax \"channel overflow\";\n")
    out.write("  net[src][dst].msgs[net[src][dst].count].tag := tag;\n")
    out.write("  net[src][dst].msgs[net[src][dst].count].addr := a;\n")
    out.write("  net[src][dst].msgs[net[src][dst].count].src := src;\n")
    out.write("  net[src][dst].msgs[net[src][dst].count].hasData := hasData;\n")
    out.write("  net[src][dst].count := net[src][dst].count + 1;\n")
    out.write("End;\n\n")
    out.write("Procedure NetPop(src : NodeId; dst : NodeId);\n")
    out.write("Begin\n")
    out.write("  For i : 0..NetMax-2 Do\n")
    out.write("    net[src][dst].msgs[i] := net[src][dst].msgs[i+1];\n")
    out.write("  End;\n")
    out.write("  net[src][dst].count := net[src][dst].count - 1;\n")
    out.write("End;\n\n")
    out.write("Procedure QueueDefer(n : NodeId; a : Addr; msg : MessageRec);\n")
    out.write("Begin\n")
    out.write("  -- deferred-queue bookkeeping elided: redelivery after the\n")
    out.write("  -- next state change, as in the executable runtime\n")
    out.write("End;\n\n")

    # Message dispatch over the (state, tag) table.
    out.write("Procedure Dispatch(n : NodeId; msg : MessageRec);\n")
    out.write("Var a : Addr;\n")
    out.write("Begin\n")
    out.write("  a := msg.addr;\n")
    out.write("  switch blocks[n][a].state\n")
    for state_name in sorted(protocol.states):
        state = protocol.states[state_name]
        out.write(f"  case S_{state_name}:\n")
        out.write("    switch msg.tag\n")
        for message_name in sorted(state.handlers):
            handler = state.handlers[message_name]
            out.write(f"    case M_{message_name}:\n")
            out.write(f"      {_proc_name(handler)}(n, a, msg);\n")
        if state.default is not None:
            out.write("    else\n")
            out.write(f"      {_proc_name(state.default)}(n, a, msg);\n")
        else:
            out.write("    else\n")
            out.write('      error "message with no handler";\n')
        out.write("    endswitch;\n")
    out.write("  endswitch;\nEnd;\n\n")

    # Access-fault entry point for the event-generation rules.
    out.write("Procedure TakeFault(n : NodeId; a : Addr; tag : TagName);\n")
    out.write("Var m : MessageRec;\n")
    out.write("Begin\n")
    out.write("  m.tag := tag; m.addr := a; m.src := n; "
              "m.hasData := false;\n")
    out.write("  blocked[n] := true;\n")
    out.write("  Dispatch(n, m);\n")
    out.write("End;\n\n")

    # Resume dispatcher.
    out.write("Procedure ResumeCont(n : NodeId; a : Addr; frag : FragId);\n")
    out.write("Begin\n")
    out.write("  switch frag\n")
    for key in sorted(protocol.handlers):
        handler = protocol.handlers[key]
        for site in handler.suspend_sites:
            out.write(f"  case {_frag_id(handler, site.site_id)}:\n")
            out.write(f"    {_proc_name(handler, site.resume_block)}"
                      "(n, a, EmptyMessage());\n")
    out.write("  else\n")
    out.write('    error "resume of unknown fragment";\n')
    out.write("  endswitch;\nEnd;\n\n")

    # Delivery rules.
    out.write("Ruleset src : NodeId; dst : NodeId Do\n")
    out.write('  Rule "deliver message"\n')
    out.write("    net[src][dst].count > 0\n")
    out.write("  ==>\n")
    out.write("  Begin\n")
    out.write("    Dispatch(dst, net[src][dst].msgs[0]);\n")
    out.write("    NetPop(src, dst);\n")
    out.write("  End;\nEnd;\n\n")

    # Event generation loop (the paper: supplied per protocol).  Plain
    # loads and stores always; protocol-specific local events (any
    # declared *_FAULT message beyond the access faults) get a rule
    # each, mirroring repro.verify's event generators.
    out.write("Ruleset n : NodeId; a : Addr Do\n")
    event_rules = [("load a block", "M_RD_FAULT"),
                   ("store a block", "M_WR_FAULT")]
    for message in sorted(protocol.messages):
        if message.endswith("_FAULT") and message not in (
                "RD_FAULT", "WR_FAULT", "WR_RO_FAULT"):
            label = message[:-6].replace("_", " ").lower() + " operation"
            event_rules.append((label, f"M_{message}"))
    for label, fault in event_rules:
        out.write(f'  Rule "{label}"\n')
        out.write("    !blocked[n]\n")
        out.write("  ==>\n")
        out.write("  Begin\n")
        out.write(f"    TakeFault(n, a, {fault});\n")
        out.write("  End;\n")
    out.write("End;\n\n")

    out.write("Startstate\n")
    out.write("Begin\n")
    out.write("  For n : NodeId Do For a : Addr Do\n")
    out.write("    if HomeOf(a) = n then\n")
    out.write(f"      blocks[n][a].state := "
              f"S_{protocol.initial_home_state};\n")
    out.write("      access[n][a] := ACC_RW;\n")
    out.write("    else\n")
    out.write(f"      blocks[n][a].state := "
              f"S_{protocol.initial_cache_state};\n")
    out.write("      access[n][a] := ACC_INV;\n")
    out.write("    endif;\n")
    out.write("    blocks[n][a].cont.frag := F_NONE;\n")
    out.write("  End; End;\nEnd;\n\n")

    out.write('Invariant "single writer"\n')
    out.write("  Forall a : Addr Do\n")
    out.write("    Forall n1 : NodeId Do Forall n2 : NodeId Do\n")
    out.write("      (n1 != n2 & access[n1][a] = ACC_RW)\n")
    out.write("      -> (access[n2][a] = ACC_INV)\n")
    out.write("    End End\n")
    out.write("  End;\n")
    return out.getvalue()
