"""Code generators for compiled Teapot protocols.

The paper's compiler has two back ends fed from one source (its central
verification claim): executable C and Mur-phi model-checker input.  This
package adds a third, executable Python, which is the form this
reproduction actually runs (the C text is emitted for fidelity and
golden-tested, but no C toolchain is assumed).
"""

from repro.backends.python_backend import (
    GeneratedProtocolRunner,
    emit_python,
)
from repro.backends.c_backend import emit_c
from repro.backends.murphi_backend import emit_murphi

__all__ = [
    "emit_python",
    "GeneratedProtocolRunner",
    "emit_c",
    "emit_murphi",
]
