"""The C back end: split handlers as C source text (Figures 9 and 10).

Reproduces the paper's compilation scheme faithfully in shape:

- one C function per handler *fragment* -- the code up to a ``Suspend``
  and, for each suspend site, a ``<HANDLER>_after_<L>`` function that
  restores the saved environment and continues;
- a continuation record struct holding the function pointer plus the
  (liveness-trimmed) saved variables;
- statically allocated continuation records for sites whose save set is
  empty (the constant-continuation optimisation), and direct calls in
  place of indirect ones where a constant continuation reaches a Resume;
- a dispatch table mapping (state, message) to the entry fragment.

The output is valid-looking C against the ``teapot_rt.h`` runtime
interface; it is golden-tested rather than compiled (this reproduction
assumes no C toolchain).
"""

from __future__ import annotations

import io

from repro.lang import ast
from repro.lang.errors import CompileError
from repro.compiler.ir import (
    HandlerIR,
    IAssign,
    ICall,
    IPrint,
    IResume,
    TBranch,
    TGoto,
    TReturn,
    TSuspend,
)
from repro.runtime.protocol import CompiledProtocol

_C_TYPES = {
    "INT": "int",
    "BOOL": "int",
    "STRING": "const char *",
    "CONT": "tpt_cont_t *",
    "NODE": "tpt_node_t",
    "ID": "tpt_id_t",
    "INFO": "tpt_info_t *",
    "MSGTAG": "tpt_tag_t",
    "ACCESSMODE": "tpt_access_t",
    "VALUE": "tpt_word_t",
    "ADDR": "tpt_word_t",
    "SharerList": "tpt_sharers_t",
}

_C_OPS = {
    "=": "==", "!=": "!=", "<": "<", "<=": "<=", ">": ">", ">=": ">=",
    "+": "+", "-": "-", "*": "*", "/": "/", "%": "%",
    "And": "&&", "Or": "||",
}


def _c_type(type_name: str) -> str:
    return _C_TYPES.get(type_name, f"tpt_{type_name.lower()}_t")


def _frag_name(handler: HandlerIR, block_id: int | None = None) -> str:
    base = f"{handler.state_name}__{handler.message_name}"
    if block_id is None or block_id == handler.entry:
        return base
    for site in handler.suspend_sites:
        if site.resume_block == block_id:
            return f"{base}_after_{site.cont_name}{site.site_id}"
    return f"{base}_bb{block_id}"


class _CExpr:
    """Compiles Teapot expressions to C expression strings."""

    def __init__(self, protocol: CompiledProtocol, handler: HandlerIR):
        self.protocol = protocol
        self.handler = handler
        self.frame = set(handler.frame_vars)

    def emit(self, expr: ast.Expr) -> str:
        if isinstance(expr, ast.IntLit):
            return str(expr.value)
        if isinstance(expr, ast.BoolLit):
            return "1" if expr.value else "0"
        if isinstance(expr, ast.StrLit):
            escaped = expr.value.replace("\\", "\\\\").replace('"', '\\"')
            return f'"{escaped}"'
        if isinstance(expr, ast.NameRef):
            return self._name(expr.name)
        if isinstance(expr, ast.CallExpr):
            args = ", ".join(["rt"] + [self.emit(a) for a in expr.args])
            return f"tpt_{expr.name}({args})"
        if isinstance(expr, ast.StateExpr):
            # State constructors appear only inside SetState / Suspend,
            # which the statement emitters handle; a bare reference is a
            # state id constant.
            return f"STATE_{expr.name}"
        if isinstance(expr, ast.BinOp):
            return (f"({self.emit(expr.left)} {_C_OPS[expr.op]} "
                    f"{self.emit(expr.right)})")
        if isinstance(expr, ast.UnOp):
            inner = self.emit(expr.operand)
            return f"(!{inner})" if expr.op == "Not" else f"(-{inner})"
        raise CompileError(f"cannot emit C for {expr!r}")

    def _name(self, name: str) -> str:
        if name in self.frame:
            return name
        if name in self.protocol.info_vars:
            return f"info->{name}"
        if name in self.protocol.consts:
            return f"K_{name}"
        if name == "MyNode":
            return "tpt_my_node(rt)"
        if name == "Nobody":
            return "TPT_NOBODY"
        if name == "MessageTag":
            return "rt->msg_tag"
        if name.startswith("Blk_"):
            return name.upper()
        if name in self.protocol.messages:
            return f"MSG_{name}"
        raise CompileError(f"cannot resolve {name!r} in C back end")


def _emit_fragment(out: io.StringIO, protocol: CompiledProtocol,
                   handler: HandlerIR, entry_block: int,
                   restore: tuple[str, ...]) -> None:
    emitter = _CExpr(protocol, handler)
    name = _frag_name(handler, entry_block)
    out.write(f"static void {name}(tpt_rt_t *rt")
    if entry_block == handler.entry:
        for param in handler.params:
            out.write(f", {_c_type(handler.param_types[param])} {param}")
        out.write(")\n{\n")
    else:
        out.write(", tpt_cont_t *__k)\n{\n")
    # Local declarations.
    declared = set(handler.params) if entry_block == handler.entry else set()
    for var in handler.frame_vars:
        if var in declared:
            continue
        type_name = (handler.locals.get(var)
                     or handler.state_params.get(var)
                     or handler.param_types.get(var)
                     or "CONT")
        out.write(f"    {_c_type(type_name)} {var};\n")
    if entry_block != handler.entry:
        out.write("    /* restore the continuation environment */\n")
        for index, var in enumerate(restore):
            out.write(f"    {var} = TPT_RESTORE(__k, {index}, "
                      f"{_c_type(_var_type(handler, var))});\n")
        out.write("    tpt_free_cont(rt, __k);\n")
    out.write("    int __pc = %d;\n" % entry_block)
    out.write("    for (;;) switch (__pc) {\n")
    reachable = _reachable_without_resume_entries(handler, entry_block)
    for block_id in sorted(reachable):
        block = handler.blocks[block_id]
        out.write(f"    case {block_id}:\n")
        for op in block.ops:
            for line in _emit_c_op(emitter, handler, op):
                out.write(f"        {line}\n")
        for line in _emit_c_term(emitter, handler, block.terminator):
            out.write(f"        {line}\n")
    out.write("    default:\n")
    out.write("        tpt_panic(rt, \"bad pc\");\n")
    out.write("    }\n}\n\n")


def _var_type(handler: HandlerIR, var: str) -> str:
    return (handler.locals.get(var)
            or handler.state_params.get(var)
            or handler.param_types.get(var)
            or "CONT")


def _reachable_without_resume_entries(handler: HandlerIR,
                                      entry: int) -> set[int]:
    """Blocks a fragment may execute: reachable from its entry, stopping
    at suspend terminators (their resume targets belong to the next
    fragment)."""
    seen: set[int] = set()
    stack = [entry]
    while stack:
        block_id = stack.pop()
        if block_id in seen:
            continue
        seen.add(block_id)
        term = handler.blocks[block_id].terminator
        if isinstance(term, TGoto):
            stack.append(term.target)
        elif isinstance(term, TBranch):
            stack.extend((term.true_target, term.false_target))
        # TSuspend: the resume target starts the *next* fragment.
    return seen


def _emit_c_op(emitter: _CExpr, handler: HandlerIR, op) -> list[str]:
    if isinstance(op, IAssign):
        return [f"{emitter._name(op.target)} = {emitter.emit(op.value)};"]
    if isinstance(op, ICall):
        if op.name == "SetState":
            state_expr = op.args[1]
            assert isinstance(state_expr, ast.StateExpr)
            args = "".join(
                f", (tpt_word_t){emitter.emit(a)}" for a in state_expr.args)
            return [f"tpt_set_state(rt, info, STATE_{state_expr.name}"
                    f"{args});"]
        args = ", ".join(["rt"] + [emitter.emit(a) for a in op.args])
        return [f"tpt_{op.name}({args});"]
    if isinstance(op, IResume):
        cont = emitter.emit(op.cont)
        if op.direct_site is not None and op.direct_handler is not None:
            state_name, message_name = op.direct_handler.split(".", 1)
            target = emitter.protocol.handlers[(state_name, message_name)]
            site = target.suspend_sites[op.direct_site]
            frag = _frag_name(target, site.resume_block)
            return [f"/* constant continuation: inlined call */",
                    f"{frag}(rt, {cont});"]
        return [f"({cont})->func_ptr(rt, {cont});"]
    if isinstance(op, IPrint):
        args = ", ".join(emitter.emit(a) for a in op.args)
        return [f"tpt_print(rt, {args});"]
    raise CompileError(f"cannot emit C op {op!r}")


def _emit_c_term(emitter: _CExpr, handler: HandlerIR, term) -> list[str]:
    if isinstance(term, TGoto):
        return [f"__pc = {term.target}; continue;"]
    if isinstance(term, TBranch):
        return [f"__pc = {emitter.emit(term.cond)} ? {term.true_target} "
                f": {term.false_target}; continue;"]
    if isinstance(term, TReturn):
        return ["return; /* exit */"]
    if isinstance(term, TSuspend):
        site = handler.suspend_sites[term.site_id]
        frag = _frag_name(handler, site.resume_block)
        lines = []
        if site.is_static:
            lines.append(f"/* empty save set: statically allocated "
                         f"continuation */")
            lines.append(f"{site.cont_name} = &{frag}_static_cont;")
        else:
            lines.append(f"{site.cont_name} = tpt_alloc_cont(rt, "
                         f"{len(site.save_set)});")
            lines.append(f"{site.cont_name}->func_ptr = {frag};")
            for index, var in enumerate(site.save_set):
                lines.append(f"TPT_SAVE({site.cont_name}, {index}, {var});")
        target_args = "".join(
            f", (tpt_word_t){emitter.emit(a)}" for a in site.target.args)
        lines.append(f"tpt_set_state(rt, info, STATE_{site.target.name}"
                     f"{target_args});")
        lines.append("return; /* yield until resumed */")
        return lines
    raise CompileError(f"cannot emit C terminator {term!r}")


def emit_c(protocol: CompiledProtocol) -> str:
    """Generate the C translation unit for ``protocol``."""
    out = io.StringIO()
    out.write("/* Generated by the Teapot C back end.\n")
    out.write(f" * protocol: {protocol.name}\n")
    out.write(f" * optimisation level: {protocol.opt_level.name}\n")
    out.write(" */\n\n")
    out.write('#include "teapot_rt.h"\n\n')

    out.write("/* protocol states */\n")
    out.write("enum {\n")
    for index, name in enumerate(sorted(protocol.states)):
        out.write(f"    STATE_{name} = {index},\n")
    out.write("};\n\n")

    out.write("/* protocol messages */\n")
    out.write("enum {\n")
    for index, name in enumerate(sorted(protocol.messages)):
        out.write(f"    MSG_{name} = {index},\n")
    out.write("};\n\n")

    if protocol.consts:
        out.write("/* protocol constants */\n")
        for name, value in sorted(protocol.consts.items()):
            literal = "1" if value is True else "0" if value is False else value
            out.write(f"#define K_{name} ({literal})\n")
        out.write("\n")

    out.write("/* per-block protocol record */\n")
    out.write("struct tpt_info {\n")
    for name, type_name in protocol.info_vars.items():
        out.write(f"    {_c_type(type_name)} {name};\n")
    out.write("};\n\n")

    # Forward declarations, then fragments.
    handlers = [protocol.handlers[k] for k in sorted(protocol.handlers)]
    for handler in handlers:
        for site in handler.suspend_sites:
            frag = _frag_name(handler, site.resume_block)
            out.write(f"static void {frag}(tpt_rt_t *rt, tpt_cont_t *__k);\n")
            if site.is_static:
                out.write(f"static tpt_cont_t {frag}_static_cont = "
                          f"{{ .func_ptr = {frag} }};\n")
    out.write("\n")

    for handler in handlers:
        _emit_fragment(out, protocol, handler, handler.entry, ())
        for site in handler.suspend_sites:
            _emit_fragment(out, protocol, handler, site.resume_block,
                           site.save_set)

    out.write("/* dispatch table: (state, message) -> entry fragment */\n")
    out.write("const tpt_dispatch_entry_t "
              f"{protocol.name.lower()}_dispatch[] = {{\n")
    for handler in handlers:
        entry = _frag_name(handler, handler.entry)
        message = (f"MSG_{handler.message_name}"
                   if handler.message_name != "DEFAULT" else "TPT_DEFAULT")
        out.write(f"    {{ STATE_{handler.state_name}, {message}, "
                  f"(tpt_handler_fn){entry} }},\n")
    out.write("    { 0, 0, 0 }\n};\n")
    return out.getvalue()
