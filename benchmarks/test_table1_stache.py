"""Table 1: Performance of the Teapot system with the Stache protocol.

Paper columns: execution time for the hand-written C state machine,
Teapot unoptimized (live-variable analysis only), and Teapot optimized
(plus constant continuations); continuation+queue records allocated
(optimized / unoptimized); and the average fault-time fraction.

Paper values for reference (cycles in millions; % over C):
    gauss   1930M   +11.4%  +6.2%   65.7K/551K    40%
    appbt   1860M   +13%    +7%     19.9K/1197K   36%
    shallow 1160M   +13%    +10%    0.3K/1001K    44%
    mp3d    2210M   +5.9%   +5%     443K/3249K    72%

Shape asserted here: both Teapot columns cost more than C but stay
under ~25%; optimization cuts continuation allocations by a large
factor; fault time is a substantial fraction of execution.
"""

import pytest

from repro.protocols import compile_named_protocol
from repro.runtime.protocol import OptLevel
from repro.workloads import STACHE_WORKLOADS, run_workload

N_NODES = 32  # the paper's machine size

CONFIGS = [
    ("stache_sm", OptLevel.O2, "C State Machine"),
    ("stache", OptLevel.O1, "Teapot Unoptimized"),
    ("stache", OptLevel.O2, "Teapot Optimized"),
]


def run_row(workload_name):
    factory, blocks_fn = STACHE_WORKLOADS[workload_name]
    programs = factory(n_nodes=N_NODES)
    results = {}
    for protocol_name, level, label in CONFIGS:
        protocol = compile_named_protocol(protocol_name, opt_level=level)
        results[label] = run_workload(
            protocol, workload_name, [list(p) for p in programs],
            blocks_fn(N_NODES))
    return results


@pytest.mark.parametrize("workload", list(STACHE_WORKLOADS))
def test_table1_row(benchmark, report, workload):
    results = benchmark.pedantic(run_row, args=(workload,),
                                 rounds=1, iterations=1)
    base = results["C State Machine"]
    unopt = results["Teapot Unoptimized"]
    opt = results["Teapot Optimized"]

    lines = [
        f"Table 1 row: {workload} (Stache, {N_NODES} nodes)",
        f"{'version':20s} {'cycles':>10s} {'vs C':>8s} "
        f"{'cont+queue allocs':>18s} {'fault time':>11s}",
    ]
    for label, row in results.items():
        lines.append(
            f"{label:20s} {row.cycles:>10d} "
            f"{row.overhead_vs(base):>+7.1f}% "
            f"{row.alloc_records:>18d} "
            f"{row.fault_time_fraction:>10.0%}")
    lines.append(
        f"alloc reduction (opt/unopt): "
        f"{opt.cont_allocs}/{unopt.cont_allocs}")
    report(f"table1_{workload}", lines)

    # --- shape assertions -------------------------------------------------
    assert base.cycles < unopt.cycles, "C must beat unoptimized Teapot"
    assert base.cycles < opt.cycles, "C must beat optimized Teapot"
    assert unopt.overhead_vs(base) < 25.0
    assert opt.overhead_vs(base) < 25.0
    # Optimization reduces continuation allocations substantially
    # (paper: 2.3x to 3300x depending on workload).
    assert opt.cont_allocs < unopt.cont_allocs
    # Fault time is a first-order fraction of execution (paper: 36-72%).
    assert 0.15 < base.fault_time_fraction < 0.95


def test_table1_optimization_narrows_the_gap(benchmark, report):
    """Across the whole table, the optimized geomean overhead must not
    exceed the unoptimized one (the paper's Section 6 conclusion)."""

    def run_all():
        return {name: run_row(name) for name in STACHE_WORKLOADS}

    table = benchmark.pedantic(run_all, rounds=1, iterations=1)
    unopt_overheads = []
    opt_overheads = []
    for results in table.values():
        base = results["C State Machine"]
        unopt_overheads.append(
            results["Teapot Unoptimized"].overhead_vs(base))
        opt_overheads.append(
            results["Teapot Optimized"].overhead_vs(base))
    mean_unopt = sum(unopt_overheads) / len(unopt_overheads)
    mean_opt = sum(opt_overheads) / len(opt_overheads)
    report("table1_summary", [
        "Table 1 summary (mean overhead vs hand-written C)",
        f"Teapot Unoptimized: +{mean_unopt:.1f}%   (paper: +5.9..13%)",
        f"Teapot Optimized:   +{mean_opt:.1f}%   (paper: +5..10%)",
    ])
    assert mean_opt <= mean_unopt
    assert mean_opt < 20.0
