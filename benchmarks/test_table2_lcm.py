"""Table 2: Performance of the Teapot system with the LCM protocol.

Paper values for reference (cycles; % over C):
    adaptive 3301M  +4.2%   +2.3%   124K/4410K   28%
    stencil  3717M  +10.8%  +3.8%   3347K/7452K  63%
    unstruct 1431M  +19.4%  +16.4%  62K/2572K    38%

Shape asserted: Teapot costs more than the hand-written state machine
but stays moderate; optimization helps; unstruct is the worst case.
"""

import pytest

from repro.protocols import compile_named_protocol
from repro.runtime.protocol import OptLevel
from repro.workloads import LCM_WORKLOADS, run_workload

N_NODES = 32  # the paper's machine size

CONFIGS = [
    ("lcm_sm", OptLevel.O2, "C State Machine"),
    ("lcm", OptLevel.O1, "Teapot Unoptimized"),
    ("lcm", OptLevel.O2, "Teapot Optimized"),
]


def run_row(workload_name):
    factory, blocks_fn = LCM_WORKLOADS[workload_name]
    programs = factory(n_nodes=N_NODES)
    results = {}
    for protocol_name, level, label in CONFIGS:
        protocol = compile_named_protocol(protocol_name, opt_level=level)
        results[label] = run_workload(
            protocol, workload_name, [list(p) for p in programs],
            blocks_fn(N_NODES))
    return results


@pytest.mark.parametrize("workload", list(LCM_WORKLOADS))
def test_table2_row(benchmark, report, workload):
    results = benchmark.pedantic(run_row, args=(workload,),
                                 rounds=1, iterations=1)
    base = results["C State Machine"]
    unopt = results["Teapot Unoptimized"]
    opt = results["Teapot Optimized"]

    lines = [
        f"Table 2 row: {workload} (LCM, {N_NODES} nodes)",
        f"{'version':20s} {'cycles':>10s} {'vs C':>8s} "
        f"{'cont+queue allocs':>18s} {'fault time':>11s}",
    ]
    for label, row in results.items():
        lines.append(
            f"{label:20s} {row.cycles:>10d} "
            f"{row.overhead_vs(base):>+7.1f}% "
            f"{row.alloc_records:>18d} "
            f"{row.fault_time_fraction:>10.0%}")
    report(f"table2_{workload}", lines)

    assert base.cycles < unopt.cycles
    assert unopt.overhead_vs(base) < 25.0   # paper's worst: 19.4%
    assert opt.overhead_vs(base) < 22.0     # paper's worst: 16.4%
    assert opt.cont_allocs < unopt.cont_allocs


def test_table2_variants_run_the_same_workloads(benchmark, report):
    """Section 6: Teapot made three LCM variants easy to build.  The
    equivalent state machine versions 'were not available' -- but all
    variants must run the Table 2 workloads correctly."""

    def run_variants():
        factory, blocks_fn = LCM_WORKLOADS["stencil"]
        programs = factory(n_nodes=8)
        rows = {}
        for name in ("lcm", "lcm_update", "lcm_mcc", "lcm_both"):
            protocol = compile_named_protocol(name)
            rows[name] = run_workload(
                protocol, "stencil", [list(p) for p in programs],
                blocks_fn(8))
        return rows

    rows = benchmark.pedantic(run_variants, rounds=1, iterations=1)
    lines = ["LCM variants on stencil (8 nodes)",
             f"{'variant':12s} {'cycles':>10s} {'messages':>9s} "
             f"{'faults':>7s}"]
    for name, row in rows.items():
        lines.append(f"{name:12s} {row.cycles:>10d} "
                     f"{row.stats.messages:>9d} "
                     f"{row.stats.total_faults:>7d}")
    report("table2_variants", lines)
    # The update variant saves consumer faults on this
    # producer-consumer-ish workload.
    assert rows["lcm_update"].stats.total_faults <= \
        rows["lcm"].stats.total_faults
