"""Table 3: Protocol verification times.

The paper reports wall-clock seconds on a 66 MHz SparcStation for
Mur-phi runs over minimal configurations:

    Stache          2 nodes, 2 addresses, 1 reordering   4900 s
    Buffered-Write  2 nodes, 1 address,   1 reordering    302 s
    LCM simple      2 nodes, 1 address,   1 reordering  11515 s
    LCM MCC         2 nodes, 1 address,   1 reordering   5804 s (+8745)

Our checker regenerates the same experiment: the same configurations,
with states explored and wall time reported.  Shape preserved: LCM's
state space dwarfs Stache's at the same configuration ("hundreds of
times as many configurations" -- Section 7), reordering inflates every
space, and all four protocols verify clean.
"""

import pytest

from repro.protocols import compile_named_protocol
from repro.verify import ModelChecker, ParallelChecker, events_for_protocol
from repro.verify.invariants import standard_invariants

# (label, protocol, nodes, addresses, reordering)
TABLE3_CONFIGS = [
    ("Stache", "stache", 2, 2, 1),
    ("Buffered-Write", "buffered_write", 2, 1, 1),
    ("LCM Simple", "lcm", 2, 1, 1),
    ("LCM MCC", "lcm_mcc", 2, 1, 1),
]


def verify(name, nodes, addrs, reorder, workers=0):
    protocol = compile_named_protocol(name)
    coherent = not name.startswith("buffered")
    cls = ModelChecker if workers == 0 else ParallelChecker
    extra = {} if workers == 0 else {"workers": workers}
    checker = cls(
        protocol, n_nodes=nodes, n_blocks=addrs, reorder_bound=reorder,
        events=events_for_protocol(name),
        invariants=standard_invariants(coherent=coherent), **extra)
    return checker.run()


@pytest.mark.parametrize("label,name,nodes,addrs,reorder", TABLE3_CONFIGS)
def test_table3_row(benchmark, report, label, name, nodes, addrs, reorder):
    result = benchmark.pedantic(verify, args=(name, nodes, addrs, reorder),
                                rounds=1, iterations=1)
    report(f"table3_{name}", [
        f"Table 3 row: {label}",
        f"configuration: {nodes} nodes, {addrs} address(es), "
        f"{reorder} reordering max",
        f"states explored: {result.states_explored}",
        f"transitions:     {result.transitions}",
        f"time taken:      {result.elapsed_seconds:.2f} s",
        f"verdict:         {'PASS' if result.ok else 'FAIL'}",
    ])
    assert result.ok, result.violation and result.violation.format_trace()
    assert not result.hit_state_limit


def test_table3_lcm_dwarfs_stache(benchmark, report):
    """Section 7's footnote: LCM's space is far larger than Stache's at
    the same configuration."""

    def measure():
        return (verify("stache", 2, 1, 1), verify("lcm", 2, 1, 1))

    stache, lcm = benchmark.pedantic(measure, rounds=1, iterations=1)
    ratio = lcm.states_explored / stache.states_explored
    report("table3_ratio", [
        "LCM versus Stache state-space size (2 nodes, 1 address, "
        "1 reordering)",
        f"Stache: {stache.states_explored} states",
        f"LCM:    {lcm.states_explored} states",
        f"ratio:  {ratio:.1f}x (paper: 'hundreds of times' at full "
        "configuration)",
    ])
    assert ratio > 5.0


def test_table3_reordering_explodes_the_space(benchmark, report):
    """Table 3 footnote (a): out-of-order messages increase the number
    of states explored; unrestricted reordering was impractical."""

    def measure():
        return [verify("stache", 2, 1, k) for k in (0, 1, 2)]

    results = benchmark.pedantic(measure, rounds=1, iterations=1)
    lines = ["State-space growth with the reordering bound (Stache, "
             "2 nodes, 1 address)"]
    for k, result in enumerate(results):
        lines.append(f"reorder={k}: {result.states_explored} states, "
                     f"{result.transitions} transitions")
    report("table3_reordering", lines)
    assert results[0].states_explored < results[1].states_explored
    assert results[1].states_explored <= results[2].states_explored


def test_table3_parallel_consistency(benchmark, report):
    """The sharded checker regenerates the Table 3 LCM MCC row exactly:
    same verdict and state count as the serial exploration, at any
    worker count."""

    def measure():
        return (verify("lcm_mcc", 2, 1, 1),
                verify("lcm_mcc", 2, 1, 1, workers=2))

    serial, sharded = benchmark.pedantic(measure, rounds=1, iterations=1)
    report("table3_parallel", [
        "Table 3 row LCM MCC, serial versus 2-worker sharded exploration",
        f"serial:  {serial.states_explored} states, "
        f"{serial.transitions} transitions, {serial.elapsed_seconds:.2f} s",
        f"sharded: {sharded.states_explored} states, "
        f"{sharded.transitions} transitions, {sharded.elapsed_seconds:.2f} s",
        f"verdicts agree: {serial.ok == sharded.ok}",
    ])
    assert serial.ok and sharded.ok
    assert sharded.states_explored == serial.states_explored
    assert sharded.transitions == serial.transitions
    assert sharded.handler_fires == serial.handler_fires
