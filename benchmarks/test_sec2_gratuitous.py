"""Section 2: the PutNoData / gratuitous-ReadRequest reordering problem.

"A ReadRequest from a processor that already has a readable copy cannot
be ignored or treated as an error.  The processor may have returned its
copy with a PutNoData message and subsequently requested a readable
copy ...  If messages can pass each other, the seemingly gratuitous
ReadRequest must be retained and processed after the PutNoData message.
Teapot, by default, queues such messages."

`stache_evict` realises the scenario with cache replacement.  The
benchmark verifies the full protocol across configurations and then
re-creates the paper's failure mode: with evictions unacknowledged and
the retained-request discipline replaced by an error, the checker
produces the gratuitous-request counterexample.
"""

from repro.compiler.pipeline import compile_source
from repro.protocols import compile_named_protocol, load_protocol_source
from repro.verify import EvictEvents, ModelChecker


def test_sec2_eviction_protocol_verifies(benchmark, report):
    def measure():
        protocol = compile_named_protocol("stache_evict")
        return [
            ModelChecker(protocol, n_nodes=nodes, n_blocks=addrs,
                         reorder_bound=reorder, events=EvictEvents()).run()
            for nodes, addrs, reorder in
            [(2, 1, 0), (2, 1, 1), (3, 1, 0), (2, 2, 1)]
        ]

    results = benchmark.pedantic(measure, rounds=1, iterations=1)
    lines = ["Section 2: Stache with cache replacement (stache_evict)"]
    for result in results:
        lines.append(result.summary())
    report("sec2_eviction", lines)
    assert all(result.ok for result in results)


def test_sec2_retained_request_is_load_bearing(benchmark, report):
    def break_it():
        source = load_protocol_source("stache_evict")
        # Treat the gratuitous request as an error instead of queueing.
        queue_branch = """      Enqueue(MessageTag, id, info, src);
    Else
      AddSharer(info, src);
      SendBlk(src, GET_RO_RESP, id);
    Endif;"""
        assert queue_branch in source
        broken = source.replace(queue_branch, """      Error("gratuitous ReadRequest from a current sharer");
    Else
      AddSharer(info, src);
      SendBlk(src, GET_RO_RESP, id);
    Endif;""", 1)
        # Re-open the overtake window: un-acknowledge the RO eviction.
        sync = """    Send(HomeNode(id), PUT_NO_DATA, id);
    AccessChange(id, Blk_Invalidate);
    Suspend(L, Cache_Await_EvictAck{L});
    SetState(info, Cache_Invalid{});
    WakeUp(id);"""
        assert sync in broken
        broken = broken.replace(sync, """    Send(HomeNode(id), PUT_NO_DATA, id);
    AccessChange(id, Blk_Invalidate);
    SetState(info, Cache_Invalid{});
    WakeUp(id);""", 1)
        protocol = compile_source(
            broken, initial_states=("Home_Idle", "Cache_Invalid"))
        return ModelChecker(protocol, n_nodes=2, n_blocks=1,
                            reorder_bound=1, events=EvictEvents()).run()

    result = benchmark.pedantic(break_it, rounds=1, iterations=1)
    lines = ["Section 2 ablation: error instead of retaining the "
             "gratuitous request (unacknowledged evictions)",
             result.summary()]
    if result.violation is not None:
        lines.append(result.violation.format_trace())
    report("sec2_ablation", lines)
    assert not result.ok
    assert "gratuitous" in result.violation.message
