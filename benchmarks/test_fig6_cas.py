"""Figure 6 / Section 2: the cost of adding Compare&Swap.

"This primitive is a minor variation of a WriteRequest ... Tracking a
pending Compare&Swap complicates nearly every transition in a home node
state machine.  The state machine-based implementation needs to test
for this condition at 14 different places."

The benchmark regenerates the comparison: handler-level diffstat of the
CAS extension against its base, in both styles, plus a functional run.
"""

from repro.analysis import protocol_diffstat
from repro.protocols import compile_named_protocol
from repro.tempest.machine import Machine, MachineConfig


def measure_diffs():
    teapot = protocol_diffstat(compile_named_protocol("stache"),
                               compile_named_protocol("stache_cas"))
    machine = protocol_diffstat(compile_named_protocol("stache_sm"),
                                compile_named_protocol("stache_cas_sm"))
    return teapot, machine


def test_fig6_extension_cost(benchmark, report):
    teapot, machine = benchmark.pedantic(measure_diffs, rounds=1,
                                         iterations=1)
    report("fig6_cas_cost", [
        "Figure 6: cost of adding Compare&Swap",
        f"Teapot (continuations): {teapot.summary()}",
        f"Hand-written SM:        {machine.summary()}",
        "",
        "SM handlers that had to change: "
        + ", ".join(machine.modified_handlers),
        f"SM per-block flag variables added: "
        + ", ".join(machine.added_info_vars),
    ])

    # The continuation version adds self-contained handlers only.
    assert teapot.modified_handlers == []
    assert teapot.added_info_vars == ["casResult"]
    # The SM version must thread pending-CAS flags through existing
    # transitions (the paper's 14-places problem).
    assert len(machine.modified_handlers) >= 7
    assert len(machine.added_info_vars) >= 6
    assert machine.touch_points > teapot.touch_points


def test_fig6_cas_works_under_contention(benchmark, report):
    """The extension is not just cheap to write -- it is correct:
    N racing CAS operations, exactly one winner."""

    def race(name, contenders=6):
        protocol = compile_named_protocol(name)
        programs = [[("write", 0, 0), ("barrier",), ("barrier",),
                     ("read", 0, "log")]]
        for node in range(1, contenders + 1):
            programs.append([
                ("barrier",),
                ("event", "CAS_FAULT", 0, (0, 0, node)),
                ("barrier",),
            ])
        machine = Machine(protocol, programs,
                          MachineConfig(n_nodes=contenders + 1, n_blocks=1))
        machine.run()
        machine.assert_quiescent()
        winners = [
            node for node in range(1, contenders + 1)
            if machine.nodes[node].store.record(0).info["casResult"]
        ]
        return winners, machine.nodes[0].observed[0][1]

    def race_both():
        return {name: race(name) for name in ("stache_cas",
                                               "stache_cas_sm")}

    outcomes = benchmark.pedantic(race_both, rounds=1, iterations=1)
    lines = ["Compare&Swap race (6 contenders)"]
    for name, (winners, final) in outcomes.items():
        lines.append(f"{name:14s} winner={winners} lock word={final}")
        assert len(winners) == 1
        assert final == winners[0]
    report("fig6_cas_race", lines)
