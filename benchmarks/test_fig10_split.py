"""Figures 3, 5, 9, 10: the compilation scheme.

Figure 9 shows a handler with a suspend point; Figure 10 the two C
functions the compiler splits it into, with the continuation record
saving exactly the values "referenced after the Suspend".  This
benchmark regenerates that artifact from the Stache recall handler and
reports the save-set sizes per optimisation level (the Section 5
optimisations).
"""

from repro.backends import emit_c
from repro.protocols import compile_named_protocol
from repro.runtime.protocol import OptLevel


def compile_all_levels():
    return {
        level: compile_named_protocol("stache", opt_level=level)
        for level in OptLevel
    }


def test_fig10_split_and_save_sets(benchmark, report):
    protocols = benchmark.pedantic(compile_all_levels, rounds=1,
                                   iterations=1)

    lines = ["Figure 10: handler splitting and continuation save sets",
             ""]
    for level, protocol in protocols.items():
        total_saved = sum(
            len(site.save_set)
            for handler in protocol.handlers.values()
            for site in handler.suspend_sites)
        lines.append(
            f"{level.name}: {protocol.stats.n_suspend_sites} suspend "
            f"sites, {total_saved} saved variables total, "
            f"{protocol.stats.n_static_sites} static, "
            f"{protocol.stats.n_inlined_resumes} inlined resumes")
    report("fig10_split", lines)

    o0, o1, o2 = (protocols[level] for level in OptLevel)

    def saved(protocol):
        return sum(len(s.save_set) for h in protocol.handlers.values()
                   for s in h.suspend_sites)

    # Liveness strictly shrinks the saved environment (Section 5).
    assert saved(o1) < saved(o0)
    assert saved(o2) == saved(o1)
    # Constant continuations appear only at O2.
    assert o0.stats.n_static_sites == 0
    assert o1.stats.n_static_sites == 0
    assert o2.stats.n_static_sites > 0
    assert o2.stats.n_inlined_resumes > 0


def test_fig10_generated_c_shape(benchmark, report):
    """The generated C contains exactly the Figure 10 artifacts."""
    protocol = compile_named_protocol("stache", opt_level=OptLevel.O2)
    text = benchmark.pedantic(emit_c, args=(protocol,), rounds=1,
                              iterations=1)
    lines = text.splitlines()

    # One entry fragment plus one after-L fragment per suspend site.
    entry_count = sum(1 for line in lines
                      if line.startswith("static void")
                      and "_after_" not in line and line.endswith(")")
                      is False)
    after_fragments = [line for line in lines
                       if "static void" in line and "_after_" in line
                       and line.rstrip().endswith(";") is False]
    report("fig10_c_shape", [
        "Generated C structure (Stache, O2)",
        f"total lines: {len(lines)}",
        f"resume fragments (HANDLER_after_L): "
        f"{len([l for l in lines if '_after_' in l and 'static void' in l and not l.rstrip().endswith(';')])}",
        f"static continuation records: "
        f"{len([l for l in lines if '_static_cont = ' in l])}",
        f"save/restore pairs: "
        f"{len([l for l in lines if 'TPT_SAVE' in l])} saves / "
        f"{len([l for l in lines if 'TPT_RESTORE' in l])} restores",
    ])
    assert any("_after_" in line for line in lines)
    saves = len([l for l in lines if "TPT_SAVE" in l])
    restores = len([l for l in lines if "TPT_RESTORE" in l])
    # A suspend inside a loop is reachable from its own resume fragment,
    # so its save block is emitted in both fragments: saves >= restores,
    # and every restored variable has a matching save.
    assert saves >= restores > 0
    saved_vars = {l.strip() for l in lines if "TPT_SAVE" in l}
    for handler in protocol.handlers.values():
        for site in handler.suspend_sites:
            if site.is_static:
                continue
            for index, var in enumerate(site.save_set):
                assert f"TPT_SAVE({site.cont_name}, {index}, {var});" \
                    in saved_vars
    assert protocol.stats.n_static_sites == \
        len([l for l in lines if "_static_cont = {" in l])
