"""Ablation: the unintended-message policy (Section 2).

"Teapot offers all three options [auxiliary state, nacks, queueing],
but advocates queuing unexpected messages ... Nacks can lead to
deadlock, so they must be employed carefully."

This benchmark substantiates the advocacy: the same transient state,
with its DEFAULT handler switched between queueing, nacking, and
erroring, is model-checked.  Queueing passes; erroring fails on the
first benign race; and naive nacking floods the network with retries.
"""

from repro.compiler.pipeline import compile_source
from repro.protocols import load_protocol_source
from repro.verify import ModelChecker
from repro.verify.events import StacheEvents

QUEUE_DEFAULT = """State Stache.Home_Await_Put{C : CONT}
Begin
  Message PUT_RESP (id : ID; Var info : INFO; src : NODE)
  Begin
    RecvData(id, Blk_Upgrade_RW);
    owner := Nobody;
    Resume(C);
  End;

  Message DEFAULT (id : ID; Var info : INFO; src : NODE)
  Begin
    Enqueue(MessageTag, id, info, src);
  End;
End;"""

ERROR_DEFAULT = QUEUE_DEFAULT.replace(
    """  Message DEFAULT (id : ID; Var info : INFO; src : NODE)
  Begin
    Enqueue(MessageTag, id, info, src);
  End;""",
    """  Message DEFAULT (id : ID; Var info : INFO; src : NODE)
  Begin
    Error("unexpected %s while recalling", Msg_To_Str(MessageTag));
  End;""")


def check(source):
    protocol = compile_source(
        source, initial_states=("Home_Idle", "Cache_Invalid"))
    return ModelChecker(protocol, n_nodes=3, n_blocks=1, reorder_bound=0,
                        events=StacheEvents()).run()


def test_ablation_queue_vs_error(benchmark, report):
    def measure():
        base = load_protocol_source("stache")
        assert QUEUE_DEFAULT in base
        queueing = check(base)
        erroring = check(base.replace(QUEUE_DEFAULT, ERROR_DEFAULT, 1))
        return queueing, erroring

    queueing, erroring = benchmark.pedantic(measure, rounds=1, iterations=1)
    lines = [
        "Ablation: DEFAULT policy in Home_Await_Put (3 nodes, FIFO)",
        f"queue unexpected messages: "
        f"{'PASS' if queueing.ok else 'FAIL'} "
        f"({queueing.states_explored} states)",
        f"error on unexpected messages: "
        f"{'PASS' if erroring.ok else 'FAIL'} "
        f"({erroring.states_explored} states)",
    ]
    if erroring.violation is not None:
        lines.append("")
        lines.append("counterexample for the error policy:")
        lines.append(erroring.violation.format_trace())
    report("ablation_policy", lines)

    assert queueing.ok
    # A second request races the recall: benign, but fatal under the
    # error policy (exactly the Section 2 discussion).
    assert not erroring.ok
    assert erroring.violation.kind == "error"


def test_ablation_queue_records_are_bounded(benchmark, report):
    """Queueing is advocated but costs memory ("queuing requires
    additional memory"): measure queue-record traffic on a contended
    workload and confirm it stays bounded."""
    from repro.protocols import compile_named_protocol
    from repro.tempest.machine import Machine, MachineConfig

    def measure():
        import random
        rng = random.Random(99)
        programs = []
        for _node in range(8):
            program = []
            for _ in range(30):
                program.append(("write", 0, rng.randrange(100)))
                program.append(("compute", rng.randrange(30)))
            program.append(("barrier",))
            programs.append(program)
        protocol = compile_named_protocol("stache")
        machine = Machine(protocol, programs,
                          MachineConfig(n_nodes=8, n_blocks=1))
        result = machine.run()
        machine.assert_quiescent()
        return result

    result = benchmark.pedantic(measure, rounds=1, iterations=1)
    counters = result.stats.counters
    report("ablation_queue_memory", [
        "Queue-record traffic under heavy single-block write contention "
        "(8 nodes x 30 writes)",
        f"queue records allocated: {counters.queue_allocs}",
        f"queue records freed:     {counters.queue_frees}",
        f"messages sent:           {counters.messages_sent}",
    ])
    # Every deferred message is eventually redelivered: no leaks.
    assert counters.queue_allocs == counters.queue_frees
    assert counters.queue_allocs > 0


def test_ablation_nack_policy(benchmark, report):
    """The third policy: NACK-and-retry (stache_nack).

    Done carefully it verifies; drop the requester's retry and the
    checker shows the lost-request deadlock ("Nacks can lead to
    deadlock, so they must be employed carefully").  The price of the
    careful version is retry traffic, measured against queueing Stache
    on a contended workload.
    """
    import random

    from repro.compiler.pipeline import compile_source
    from repro.protocols import compile_named_protocol, \
        load_protocol_source
    from repro.tempest.machine import Machine, MachineConfig
    from repro.verify import ModelChecker
    from repro.verify.events import StacheEvents

    def measure():
        # 1. The careful nack protocol verifies -- including the
        #    progress (liveness) check, which carelessness fails.
        nack = compile_named_protocol("stache_nack")
        careful = ModelChecker(nack, n_nodes=3, n_blocks=1,
                               events=StacheEvents(),
                               check_progress=True).run()

        # 2. Drop the read-retry: requests are lost, readers hang.
        source = load_protocol_source("stache_nack")
        retry = """  Message NACK_RO (id : ID; Var info : INFO; src : NODE)
  Begin
    Send(HomeNode(id), GET_RO_REQ, id);   -- retry
  End;"""
        assert retry in source
        broken = compile_source(
            source.replace(retry, """  Message NACK_RO (id : ID; Var info : INFO; src : NODE)
  Begin
    -- careless: give up instead of retrying
  End;""", 1),
            initial_states=("Home_Idle", "Cache_Invalid"))
        careless = ModelChecker(broken, n_nodes=3, n_blocks=1,
                                events=StacheEvents(),
                                check_progress=True).run()

        # 3. Retry traffic under contention, versus queueing.
        rng = random.Random(7)
        programs = []
        for _node in range(6):
            program = []
            for _ in range(20):
                program.append(("write", 0, rng.randrange(100)))
                program.append(("compute", rng.randrange(40)))
            program.append(("barrier",))
            programs.append(program)

        def traffic(name):
            protocol = compile_named_protocol(name)
            machine = Machine(protocol, [list(p) for p in programs],
                              MachineConfig(n_nodes=6, n_blocks=1))
            result = machine.run()
            machine.assert_quiescent()
            return result.stats.counters

        queueing = traffic("stache")
        nacking = traffic("stache_nack")
        return careful, careless, queueing, nacking

    careful, careless, queueing, nacking = benchmark.pedantic(
        measure, rounds=1, iterations=1)

    lines = [
        "Ablation: the NACK policy (stache_nack)",
        f"careful (with retry):  "
        f"{'PASS' if careful.ok else 'FAIL'} "
        f"({careful.states_explored} states)",
        f"careless (no retry):   "
        f"{'PASS' if careless.ok else 'FAIL'} "
        f"({careless.violation.kind if careless.violation else ''})",
        "",
        "careless counterexample:",
        careless.violation.format_trace() if careless.violation else "",
        "",
        "traffic under 6-way write contention:",
        f"  queueing Stache: {queueing.messages_sent} messages, "
        f"{queueing.queue_allocs} queue records",
        f"  nacking Stache:  {nacking.messages_sent} messages "
        f"({nacking.nacks} nacks), {nacking.queue_allocs} queue records",
    ]
    report("ablation_nack", lines)

    assert careful.ok
    assert not careless.ok
    # The lost request starves the reader: a liveness failure, not a
    # global deadlock -- caught by the progress check.
    assert careless.violation.kind == "starvation"
    # Nacking trades queue memory for network traffic.
    assert nacking.messages_sent > queueing.messages_sent
    assert nacking.queue_allocs < queueing.queue_allocs
