"""Section 6's Buffered-Write variant, quantified.

The paper implemented the variant ("4 new states, 4 new message types")
but had no state-machine twin to compare against.  This benchmark
quantifies the property the variant exists for: overlapping write
latency with computation under a weakly consistent model.
"""

from repro.protocols import compile_named_protocol
from repro.tempest.machine import Machine, MachineConfig
from repro.tempest.network import NetworkConfig


def writer_program(n_blocks, with_sync, compute=120):
    program = []
    for block in range(n_blocks):
        program.append(("write", block + 8, block))
        program.append(("compute", compute))
    if with_sync:
        for block in range(n_blocks):
            program.append(("event", "SYNC_FAULT", block + 8))
    program.append(("barrier",))
    return program


def run(name, with_sync, latency):
    protocol = compile_named_protocol(name)
    programs = [[("barrier",)], writer_program(6, with_sync)]
    config = MachineConfig(n_nodes=2, n_blocks=16,
                           network=NetworkConfig(latency=latency))
    machine = Machine(protocol, programs, config)
    result = machine.run()
    machine.assert_quiescent()
    return result


def test_buffered_write_overlaps_latency(benchmark, report):
    def measure():
        rows = {}
        for latency in (500, 2_000, 8_000):
            blocking = run("stache", with_sync=False, latency=latency)
            buffered = run("buffered_write", with_sync=True, latency=latency)
            rows[latency] = (blocking.cycles, buffered.cycles)
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    lines = [
        "Buffered-Write overlap (6 remote writes + compute, then sync)",
        f"{'latency':>8s} {'blocking (stache)':>18s} "
        f"{'buffered_write':>15s} {'speedup':>8s}",
    ]
    for latency, (blocking, buffered) in rows.items():
        lines.append(f"{latency:>8d} {blocking:>18d} {buffered:>15d} "
                     f"{blocking / buffered:>7.2f}x")
    report("buffered_overlap", lines)

    # The longer the network latency, the more the buffering wins: the
    # blocking protocol pays each round trip serially; the buffered one
    # overlaps them all and pays roughly one at the sync point.
    speedups = [blocking / buffered
                for blocking, buffered in rows.values()]
    assert all(s > 1.0 for s in speedups)
    assert speedups[-1] > speedups[0]
