"""Ablation: the Section 5 optimisations, one at a time.

DESIGN.md calls out two compiler design choices measured by the paper:
live-variable analysis (shrinks continuation records) and the constant
continuation optimisation (static allocation + resume inlining).  This
benchmark isolates each across the Table 1 workloads.
"""

import pytest

from repro.protocols import compile_named_protocol
from repro.runtime.protocol import OptLevel
from repro.workloads import STACHE_WORKLOADS, run_workload

N_NODES = 32  # the paper's machine size


def run_levels(workload_name):
    factory, blocks_fn = STACHE_WORKLOADS[workload_name]
    programs = factory(n_nodes=N_NODES)
    results = {}
    for level in OptLevel:
        protocol = compile_named_protocol("stache", opt_level=level)
        results[level] = run_workload(
            protocol, workload_name, [list(p) for p in programs],
            blocks_fn(N_NODES))
    return results


def test_ablation_opt_levels(benchmark, report):
    def run_all():
        return {name: run_levels(name) for name in STACHE_WORKLOADS}

    table = benchmark.pedantic(run_all, rounds=1, iterations=1)
    lines = [
        "Ablation: optimisation levels across Table 1 workloads",
        f"{'workload':9s} {'O0 cycles':>10s} {'O1 cycles':>10s} "
        f"{'O2 cycles':>10s} {'O1 allocs':>10s} {'O2 allocs':>10s}",
    ]
    for name, results in table.items():
        lines.append(
            f"{name:9s} {results[OptLevel.O0].cycles:>10d} "
            f"{results[OptLevel.O1].cycles:>10d} "
            f"{results[OptLevel.O2].cycles:>10d} "
            f"{results[OptLevel.O1].cont_allocs:>10d} "
            f"{results[OptLevel.O2].cont_allocs:>10d}")
    report("ablation_opt_levels", lines)

    for name, results in table.items():
        # Constant continuations cut heap allocations (O2 < O1); O0 and
        # O1 allocate near-identically (liveness changes record *size*,
        # not count -- timing interleavings can shift the total by a
        # few under contention).
        assert results[OptLevel.O2].cont_allocs < \
            results[OptLevel.O1].cont_allocs, name
        o0, o1 = (results[OptLevel.O0].cont_allocs,
                  results[OptLevel.O1].cont_allocs)
        assert abs(o0 - o1) <= max(4, 0.05 * o1), name

    # In aggregate, each optimisation level is no slower than the last.
    def total(level):
        return sum(results[level].cycles for results in table.values())

    assert total(OptLevel.O2) <= total(OptLevel.O1) <= \
        total(OptLevel.O0) * 1.02


def test_ablation_static_allocation_only(benchmark, report):
    """Isolate the static-continuation half of the constant-continuation
    optimisation by counting record traffic per workload."""

    def measure():
        rows = {}
        for name in STACHE_WORKLOADS:
            results = run_levels(name)
            o1 = results[OptLevel.O1]
            o2 = results[OptLevel.O2]
            rows[name] = (
                o1.cont_allocs,
                o2.cont_allocs,
                o2.stats.counters.static_cont_uses,
                o2.stats.counters.direct_resumes,
            )
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    lines = [
        "Ablation: continuation record traffic (paper's Allocs column)",
        f"{'workload':9s} {'O1 allocs':>10s} {'O2 allocs':>10s} "
        f"{'static uses':>12s} {'direct resumes':>15s}",
    ]
    for name, (o1_allocs, o2_allocs, static, direct) in rows.items():
        lines.append(f"{name:9s} {o1_allocs:>10d} {o2_allocs:>10d} "
                     f"{static:>12d} {direct:>15d}")
    report("ablation_static_conts", lines)

    for name, (o1_allocs, o2_allocs, static, direct) in rows.items():
        # Every avoided allocation became a static-continuation use.
        # (Timing-induced interleaving differences can shift the total
        # suspend count slightly between the two runs.)
        o2_suspends = o2_allocs + static
        assert abs(o2_suspends - o1_allocs) <= max(4, o1_allocs * 0.15), name
        assert static > 0, name
