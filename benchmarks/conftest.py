"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures and
prints the same rows the paper reports (plus writes them under
``bench_results/``).  Absolute numbers differ from the paper's CM-5 --
the substrate is a simulator -- but the *shape* (who wins, by what
rough factor, where crossovers fall) is asserted where the paper's
conclusion depends on it.
"""

from __future__ import annotations

import os

import pytest


@pytest.fixture(scope="session")
def results_dir():
    path = os.path.join(os.path.dirname(__file__), "..", "bench_results")
    path = os.path.abspath(path)
    os.makedirs(path, exist_ok=True)
    return path


@pytest.fixture(scope="session")
def report(results_dir):
    """Print a table and persist it under bench_results/."""

    def emit(name: str, lines: list[str]) -> None:
        text = "\n".join(lines)
        print()
        print(text)
        with open(os.path.join(results_dir, f"{name}.txt"), "w") as handle:
            handle.write(text + "\n")

    return emit
