"""Figure 11: the LCM network-reordering problem.

"The cache side sends the home a BEGIN_LCM message indicating that it
is entering the LCM phase.  The message reaches the home after two
other messages" -- in-phase traffic overtakes the announcement, and the
home must queue it (the subroutine state's DEFAULT handler) rather than
reject it.

The benchmark reproduces the scenario two ways: exhaustively (model
checking with reordering enabled succeeds only because the queueing is
there) and concretely (a jittered-network simulation run).
"""

from repro.protocols import compile_named_protocol, load_protocol_source
from repro.compiler.pipeline import compile_source
from repro.tempest.machine import Machine, MachineConfig
from repro.tempest.network import NetworkConfig
from repro.verify import ModelChecker, events_for_protocol


def check_lcm(reorder):
    protocol = compile_named_protocol("lcm")
    return ModelChecker(protocol, n_nodes=2, n_blocks=1,
                        reorder_bound=reorder,
                        events=events_for_protocol("lcm")).run()


def test_fig11_reordering_is_handled(benchmark, report):
    def measure():
        return check_lcm(0), check_lcm(1)

    fifo, reordered = benchmark.pedantic(measure, rounds=1, iterations=1)
    report("fig11_reordering", [
        "Figure 11: LCM under network reordering (2 nodes, 1 address)",
        f"FIFO network:       {fifo.states_explored} states -> "
        f"{'PASS' if fifo.ok else 'FAIL'}",
        f"1 reordering max:   {reordered.states_explored} states -> "
        f"{'PASS' if reordered.ok else 'FAIL'}",
        "",
        "The reordered space includes the Figure 11 interleaving "
        "(BEGIN_LCM overtaken by in-phase traffic); it passes because "
        "the early messages queue in the home's stable states.",
    ])
    assert fifo.ok and reordered.ok
    assert reordered.states_explored > fifo.states_explored


def test_fig11_queueing_is_load_bearing(benchmark, report):
    """Figure 11's mechanism is the subroutine state's DEFAULT handler
    queueing concurrent traffic ("Note the queuing of GET_RO_REQ").
    Switch Home_Await_BeginLCM's DEFAULT from Enqueue to Error and the
    checker finds the race immediately."""

    def break_it():
        source = load_protocol_source("lcm")
        marker = """State LCM.Home_Await_BeginLCM{C : CONT}
Begin
  Message BEGIN_LCM (id : ID; Var info : INFO; src : NODE)
  Begin
    numInPhase := numInPhase + 1;
    Send(src, BEGIN_LCM_ACK, id);
    Resume(C);
  End;

  Message DEFAULT (id : ID; Var info : INFO; src : NODE)
  Begin
    Enqueue(MessageTag, id, info, src);
  End;
End;"""
        assert marker in source
        broken = source.replace(marker, marker.replace(
            """  Message DEFAULT (id : ID; Var info : INFO; src : NODE)
  Begin
    Enqueue(MessageTag, id, info, src);
  End;""",
            """  Message DEFAULT (id : ID; Var info : INFO; src : NODE)
  Begin
    Error("unexpected %s while awaiting BEGIN_LCM",
          Msg_To_Str(MessageTag));
  End;"""), 1)
        protocol = compile_source(
            broken, initial_states=("Home_Idle", "Cache_Invalid"))
        return ModelChecker(protocol, n_nodes=2, n_blocks=1,
                            reorder_bound=1,
                            events=events_for_protocol("lcm")).run()

    result = benchmark.pedantic(break_it, rounds=1, iterations=1)
    lines = ["Figure 11 ablation: Home_Await_BeginLCM without queueing",
             result.summary()]
    if result.violation is not None:
        lines.append(result.violation.format_trace())
    report("fig11_ablation", lines)
    assert not result.ok
    assert result.violation.kind == "error"


def test_fig11_simulation_under_jitter(benchmark, report):
    """A concrete jittered run of the phase lifecycle never misbehaves."""

    def run_jittered():
        protocol = compile_named_protocol("lcm")
        outcomes = []
        for seed in range(8):
            programs = [
                [("barrier",),
                 ("event", "ENTER_LCM_FAULT", 0), ("barrier",),
                 ("event", "EXIT_LCM_FAULT", 0), ("barrier",),
                 ("read", 0, "log")],
                [("write", 0, 10), ("barrier",),
                 ("event", "ENTER_LCM_FAULT", 0), ("barrier",),
                 ("write", 0, 42),
                 ("event", "EXIT_LCM_FAULT", 0), ("barrier",)],
            ]
            config = MachineConfig(
                n_nodes=2, n_blocks=1,
                network=NetworkConfig(latency=100, jitter=400,
                                      fifo=False, seed=seed))
            machine = Machine(protocol, programs, config)
            machine.run()
            machine.assert_quiescent()
            outcomes.append(machine.nodes[0].observed[0][1])
        return outcomes

    outcomes = benchmark.pedantic(run_jittered, rounds=1, iterations=1)
    report("fig11_jitter", [
        "LCM phase lifecycle under 8 jittered-network seeds",
        f"reconciled values observed at home: {outcomes}",
    ])
    assert all(value == 42 for value in outcomes)
