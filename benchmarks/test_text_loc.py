"""Section 6 in-text size comparisons.

"We wrote the Stache protocol in Teapot (600 lines, which compiles to
1000 lines of C) ... The state machine required approximately 1000
lines of C.  The LCM protocol in Teapot (1500 lines) compiled to
approximately 2300 lines of C; a hand-coded implementation of the LCM
protocol required approximately 2500 lines of C."

And Section 7: "Our hand-coded specification of the Stache protocol was
approximately 800 lines of Mur-phi code" -- which Teapot generates for
free.
"""

from repro.analysis import count_loc, loc_report
from repro.protocols import load_protocol_source


def test_text_loc_comparison(benchmark, report):
    rows = benchmark.pedantic(
        loc_report, args=(("stache", "stache_sm", "lcm", "lcm_sm"),),
        rounds=1, iterations=1)
    by_name = {row.protocol: row for row in rows}

    lines = [
        "Section 6 in-text: source sizes (non-blank, non-comment lines)",
        f"{'protocol':12s} {'Teapot':>7s} {'gen C':>7s} {'gen Murphi':>11s} "
        f"{'C/Teapot':>9s}",
    ]
    for row in rows:
        lines.append(
            f"{row.protocol:12s} {row.teapot_lines:>7d} "
            f"{row.generated_c_lines:>7d} "
            f"{row.generated_murphi_lines:>11d} "
            f"{row.expansion:>8.2f}x")
    lines += [
        "",
        "paper: stache 600 -> 1000 C (1.7x); lcm 1500 -> 2300 C (1.5x); "
        "hand C: ~1000 (stache) / ~2500 (lcm); hand Murphi: ~800 (stache)",
    ]
    report("text_loc", lines)

    stache = by_name["stache"]
    lcm = by_name["lcm"]
    # Generated C expands the Teapot source (paper: 1.5-1.7x; ours is a
    # denser DSL so the factor is a bit larger).
    assert stache.generated_c_lines > stache.teapot_lines
    assert lcm.generated_c_lines > lcm.teapot_lines
    # LCM is the much larger protocol, in every representation.
    assert lcm.teapot_lines > 1.5 * stache.teapot_lines
    assert lcm.generated_c_lines > 1.5 * stache.generated_c_lines
    # The hand-written SM style costs more source than the
    # continuation style, despite expressing the same protocol.
    assert by_name["stache_sm"].teapot_lines > stache.teapot_lines
    assert by_name["lcm_sm"].teapot_lines > lcm.teapot_lines
    # The generated Mur-phi replaces a hand specification of comparable
    # size (paper: 800 hand-written lines for Stache).
    assert stache.generated_murphi_lines > 500


def test_text_verification_event_loops(benchmark, report):
    """Section 7: event-generation loops took ~50 (Stache), ~100
    (Buffered-Write), and ~400 (LCM) lines of Mur-phi.  Our structured
    generators express the same loops in a few dozen lines of Python --
    report their relative complexity."""
    import inspect

    from repro.verify import events as events_module

    def measure():
        sizes = {}
        for cls_name in ("StacheEvents", "BufferedWriteEvents",
                         "CasEvents", "LcmEvents"):
            cls = getattr(events_module, cls_name)
            sizes[cls_name] = count_loc(inspect.getsource(cls),
                                        comment_prefixes=("#",))
        return sizes

    sizes = benchmark.pedantic(measure, rounds=1, iterations=1)
    lines = ["Section 7: event-generation loop sizes (lines of code)"]
    for name, size in sizes.items():
        lines.append(f"{name:22s} {size:3d}")
    lines.append("paper (Mur-phi): Stache ~50, Buffered-Write ~100, "
                 "LCM ~400")
    report("text_event_loops", lines)
    # LCM's loop is the most complex, as in the paper.
    assert sizes["LcmEvents"] > sizes["StacheEvents"]
