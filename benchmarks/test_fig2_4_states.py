"""Figures 1, 2, and 4: protocol state machines, idealized and real.

- Figure 1/2: the idealized cache- and home-side machines (3 states on
  the home side: Idle, ReadShared, Exclusive).
- Figure 4: the home side "with intermediate states necessary to avoid
  synchronous communication" -- the explosion hand-written protocols
  suffer.

The benchmark regenerates all three graphs from the compiled protocols
and reports the state/transition counts; Graphviz renderings are
written alongside.
"""

import os

from repro.analysis import build_state_graph
from repro.protocols import compile_named_protocol


def build_graphs():
    sm = build_state_graph(compile_named_protocol("stache_sm"))
    teapot = build_state_graph(compile_named_protocol("stache"))
    return {
        "fig2_home_ideal": sm.restricted_to("Home_").contracted(),
        "fig1_cache_ideal": sm.restricted_to("Cache_").contracted(),
        "fig4_home_sm": sm.restricted_to("Home_"),
        "teapot_home": teapot.restricted_to("Home_"),
        "teapot_cache": teapot.restricted_to("Cache_"),
        "fig4_cache_sm": sm.restricted_to("Cache_"),
    }


def test_fig2_and_fig4_state_machines(benchmark, report, results_dir):
    graphs = benchmark.pedantic(build_graphs, rounds=1, iterations=1)

    lines = ["Figures 1/2/4: Stache state machine complexity"]
    for key, graph in graphs.items():
        lines.append(
            f"{key:18s} {len(graph.states):2d} states "
            f"({len(graph.transient_states)} transient), "
            f"{len(graph.transitions):3d} transitions")
        with open(os.path.join(results_dir, f"{key}.dot"), "w") as handle:
            handle.write(graph.to_dot() + "\n")
    report("fig2_4_states", lines)

    # Figure 2: the idealized home machine has exactly three states.
    ideal = graphs["fig2_home_ideal"]
    assert set(ideal.states) == {"Home_Idle", "Home_RS", "Home_Excl"}

    # Figure 4: the real machine needs intermediate states...
    fig4 = graphs["fig4_home_sm"]
    assert len(fig4.transient_states) == 5
    assert len(fig4.states) == 8

    # ...while Teapot's continuations need only two *reusable*
    # subroutine states (Section 3's code-reuse point).
    teapot_home = graphs["teapot_home"]
    assert len(teapot_home.transient_states) == 2
    assert len(teapot_home.states) < len(fig4.states)


def test_subroutine_state_reuse(benchmark, report):
    """Section 3: 'in the Stache protocol, the four different handlers
    that wait for a PutResponse message share a single subroutine
    state.'  In this reproduction six recall transitions share
    Home_Await_Put."""

    def count_sources():
        from repro.compiler.ir import TSuspend
        protocol = compile_named_protocol("stache")
        sources = {}
        for handler in protocol.handlers.values():
            for site in handler.suspend_sites:
                sources.setdefault(site.target.name, []).append(
                    handler.qualified_name)
        return sources

    sources = benchmark.pedantic(count_sources, rounds=1, iterations=1)
    lines = ["Subroutine-state reuse in Stache (suspend sources per "
             "subroutine state)"]
    for state, users in sorted(sources.items()):
        lines.append(f"{state:22s} <- {len(users)} handlers: "
                     + ", ".join(sorted(set(users))))
    report("fig_state_reuse", lines)
    assert len(sources["Home_Await_Put"]) >= 4   # the paper's claim
    assert len(set(sources["Home_Await_InvAck"])) >= 3
