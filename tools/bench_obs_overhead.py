"""Measure the wall-time overhead of the observability layer.

Runs the Table 1 gauss workload under Stache three ways -- unobserved,
with a NullSink observer, and with full JSONL tracing plus metrics --
and reports wall time per configuration (median-of-repeats, with the
min/max spread so noise is visible).  Simulated cycles must come out
identical in all three (the obs layer is a pure observer); the script
fails loudly if they do not.

Usage::

    PYTHONPATH=src python tools/bench_obs_overhead.py [-o BENCH_obs_overhead.json]
"""

from __future__ import annotations

import argparse
import io
import os
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from bench_common import bench_meta, timing_row, write_bench  # noqa: E402
from repro.obs import JsonlSink, MetricsRegistry, Observer  # noqa: E402
from repro.protocols import compile_named_protocol  # noqa: E402
from repro.tempest.machine import Machine, MachineConfig  # noqa: E402
from repro.workloads import STACHE_WORKLOADS  # noqa: E402

N_NODES = 8
REPEATS = 5


def run_once(protocol, programs, n_blocks, observer):
    config = MachineConfig(n_nodes=N_NODES, n_blocks=n_blocks,
                           observer=observer)
    machine = Machine(protocol, programs, config)
    start = time.perf_counter()
    result = machine.run()
    elapsed = time.perf_counter() - start
    return result.cycles, elapsed


def bench(make_observer):
    """Wall-time samples over REPEATS; returns (cycles, samples, extras)."""
    factory, blocks_fn = STACHE_WORKLOADS["gauss"]
    protocol = compile_named_protocol("stache")
    cycles = None
    samples = []
    events = 0
    for _ in range(REPEATS):
        programs = factory(n_nodes=N_NODES)
        observer = make_observer()
        run_cycles, elapsed = run_once(protocol, programs,
                                       blocks_fn(N_NODES), observer)
        if observer is not None and isinstance(observer.sink, JsonlSink):
            events = observer.sink.events_written
        if observer is not None:
            observer.close()
        if cycles is None:
            cycles = run_cycles
        elif cycles != run_cycles:
            raise SystemExit(f"non-deterministic run: {cycles} vs "
                             f"{run_cycles} cycles")
        samples.append(elapsed)
    return cycles, samples, events


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("-o", "--output", default="BENCH_obs_overhead.json")
    args = parser.parse_args()

    configs = {
        "unobserved": lambda: None,
        "null_sink": lambda: Observer(),
        "jsonl_and_metrics": lambda: Observer(JsonlSink(io.StringIO()),
                                              MetricsRegistry("stache")),
    }
    rows = {}
    cycles_seen = set()
    for name, make_observer in configs.items():
        cycles, samples, events = bench(make_observer)
        cycles_seen.add(cycles)
        row = timing_row(samples)
        row["cycles"] = cycles
        if events:
            row["events"] = events
        rows[name] = row
        print(f"{name:20s} {row['wall_seconds']:8.4f}s "
              f"(+/-{row['wall_spread_pct']:.1f}%)  cycles={cycles}")
    if len(cycles_seen) != 1:
        raise SystemExit(f"cycle counts diverged: {sorted(cycles_seen)}")

    base = rows["unobserved"]["wall_seconds"]
    for name, row in rows.items():
        row["overhead_pct"] = round(
            100.0 * (row["wall_seconds"] - base) / base, 1)

    report = bench_meta("obs overhead, Table 1 gauss on stache")
    report.update({
        "n_nodes": N_NODES,
        "repeats": REPEATS,
        "timer": "median-of-repeats wall time, machine.run() only, "
                 "min/max spread per row",
        "configs": rows,
        "note": "cycles are identical by construction; overhead is "
                "host wall time only, and deltas within "
                "wall_spread_pct are noise",
    })
    write_bench(args.output, report)
    return 0


if __name__ == "__main__":
    sys.exit(main())
