"""Benchmark the sharded parallel checker against serial exploration.

Regenerates the Table 3 LCM MCC verification row (2 nodes, 1 address,
1 reordering -- the paper's 5804 s Mur-phi run) serially and with the
sharded ``ParallelChecker`` at 1 and N workers, and reports states/s
per configuration.  Verdict and state count must be identical across
all configurations; the script fails loudly if they are not.

The per-state cost of this checker is dominated by successor
generation, which parallelises across shards, so on a multi-core host
N workers approach N-fold states/s.  On a single-core host the sharded
run pays IPC overhead with no compute to overlap, so expect slowdown,
not speedup -- the report records ``cpu_count`` so readers can judge
the numbers.  The default row finishes in seconds; ``--scaled`` adds a
3-node row (~355k states) where the parallel overhead amortises.

Usage::

    PYTHONPATH=src python tools/bench_check_parallel.py \
        [-o BENCH_check_parallel.json] [--workers 4] [--scaled]
"""

from __future__ import annotations

import argparse
import os
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from bench_common import bench_meta, timing_row, write_bench  # noqa: E402
from repro.protocols import compile_named_protocol  # noqa: E402
from repro.verify import (  # noqa: E402
    ModelChecker,
    ParallelChecker,
    events_for_protocol,
)
from repro.verify.invariants import standard_invariants  # noqa: E402

PROTOCOL = "lcm_mcc"


def run_config(n_nodes, n_blocks, reorder, workers):
    protocol = compile_named_protocol(PROTOCOL)
    common = dict(
        n_nodes=n_nodes, n_blocks=n_blocks, reorder_bound=reorder,
        events=events_for_protocol(PROTOCOL),
        invariants=standard_invariants(coherent=True))
    if workers == 0:
        checker = ModelChecker(protocol, **common)
    else:
        checker = ParallelChecker(protocol, workers=workers, **common)
    start = time.perf_counter()
    result = checker.run()
    elapsed = time.perf_counter() - start
    return result, elapsed


def bench_row(label, n_nodes, n_blocks, reorder, worker_counts, repeats):
    print(f"-- {label}: {PROTOCOL} {n_nodes} nodes, {n_blocks} address(es), "
          f"reorder {reorder}")
    rows = {}
    verdicts = set()
    for workers in worker_counts:
        name = "serial" if workers == 0 else f"workers_{workers}"
        samples = []
        result = None
        # Untimed warmup: the fast engine's process-global caches
        # (compiled protocol, action effects, interned states) make the
        # first call pay one-time fills; rows record steady state.
        run_config(n_nodes, n_blocks, reorder, workers)
        for _ in range(repeats):
            result, elapsed = run_config(n_nodes, n_blocks, reorder, workers)
            samples.append(elapsed)
        row = timing_row(samples)
        median = row["wall_seconds"]
        states_per_s = result.states_explored / median if median else 0.0
        verdicts.add((result.ok, result.states_explored, result.transitions))
        row.update({
            "states": result.states_explored,
            "transitions": result.transitions,
            "max_depth": result.max_depth,
            "verdict": "PASS" if result.ok else "FAIL",
            "states_per_second": round(states_per_s, 1),
        })
        rows[name] = row
        print(f"  {name:12s} {median:8.3f}s "
              f"(+/-{row['wall_spread_pct']:.1f}%)  "
              f"states={result.states_explored}"
              f"  {states_per_s:10.1f} states/s")
    if len(verdicts) != 1:
        raise SystemExit(f"configurations diverged: {sorted(verdicts)}")
    base = rows["serial"]["wall_seconds"]
    for row in rows.values():
        row["speedup_vs_serial"] = round(base / row["wall_seconds"], 2) \
            if row["wall_seconds"] else None
    return rows


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("-o", "--output",
                        default="BENCH_check_parallel.json")
    parser.add_argument("--workers", type=int, default=4,
                        help="largest worker count to benchmark")
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--scaled", action="store_true",
                        help="also run the 3-node LCM MCC row (~355k "
                             "states, minutes of wall time)")
    args = parser.parse_args()

    worker_counts = [0, 1, args.workers]
    tables = {
        "table3_lcm_mcc_2n": bench_row(
            "Table 3 row", 2, 1, 1, worker_counts, args.repeats),
    }
    if args.scaled:
        tables["scaled_lcm_mcc_3n"] = bench_row(
            "scaled row", 3, 1, 1, worker_counts, 1)

    report = bench_meta("parallel model checking, Table 3 LCM MCC")
    report.update({
        "protocol": PROTOCOL,
        "repeats": args.repeats,
        "timer": "median-of-repeats wall time around checker.run() "
                 "after one untimed warmup, min/max spread per row",
        "rows": tables,
        "note": "verdict, state count, and transition count are asserted "
                "identical across all configurations; speedup requires "
                "cpu_count >= workers -- on fewer cores the sharded run "
                "pays process and IPC overhead with nothing to overlap",
    })
    write_bench(args.output, report)
    return 0


if __name__ == "__main__":
    sys.exit(main())
