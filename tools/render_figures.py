#!/usr/bin/env python3
"""Regenerate every figure artifact into bench_results/.

Produces, without running the benchmark suite:

- Graphviz ``.dot`` renderings of Figures 1, 2, and 4 (idealized and
  hand-written state machines, both protocol sides) and of every
  registered protocol's full state graph;
- the Figure 10 C artifact for Stache (entry + resume fragments);
- the Figure 6 diffstat summary.

Usage:  python tools/render_figures.py [output-dir]
"""

from __future__ import annotations

import os
import sys

from repro.analysis import build_state_graph, protocol_diffstat
from repro.backends import emit_c, emit_murphi
from repro.protocols import PROTOCOLS, compile_named_protocol


def main() -> None:
    out_dir = sys.argv[1] if len(sys.argv) > 1 else "bench_results"
    os.makedirs(out_dir, exist_ok=True)

    def write(name: str, text: str) -> None:
        path = os.path.join(out_dir, name)
        with open(path, "w") as handle:
            handle.write(text)
        print(f"wrote {path}")

    # Figures 1/2/4 from the state-machine Stache.
    sm_graph = build_state_graph(compile_named_protocol("stache_sm"))
    write("fig1_cache_ideal.dot",
          sm_graph.restricted_to("Cache_").contracted().to_dot())
    write("fig2_home_ideal.dot",
          sm_graph.restricted_to("Home_").contracted().to_dot())
    write("fig4_home_sm.dot", sm_graph.restricted_to("Home_").to_dot())
    write("fig4_cache_sm.dot", sm_graph.restricted_to("Cache_").to_dot())

    # Full graphs for every registered protocol.
    for name in sorted(PROTOCOLS):
        graph = build_state_graph(compile_named_protocol(name))
        write(f"graph_{name}.dot", graph.to_dot())

    # Figure 10: the split C for Stache.
    write("fig10_stache.c", emit_c(compile_named_protocol("stache")))
    write("stache.m", emit_murphi(compile_named_protocol("stache")))

    # Figure 6: extension diffstat.
    teapot = protocol_diffstat(compile_named_protocol("stache"),
                               compile_named_protocol("stache_cas"))
    machine = protocol_diffstat(compile_named_protocol("stache_sm"),
                                compile_named_protocol("stache_cas_sm"))
    write("fig6_diffstat.txt",
          "Figure 6: cost of adding Compare&Swap\n"
          f"Teapot: {teapot.summary()}\n"
          f"SM:     {machine.summary()}\n")


if __name__ == "__main__":
    main()
