"""Measure the exploration profiler's overhead and the checker baseline.

Runs the Table 3 LCM MCC verification row (2 nodes, 1 address, 1
reordering) four ways -- instrumentation absent, profiler armed,
profiler armed under the 2-worker parallel checker, and the state
atlas armed -- and reports states/s per configuration.  Verdict, state
count, and transition count must be identical in all four (profiler
and atlas are pure observers); the script fails loudly if they are
not.

Timing is median-of-repeats with the min/max spread reported per row:
comparing best-of minima lets the noisier configuration dip lower and
can show a pure observer as *negative* overhead.

The ``baseline.states_per_second`` number is the regression gate
``tools/bench_compare.py`` tracks in CI: every checker-performance PR
is judged against the committed BENCH_check_profile.json.

Usage::

    PYTHONPATH=src python tools/bench_check_profile.py \
        [-o BENCH_check_profile.json] [--repeats 3]
"""

from __future__ import annotations

import argparse
import os
import sys
import tempfile
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from bench_common import bench_meta, timing_row, write_bench  # noqa: E402
from repro.api import (  # noqa: E402
    ArtifactOptions,
    CheckOptions,
    CheckpointOptions,
    ReductionOptions,
    check,
)

PROTOCOL = "lcm_mcc"
ROW = dict(nodes=2, addresses=1, reorder=1)

# The reduction comparison runs at 3 nodes: with only 2 caching nodes
# plus the fixed home there is no free permutation to quotient by, so
# the Table 3 row itself cannot show a symmetry collapse.  It also runs
# a different protocol: lcm_mcc is not node-symmetric (its PopSharer
# copy-delegation fails the checker's certification and falls back to
# an unreduced run), so the ratio is measured on plain LCM.
REDUCTION_PROTOCOL = "lcm"
REDUCTION_ROW = dict(nodes=3, addresses=1, reorder=0)


def bench(options, repeats, protocol=PROTOCOL):
    """Wall-time samples across repeats; returns (result, samples).

    One untimed warmup call precedes the timed repeats: the fast
    engine keeps process-global caches (compiled protocol, action
    effects, interned states), so the first call pays one-time fills
    that would otherwise inflate the row's spread by an order of
    magnitude.  Steady-state throughput is what the regression gate
    tracks.
    """
    check(protocol, options)
    samples = []
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = check(protocol, options)
        samples.append(time.perf_counter() - start)
    return result, samples


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("-o", "--output",
                        default="BENCH_check_profile.json")
    parser.add_argument("--repeats", type=int, default=5)
    args = parser.parse_args()

    ckpt_tmp = tempfile.TemporaryDirectory(prefix="teapot-bench-ckpt-")
    ckpt_dir = ckpt_tmp.name
    configs = {
        "baseline": CheckOptions(**ROW),
        "profiled": CheckOptions(
            **ROW, artifacts=ArtifactOptions(profile=True)),
        "profiled_workers_2": CheckOptions(
            **ROW, workers=2, artifacts=ArtifactOptions(profile=True)),
        "atlas_armed": CheckOptions(
            **ROW, artifacts=ArtifactOptions(atlas=True)),
        # Checkpointing requires fingerprint-keyed visited sets, so the
        # honest reference for checkpoint overhead is the same engine
        # without checkpointing -- not the full-state baseline.
        "fingerprint_serial": CheckOptions(**ROW, fingerprints=True),
        # Serial run writing a sealed checkpoint every other wave: the
        # cost of resilient checking (reference-frontier format +
        # single-serialization atomic writes).  Gated in CI so periodic
        # checkpointing stays cheap.
        "checkpoint_interval": CheckOptions(
            **ROW, checkpoint=CheckpointOptions(
                out=os.path.join(ckpt_dir, "bench_ckpt.json"),
                interval_waves=2)),
    }
    rows = {}
    outcomes = set()
    profile = None
    for name, options in configs.items():
        result, samples = bench(options, args.repeats)
        outcomes.add((result.ok, result.states_explored, result.transitions))
        row = timing_row(samples)
        seconds = row["wall_seconds"]
        row["states"] = result.states_explored
        row["states_per_second"] = round(
            result.states_explored / seconds, 1) if seconds else 0.0
        rows[name] = row
        if name == "profiled":
            profile = result.profile
        print(f"{name:20s} {seconds:8.4f}s "
              f"(+/-{row['wall_spread_pct']:.1f}%)  "
              f"{row['states_per_second']:10.1f} states/s")
    if len(outcomes) != 1:
        raise SystemExit(f"configurations diverged: {sorted(outcomes)}")

    # Symmetry-reduction comparison at 3 nodes.  Deliberately OUTSIDE
    # the identical-outcomes assertion above: reduction changes the
    # state count by design -- the invariant here is verdict identity
    # and the collapse ratio, which bench_compare.py gates on.
    full, full_samples = bench(CheckOptions(**REDUCTION_ROW),
                               args.repeats, protocol=REDUCTION_PROTOCOL)
    reduced, reduced_samples = bench(
        CheckOptions(**REDUCTION_ROW,
                     reduction=ReductionOptions(symmetry=True)),
        args.repeats, protocol=REDUCTION_PROTOCOL)
    if full.ok != reduced.ok:
        raise SystemExit(
            f"reduction changed the verdict: full ok={full.ok}, "
            f"reduced ok={reduced.ok}")
    if reduced.canonical_states is None:
        raise SystemExit(
            f"{REDUCTION_PROTOCOL} failed symmetry certification; the "
            "reduction row must use a certifying protocol")
    reduction = {
        "protocol": REDUCTION_PROTOCOL,
        "row": dict(REDUCTION_ROW),
        "states_full": full.states_explored,
        "states_reduced": reduced.states_explored,
        "state_ratio": round(
            full.states_explored / reduced.states_explored, 4),
        "wall_seconds_full": timing_row(full_samples)["wall_seconds"],
        "wall_seconds_reduced": timing_row(
            reduced_samples)["wall_seconds"],
    }
    print(f"{'reduction':20s} {reduction['states_full']:>6d} -> "
          f"{reduction['states_reduced']:>6d} states "
          f"({reduction['state_ratio']:.2f}x)")

    base = rows["baseline"]["wall_seconds"]
    for row in rows.values():
        row["overhead_pct"] = round(
            100.0 * (row["wall_seconds"] - base) / base, 1)

    # Periodic checkpointing must stay cheap: <= 10% wall-time overhead
    # over the same fingerprint-mode run without checkpointing, with
    # the rows' own measured run-to-run spread as the noise allowance.
    fp_row = rows["fingerprint_serial"]
    ck_row = rows["checkpoint_interval"]
    ckpt_overhead = round(
        100.0 * (ck_row["wall_seconds"] - fp_row["wall_seconds"])
        / fp_row["wall_seconds"], 1)
    ck_row["checkpoint_overhead_pct"] = ckpt_overhead
    allowance = max(10.0, fp_row["wall_spread_pct"],
                    ck_row["wall_spread_pct"])
    print(f"{'ckpt overhead':20s} {ckpt_overhead:+8.1f}% vs "
          f"fingerprint_serial (budget 10%, noise allows "
          f"{allowance:.0f}%)")
    if ckpt_overhead > allowance:
        raise SystemExit(
            f"periodic checkpointing costs {ckpt_overhead:.1f}% over "
            f"the fingerprint serial run (budget 10%, noise allowance "
            f"{allowance:.0f}%)")

    report = bench_meta("exploration profiler overhead, Table 3 LCM MCC")
    report.update({
        "protocol": PROTOCOL,
        "row": dict(ROW),
        "repeats": args.repeats,
        "timer": "median-of-repeats wall time around api.check() after "
                 "one untimed warmup, min/max spread per row",
        "configs": rows,
        # Symmetry collapse at 3 nodes; state_ratio is gated by
        # bench_compare.py alongside baseline.states_per_second.
        "reduction": reduction,
        # The armed serial run's phase split, so the committed artifact
        # doubles as a where-do-the-cycles-go snapshot for the ROADMAP
        # hot-loop work.
        "profiled_phases": dict(profile.phases) if profile else {},
        "note": "verdict/states/transitions are asserted identical in "
                "all configurations; profiler and atlas are pure "
                "observers -- overhead is host wall time, and deltas "
                "within wall_spread_pct are noise.  "
                "baseline.states_per_second is the CI regression gate "
                "(bench_compare.py).",
    })
    write_bench(args.output, report)
    ckpt_tmp.cleanup()
    return 0


if __name__ == "__main__":
    sys.exit(main())
