"""Measure the exploration profiler's overhead and the checker baseline.

Runs the Table 3 LCM MCC verification row (2 nodes, 1 address, 1
reordering) three ways -- profiler absent, profiler armed, and armed
under the 2-worker parallel checker -- and reports states/s per
configuration.  Verdict, state count, and transition count must be
identical in all three (the profiler is a pure observer; armed it only
reads clocks); the script fails loudly if they are not.

The ``baseline.states_per_second`` number is the regression gate
``tools/bench_compare.py`` tracks in CI: every checker-performance PR
is judged against the committed BENCH_check_profile.json.

Usage::

    PYTHONPATH=src python tools/bench_check_profile.py \
        [-o BENCH_check_profile.json] [--repeats 3]
"""

from __future__ import annotations

import argparse
import os
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from bench_common import bench_meta, write_bench  # noqa: E402
from repro.api import CheckOptions, check  # noqa: E402

PROTOCOL = "lcm_mcc"
ROW = dict(nodes=2, addresses=1, reorder=1)


def bench(options, repeats):
    """Best-of-repeats wall time; returns (result, seconds)."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = check(PROTOCOL, options)
        best = min(best, time.perf_counter() - start)
    return result, best


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("-o", "--output",
                        default="BENCH_check_profile.json")
    parser.add_argument("--repeats", type=int, default=3)
    args = parser.parse_args()

    configs = {
        "baseline": CheckOptions(**ROW),
        "profiled": CheckOptions(**ROW, profile=True),
        "profiled_workers_2": CheckOptions(**ROW, workers=2, profile=True),
    }
    rows = {}
    outcomes = set()
    profile = None
    for name, options in configs.items():
        result, seconds = bench(options, args.repeats)
        outcomes.add((result.ok, result.states_explored, result.transitions))
        rows[name] = {
            "wall_seconds": round(seconds, 4),
            "states": result.states_explored,
            "states_per_second": round(
                result.states_explored / seconds, 1) if seconds else 0.0,
        }
        if name == "profiled":
            profile = result.profile
        print(f"{name:20s} {seconds:8.4f}s  "
              f"{rows[name]['states_per_second']:10.1f} states/s")
    if len(outcomes) != 1:
        raise SystemExit(f"configurations diverged: {sorted(outcomes)}")

    base = rows["baseline"]["wall_seconds"]
    for row in rows.values():
        row["overhead_pct"] = round(
            100.0 * (row["wall_seconds"] - base) / base, 1)

    report = bench_meta("exploration profiler overhead, Table 3 LCM MCC")
    report.update({
        "protocol": PROTOCOL,
        "row": dict(ROW),
        "repeats": args.repeats,
        "timer": "best-of-repeats wall time around api.check()",
        "configs": rows,
        # The armed serial run's phase split, so the committed artifact
        # doubles as a where-do-the-cycles-go snapshot for the ROADMAP
        # hot-loop work.
        "profiled_phases": dict(profile.phases) if profile else {},
        "note": "verdict/states/transitions are asserted identical in "
                "all configurations; the profiler only reads clocks -- "
                "overhead is host wall time.  baseline.states_per_second "
                "is the CI regression gate (bench_compare.py).",
    })
    write_bench(args.output, report)
    return 0


if __name__ == "__main__":
    sys.exit(main())
