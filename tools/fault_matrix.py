"""Fault matrix: every registered protocol x a set of fault budgets.

Model-checks each protocol fault-free and under each budget (message
drop, duplication, both) at the paper's minimal configuration, and
reports the verdict per cell: OK, or the violation kind the checker
witnessed (deadlock / error / invariant).  Unmodified protocols are
*expected* to fail under faults -- they were written for a reliable
network; the matrix documents exactly how each one dies, which is what
the simulator's recovery layer (docs/ROBUSTNESS.md) is calibrated
against.  The fault-free column doubles as a sanity check: a protocol
failing there is a real regression.

Used by the non-gating ``fault-matrix`` CI job.

Usage::

    PYTHONPATH=src python tools/fault_matrix.py [-o FAULT_MATRIX.json]
        [--max-states N] [--protocols a,b,c]
"""

from __future__ import annotations

import argparse
import os
import platform
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.api import CheckOptions, check  # noqa: E402
from repro.ioutil import atomic_write_json  # noqa: E402
from repro.faults import FaultBudget  # noqa: E402
from repro.protocols import PROTOCOLS  # noqa: E402

BUDGETS = {
    "reliable": None,
    "drop=1": FaultBudget(drop=1),
    "dup=1": FaultBudget(dup=1),
    "drop=1,dup=1": FaultBudget(drop=1, dup=1),
}


def run_cell(name: str, budget, max_states: int) -> dict:
    options = CheckOptions(nodes=2, addresses=1, faults=budget,
                           max_states=max_states)
    started = time.perf_counter()
    result = check(name, options)
    cell = {
        "verdict": "OK" if result.ok else result.violation.kind,
        "states": result.states_explored,
        "seconds": round(time.perf_counter() - started, 3),
    }
    if not result.exhausted:
        cell["truncated"] = True
    if result.violation is not None:
        cell["message"] = result.violation.message
        cell["trace_len"] = len(result.violation.trace)
    return cell


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("-o", "--output", default="FAULT_MATRIX.json")
    parser.add_argument("--max-states", type=int, default=200_000)
    parser.add_argument("--protocols", default=None,
                        help="comma-separated subset (default: all)")
    args = parser.parse_args()

    names = (args.protocols.split(",") if args.protocols
             else sorted(PROTOCOLS))
    unknown = [name for name in names if name not in PROTOCOLS]
    if unknown:
        raise SystemExit(f"unknown protocols: {', '.join(unknown)}")

    matrix = {}
    width = max(len(name) for name in names)
    header = f"{'protocol':{width}s}  " + "  ".join(
        f"{label:>14s}" for label in BUDGETS)
    print(header)
    for name in names:
        row = {}
        for label, budget in BUDGETS.items():
            row[label] = run_cell(name, budget, args.max_states)
        matrix[name] = row
        print(f"{name:{width}s}  " + "  ".join(
            f"{row[label]['verdict']:>14s}" for label in BUDGETS))

    reliable_failures = [name for name, row in matrix.items()
                         if row["reliable"]["verdict"] != "OK"]
    report = {
        "benchmark": "fault matrix, 2 nodes x 1 address, checker",
        "max_states": args.max_states,
        "python": platform.python_version(),
        "budgets": list(BUDGETS),
        "matrix": matrix,
        "reliable_failures": reliable_failures,
        "note": "fault-cell failures are expected (protocols assume a "
                "reliable network); reliable-column failures are "
                "regressions",
    }
    atomic_write_json(args.output, report, indent=2)
    print(f"wrote {args.output}")
    if reliable_failures:
        print(f"REGRESSION: fault-free failures in "
              f"{', '.join(reliable_failures)}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
