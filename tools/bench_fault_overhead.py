"""Measure the wall-time overhead of the fault-injection layer.

Runs the Table 1 gauss workload under Stache three ways -- no fault
plan at all, a fault plan armed but injecting nothing (empty rule
list), and the recovery layer armed on a reliable network -- and
reports wall time per configuration (median-of-repeats, with the
min/max spread so noise is visible).  Simulated cycles must come out
identical in all three (an idle fault plan and an idle watchdog are
pure bookkeeping); the script fails loudly if they do not.

Usage::

    PYTHONPATH=src python tools/bench_fault_overhead.py [-o BENCH_fault_overhead.json]
"""

from __future__ import annotations

import argparse
import os
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from bench_common import bench_meta, timing_row, write_bench  # noqa: E402
from repro.faults import FaultPlan, RecoveryConfig  # noqa: E402
from repro.protocols import compile_named_protocol  # noqa: E402
from repro.tempest.machine import Machine, MachineConfig  # noqa: E402
from repro.workloads import STACHE_WORKLOADS  # noqa: E402

N_NODES = 8
REPEATS = 5


def run_once(protocol, programs, n_blocks, faults, recovery):
    config = MachineConfig(n_nodes=N_NODES, n_blocks=n_blocks,
                           faults=faults, recovery=recovery)
    machine = Machine(protocol, programs, config)
    start = time.perf_counter()
    result = machine.run()
    elapsed = time.perf_counter() - start
    return result.cycles, elapsed


def bench(make_faults, make_recovery):
    """Wall-time samples over REPEATS; returns (cycles, samples)."""
    factory, blocks_fn = STACHE_WORKLOADS["gauss"]
    protocol = compile_named_protocol("stache")
    cycles = None
    samples = []
    for _ in range(REPEATS):
        programs = factory(n_nodes=N_NODES)
        run_cycles, elapsed = run_once(
            protocol, programs, blocks_fn(N_NODES),
            make_faults(), make_recovery())
        if cycles is None:
            cycles = run_cycles
        elif cycles != run_cycles:
            raise SystemExit(f"non-deterministic run: {cycles} vs "
                             f"{run_cycles} cycles")
        samples.append(elapsed)
    return cycles, samples


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("-o", "--output",
                        default="BENCH_fault_overhead.json")
    args = parser.parse_args()

    configs = {
        "no_fault_layer": (lambda: None, lambda: None),
        "plan_armed_idle": (lambda: FaultPlan(), lambda: None),
        "recovery_armed": (lambda: None, lambda: RecoveryConfig()),
    }
    rows = {}
    cycles_seen = set()
    for name, (make_faults, make_recovery) in configs.items():
        cycles, samples = bench(make_faults, make_recovery)
        cycles_seen.add(cycles)
        row = timing_row(samples)
        row["cycles"] = cycles
        rows[name] = row
        print(f"{name:20s} {row['wall_seconds']:8.4f}s "
              f"(+/-{row['wall_spread_pct']:.1f}%)  cycles={cycles}")
    if len(cycles_seen) != 1:
        raise SystemExit(f"cycle counts diverged: {sorted(cycles_seen)}")

    base = rows["no_fault_layer"]["wall_seconds"]
    for name, row in rows.items():
        row["overhead_pct"] = round(
            100.0 * (row["wall_seconds"] - base) / base, 1)

    report = bench_meta("fault layer overhead, Table 1 gauss on stache")
    report.update({
        "n_nodes": N_NODES,
        "repeats": REPEATS,
        "timer": "median-of-repeats wall time, machine.run() only, "
                 "min/max spread per row",
        "configs": rows,
        "note": "cycles are identical by construction; an idle fault "
                "plan and an idle watchdog change no simulated "
                "behaviour, only host wall time -- deltas within "
                "wall_spread_pct are noise",
    })
    write_bench(args.output, report)
    return 0


if __name__ == "__main__":
    sys.exit(main())
