"""Chaos harness for the checker itself: kill, stall, and corrupt.

The resilience claims in docs/ROBUSTNESS.md are only claims until
something actually murders a worker mid-wave.  This harness disturbs
real checking runs and asserts the recovery contract:

* **kill** -- SIGKILL one worker at each sampled wave index, under
  ``on_worker_loss='degrade'``: the run must recover by re-sharding the
  last completed wave onto the survivors and finish with the *exact*
  undisturbed verdict, state count, transition count, and (for failing
  protocols) counterexample trace.
* **stall** -- SIGSTOP a worker so it goes silent without dying;
  ``worker_stall_timeout`` must declare it lost, kill it, and recover
  identically.
* **corrupt** -- take a genuine sealed checkpoint and damage it every
  way we can think of (bit flips, truncations, a seal-stripped edit,
  the wrong kind, binary garbage): every variant must fail with a
  one-line :class:`CheckpointError` -- a typed, actionable refusal,
  never a traceback and never a silently wrong resume.

Used by the non-gating ``chaos`` CI job.

Usage::

    PYTHONPATH=src python tools/chaos_check.py [-o CHAOS_CHECK.json]
        [--protocols stache,lcm,lcm_mcc] [--workers 2,3,4]
        [--kill-waves 0,2,5]
"""

from __future__ import annotations

import argparse
import os
import signal
import sys
import tempfile
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.ioutil import atomic_write_json  # noqa: E402
from repro.protocols import compile_named_protocol  # noqa: E402
from repro.verify import (  # noqa: E402
    CheckpointError,
    ModelChecker,
    ParallelChecker,
    events_for_protocol,
)
from repro.verify.invariants import standard_invariants  # noqa: E402

# Protocol -> checker configuration.  lcm_mcc at 2 blocks deadlocks,
# exercising recovery on a FAILing run (the trace must survive chaos).
CONFIGS = {
    "stache": {"n_nodes": 2, "n_blocks": 1, "reorder": 0},
    "lcm": {"n_nodes": 2, "n_blocks": 1, "reorder": 1},
    "lcm_mcc": {"n_nodes": 2, "n_blocks": 2, "reorder": 1},
}


def make_parallel(name: str, workers: int, **kwargs) -> ParallelChecker:
    config = CONFIGS[name]
    return ParallelChecker(
        compile_named_protocol(name),
        n_nodes=config["n_nodes"],
        n_blocks=config["n_blocks"],
        reorder_bound=config["reorder"],
        events=events_for_protocol(name),
        invariants=standard_invariants(coherent=True),
        workers=workers,
        **kwargs)


def outcome(result) -> dict:
    """The fields every disturbed run must reproduce exactly."""
    cell = {
        "ok": result.ok,
        "states": result.states_explored,
        "transitions": result.transitions,
        "max_depth": result.max_depth,
    }
    if result.violation is not None:
        cell["violation_kind"] = result.violation.kind
        cell["violation_message"] = result.violation.message
        cell["trace"] = list(result.violation.trace)
    return cell


class KillAtWave:
    """SIGKILL worker ``victim`` the first time wave ``at`` starts."""

    def __init__(self, at: int, victim: int = 0):
        self.at = at
        self.victim = victim
        self.fired = False

    def __call__(self, wave: int, procs) -> None:
        if self.fired or wave != self.at:
            return
        self.fired = True
        target = procs[self.victim % len(procs)]
        if target.pid is not None:
            os.kill(target.pid, signal.SIGKILL)


class StallAtWave:
    """SIGSTOP a worker so it hangs silently instead of dying."""

    def __init__(self, at: int, victim: int = 0):
        self.at = at
        self.victim = victim
        self.fired = False

    def __call__(self, wave: int, procs) -> None:
        if self.fired or wave != self.at:
            return
        self.fired = True
        target = procs[self.victim % len(procs)]
        if target.pid is not None:
            os.kill(target.pid, signal.SIGSTOP)


def run_kill_cell(name: str, workers: int, wave: int,
                  baseline: dict) -> dict:
    checker = make_parallel(name, workers, on_worker_loss="degrade",
                            chaos_hook=KillAtWave(wave))
    started = time.perf_counter()
    result = checker.run()
    got = outcome(result)
    cell = {
        "verdict": "recovered" if got == baseline else "MISMATCH",
        "worker_losses": result.worker_losses,
        "seconds": round(time.perf_counter() - started, 3),
    }
    if got != baseline:
        cell["expected"] = baseline
        cell["got"] = got
    return cell


def run_stall_cell(name: str, workers: int, wave: int,
                   baseline: dict) -> dict:
    checker = make_parallel(name, workers, on_worker_loss="degrade",
                            worker_stall_timeout=2.0,
                            chaos_hook=StallAtWave(wave))
    started = time.perf_counter()
    result = checker.run()
    got = outcome(result)
    cell = {
        "verdict": "recovered" if got == baseline else "MISMATCH",
        "worker_losses": result.worker_losses,
        "seconds": round(time.perf_counter() - started, 3),
    }
    if got != baseline:
        cell["expected"] = baseline
        cell["got"] = got
    return cell


def corruption_variants(blob: bytes):
    """Every way we damage a checkpoint file, as (label, bytes)."""
    yield "truncated_half", blob[:len(blob) // 2]
    yield "truncated_one_byte", blob[:-2]
    yield "empty", b""
    flipped = bytearray(blob)
    flipped[len(flipped) // 2] ^= 0x40
    yield "bitflip_middle", bytes(flipped)
    yield "binary_garbage", bytes(range(256)) * 4
    yield "wrong_kind", blob.replace(b"teapot-parallel-checkpoint",
                                     b"teapot-mystery-checkpoint", 1)
    # A legal-JSON edit of sealed content: the seal must catch it.
    yield "edited_field", blob.replace(b'"wave":', b'"wave": 999,'
                                       b' "wave_orig":', 1)


def run_corruption_matrix(tmpdir: str) -> dict:
    """A real checkpoint, damaged every way; each load must refuse
    with a one-line CheckpointError."""
    path = os.path.join(tmpdir, "chaos_ck.json")
    config = CONFIGS["lcm"]
    ModelChecker(
        compile_named_protocol("lcm"),
        n_nodes=config["n_nodes"], n_blocks=config["n_blocks"],
        reorder_bound=config["reorder"],
        events=events_for_protocol("lcm"),
        invariants=standard_invariants(coherent=True),
        fingerprint_states=True,
        max_states=100, checkpoint_out=path).run()
    with open(path, "rb") as handle:
        blob = handle.read()

    cells = {}
    for label, damaged in corruption_variants(blob):
        victim = os.path.join(tmpdir, f"chaos_ck_{label}.json")
        with open(victim, "wb") as handle:
            handle.write(damaged)
        checker = make_parallel("lcm", 2, resume=victim)
        try:
            checker.run()
        except CheckpointError as error:
            message = str(error)
            if "\n" in message:
                cells[label] = {"verdict": "MULTILINE",
                                "message": message}
            else:
                cells[label] = {"verdict": "refused", "message": message}
        except Exception as error:  # noqa: BLE001 -- report, don't die
            cells[label] = {"verdict": "WRONG_ERROR",
                            "message": f"{type(error).__name__}: {error}"}
        else:
            cells[label] = {"verdict": "ACCEPTED_CORRUPT"}
    return cells


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("-o", "--output", default="CHAOS_CHECK.json")
    parser.add_argument("--protocols", default="stache,lcm,lcm_mcc",
                        help="comma-separated subset of "
                             f"{', '.join(CONFIGS)}")
    parser.add_argument("--workers", default="2,3,4",
                        help="comma-separated worker counts")
    parser.add_argument("--kill-waves", default="0,2,5",
                        help="wave indices at which to SIGKILL a worker")
    args = parser.parse_args()

    names = args.protocols.split(",")
    unknown = [name for name in names if name not in CONFIGS]
    if unknown:
        raise SystemExit(f"unknown protocols: {', '.join(unknown)}")
    worker_counts = [int(w) for w in args.workers.split(",")]
    kill_waves = [int(w) for w in args.kill_waves.split(",")]

    failures = []
    report = {"benchmark": "chaos harness: kill/stall/corrupt the "
                           "checker", "cells": {}}

    for name in names:
        baseline = outcome(make_parallel(name, 2).run())
        report["cells"][name] = {"baseline": baseline}
        for workers in worker_counts:
            for wave in kill_waves:
                key = f"kill@w{wave} x{workers}"
                cell = run_kill_cell(name, workers, wave, baseline)
                report["cells"][name][key] = cell
                if cell["verdict"] != "recovered":
                    failures.append(f"{name} {key}")
                print(f"{name:8s} {key:16s} {cell['verdict']} "
                      f"(losses={cell['worker_losses']}, "
                      f"{cell['seconds']}s)")
        key = "stall@w1 x2"
        cell = run_stall_cell(name, 2, 1, baseline)
        report["cells"][name][key] = cell
        if cell["verdict"] != "recovered":
            failures.append(f"{name} {key}")
        print(f"{name:8s} {key:16s} {cell['verdict']} "
              f"(losses={cell['worker_losses']}, {cell['seconds']}s)")

    with tempfile.TemporaryDirectory() as tmpdir:
        corruption = run_corruption_matrix(tmpdir)
    report["corruption"] = corruption
    for label, cell in corruption.items():
        if cell["verdict"] != "refused":
            failures.append(f"corrupt:{label} -> {cell['verdict']}")
        print(f"corrupt  {label:18s} {cell['verdict']}")

    report["failures"] = failures
    atomic_write_json(args.output, report, indent=2)
    print(f"wrote {args.output}")
    if failures:
        print(f"CHAOS FAILURES: {', '.join(failures)}", file=sys.stderr)
        return 1
    print("chaos matrix green: every disturbed run recovered exactly; "
          "every corrupt checkpoint was refused with a one-line error")
    return 0


if __name__ == "__main__":
    sys.exit(main())
