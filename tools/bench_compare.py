"""Compare two BENCH_*.json artifacts and gate on regressions.

Loads a baseline and a candidate bench artifact (any of the
``tools/bench_*.py`` outputs), flattens every numeric metric to a
dotted path, and reports per-metric deltas.  Direction is inferred
from the metric name: ``*per_second*``, ``*speedup*``, and
``*ratio*`` (reduction collapse) are higher-is-better,
``*seconds*`` and ``*pct*`` are lower-is-better, anything else is
informational only.

Metrics matching a ``--gate`` glob (default ``*states_per_second*``)
are *gated*: if any regresses by more than ``--threshold`` (default
0.2 = 20%), the exit status is nonzero.  This is the CI regression
gate the ROADMAP's checker-performance work is judged against.

The gate is *spread-aware*: bench artifacts record each row's measured
run-to-run noise (``wall_spread_pct``, the min/max spread of the
repeats around the median), and that noise routinely exceeds a fixed
20% threshold on shared runners -- the committed baseline itself
records spreads from 19% to 66%.  A fixed threshold below the noise
floor fails pure-noise re-runs of identical code.  So for each gated
metric the effective tolerance is ``max(--threshold, recorded spread
of the same row in either artifact)``: a drop only fails the gate when
it exceeds both the configured threshold and every plausible noise
explanation the measurements themselves admit.  ``--ignore-spread``
restores the fixed threshold.

Host normalization: artifacts written by ``bench_common.bench_meta``
record ``cpu_count``/``platform``/``python``.  When those differ the
report says so; ``--normalize-cpu`` additionally scales per-second
metrics to a per-core basis before comparing (crude, but it keeps a
4-core laptop from "regressing" a 16-core CI baseline).

Usage::

    python tools/bench_compare.py BASELINE.json CANDIDATE.json \
        [--threshold 0.2] [--gate GLOB ...] [--normalize-cpu]
"""

from __future__ import annotations

import argparse
import json
import sys
from fnmatch import fnmatch

from bench_common import META_KEYS

HIGHER_BETTER = ("per_second", "speedup", "ratio")
LOWER_BETTER = ("seconds", "pct")


def load(path: str) -> dict:
    try:
        with open(path) as handle:
            payload = json.load(handle)
    except FileNotFoundError:
        raise SystemExit(f"error: {path}: no such file")
    except json.JSONDecodeError as error:
        raise SystemExit(f"error: {path}: not valid JSON ({error.msg})")
    if not isinstance(payload, dict):
        raise SystemExit(f"error: {path}: not a bench artifact "
                         "(not an object)")
    return payload


def flatten(payload: dict, prefix: str = "") -> dict:
    """Numeric leaves only, keyed by dotted path; header keys and
    non-numeric annotations (notes, verdicts, timestamps) drop out."""
    out = {}
    for key, value in payload.items():
        if not prefix and key in META_KEYS:
            continue
        path = f"{prefix}{key}"
        if isinstance(value, dict):
            out.update(flatten(value, f"{path}."))
        elif isinstance(value, bool):
            continue
        elif isinstance(value, (int, float)):
            out[path] = float(value)
    return out


def direction(path: str) -> int:
    """+1 higher-is-better, -1 lower-is-better, 0 informational."""
    leaf = path.rsplit(".", 1)[-1]
    if any(mark in leaf for mark in HIGHER_BETTER):
        return +1
    if any(mark in leaf for mark in LOWER_BETTER):
        return -1
    return 0


def recorded_spread(path: str, *metric_sets: dict) -> float:
    """The measured noise floor for ``path``, as a fraction.

    Looks for the sibling ``wall_spread_pct`` in the same metric group
    (``configs.baseline.states_per_second`` ->
    ``configs.baseline.wall_spread_pct``) in each artifact and returns
    the largest, scaled from percent to a fraction.  0.0 when neither
    artifact recorded a spread for the row.
    """
    prefix = path.rsplit(".", 1)[0] + "." if "." in path else ""
    sibling = f"{prefix}wall_spread_pct"
    return max((metrics.get(sibling, 0.0) / 100.0
                for metrics in metric_sets), default=0.0)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline")
    parser.add_argument("candidate")
    parser.add_argument("--threshold", type=float, default=0.2,
                        metavar="FRAC",
                        help="gated regression tolerance as a fraction "
                             "(default 0.2 = 20%%)")
    parser.add_argument("--gate", action="append", metavar="GLOB",
                        help="metric paths to gate on (fnmatch glob, "
                             "repeatable; default *states_per_second*)")
    parser.add_argument("--normalize-cpu", action="store_true",
                        help="scale per-second metrics by recorded "
                             "cpu_count before comparing")
    parser.add_argument("--ignore-spread", action="store_true",
                        help="gate on the fixed threshold even when the "
                             "artifacts record a larger run-to-run spread")
    args = parser.parse_args()
    gates = args.gate or ["*states_per_second*"]

    base_doc = load(args.baseline)
    cand_doc = load(args.candidate)
    for doc, path in ((base_doc, args.baseline), (cand_doc, args.candidate)):
        if "schema" not in doc:
            print(f"note: {path} has no schema header (pre-unification "
                  "artifact); host normalization unavailable for it")

    mismatched = [key for key in ("cpu_count", "platform", "python")
                  if base_doc.get(key) != cand_doc.get(key)]
    if mismatched:
        detail = ", ".join(
            f"{key}: {base_doc.get(key)!r} vs {cand_doc.get(key)!r}"
            for key in mismatched)
        print(f"caveat: hosts differ ({detail}) -- deltas mix machine "
              "and code effects")

    base = flatten(base_doc)
    cand = flatten(cand_doc)
    if args.normalize_cpu:
        for doc, metrics in ((base_doc, base), (cand_doc, cand)):
            cpus = doc.get("cpu_count")
            if cpus:
                for path in metrics:
                    if "per_second" in path:
                        metrics[path] /= cpus

    shared = sorted(set(base) & set(cand))
    if not shared:
        raise SystemExit("error: the artifacts share no numeric metrics "
                         "-- are they from the same benchmark?")
    only = sorted(set(base) ^ set(cand))
    if only:
        print(f"note: {len(only)} metric(s) present in only one artifact "
              f"(e.g. {only[0]}); comparing the {len(shared)} shared")

    failures = []
    print(f"{'metric':44s} {'baseline':>12s} {'candidate':>12s} "
          f"{'delta':>8s}")
    for path in shared:
        va, vb = base[path], cand[path]
        rel = (vb - va) / va if va else 0.0
        sign = direction(path)
        gated = any(fnmatch(path, glob) for glob in gates) and sign != 0
        tolerance = args.threshold
        if gated and not args.ignore_spread:
            tolerance = max(tolerance, recorded_spread(path, base, cand))
        regressed = gated and (-sign * rel) > tolerance
        marks = ""
        if gated:
            marks = " [gate]"
            if tolerance > args.threshold:
                marks += f" (noise allows {tolerance:.0%})"
        if regressed:
            marks += " REGRESSION"
            failures.append((path, rel, tolerance))
        print(f"{path:44s} {va:>12.4g} {vb:>12.4g} {rel:>+7.1%}{marks}")

    if failures:
        print(f"\nFAIL: {len(failures)} gated metric(s) regressed beyond "
              "tolerance:")
        for path, rel, tolerance in failures:
            print(f"  {path}: {rel:+.1%} (tolerance {tolerance:.0%})")
        return 1
    print(f"\nOK: no gated metric regressed beyond tolerance "
          f"({len(shared)} metrics compared)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
