"""Regenerate STATE_ATLAS.json: the per-protocol state-space index.

Explores every registered protocol at a small, fixed configuration
(3 nodes, 1 address, FIFO delivery -- the smallest config where the
caching nodes are interchangeable, so the symmetry-orbit estimator has
something to collapse), records the full atlas, and writes one summary
row per protocol: state/transition counts, terminal-SCC structure,
deadlocks, diameter, the orbit-collapse ratio, and the sampled POR
headroom.  Protocols whose 3-node space is too large to explore in a
tool run are bounded by ``--max-states``; their rows say
``exhausted: false`` and describe the explored prefix.

The committed artifact is the ROADMAP's evidence base for the
symmetry/POR reduction item: the ``orbit_ratio`` column bounds what
symmetry reduction could save, and ``por_commuting_fraction`` bounds
what partial-order reduction could prune.

Usage::

    PYTHONPATH=src python tools/state_atlas.py \
        [-o STATE_ATLAS.json] [--atlas-dir DIR] [--max-states N] \
        [--protocol NAME ...]
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
import warnings

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.api import (  # noqa: E402
    ArtifactOptions,
    CheckOptions,
    ReductionOptions,
    check,
)
from repro.protocols import PROTOCOLS  # noqa: E402
from repro.verify.atlas import (  # noqa: E402
    analyze_structure,
    orbit_summary,
    por_estimate,
)

INDEX_KIND = "teapot-state-atlas-index"
INDEX_VERSION = 1

NODES = 3
ADDRESSES = 1
REORDER = 0


def atlas_row(name: str, max_states: int, atlas_dir: str | None) -> dict:
    start = time.perf_counter()
    result = check(name, CheckOptions(
        nodes=NODES, addresses=ADDRESSES, reorder=REORDER,
        max_states=max_states, artifacts=ArtifactOptions(atlas=True)))
    elapsed = time.perf_counter() - start
    atlas = result.atlas
    if atlas_dir:
        atlas.save(os.path.join(atlas_dir, f"{name}.json"))
    structure = analyze_structure(atlas)
    orbit = orbit_summary(atlas)
    por = por_estimate(atlas)
    row = {
        "verdict": "PASS" if result.ok else "FAIL",
        "exhausted": bool(result.exhausted),
        "states": result.states_explored,
        "transitions": result.transitions,
        "max_depth": result.max_depth,
        "diameter": structure["diameter"],
        "sccs": structure["sccs"],
        "terminal_sccs": structure["terminal_sccs"],
        "deadlock_states": len(structure["deadlock_states"]),
        "orbit_method": orbit["method"],
        "orbits": orbit["orbits"],
        "orbit_ratio": round(orbit["ratio"], 4),
        "por_checked_pairs": por["checked_pairs"],
        "por_commuting_fraction": round(por["fraction"], 4),
    }
    if atlas.sampled:
        row["atlas_sampled"] = True
        row["atlas_truncation"] = dict(atlas.truncation)

    # Re-run under the production symmetry canonicalizer and cross-check
    # the estimator: on an exhausted run the reduced checker visits
    # exactly one representative per orbit, so the achieved state count
    # must equal the estimated orbit count -- a divergence means the
    # atlas remap and the checker canonicalizer disagree.  A protocol
    # that fails the checker's symmetry *certification* (a node-
    # asymmetric choice like lcm_mcc's PopSharer copy-delegation) falls
    # back to an unreduced run inside api.check; the row records that
    # instead of a bogus 1.00x "collapse".
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", RuntimeWarning)
        reduced = check(name, CheckOptions(
            nodes=NODES, addresses=ADDRESSES, reorder=REORDER,
            max_states=max_states,
            reduction=ReductionOptions(symmetry=True)))
    row["reduced_states"] = reduced.states_explored
    row["achieved_ratio"] = round(
        row["states"] / reduced.states_explored, 4)
    if reduced.canonical_states is None:
        row["orbit_cross_check"] = (
            "not node-symmetric: certification failed, unreduced "
            "fallback (asymmetric choice, e.g. PopSharer); the orbit "
            "estimate is an upper bound no sound quotient can achieve")
    elif row["exhausted"] and reduced.exhausted:
        row["orbit_cross_check"] = (
            "exact" if reduced.states_explored == orbit["orbits"]
            else f"MISMATCH: estimated {orbit['orbits']} orbits, "
                 f"checker visited {reduced.states_explored}")
    else:
        row["orbit_cross_check"] = "skipped (bounded run)"

    bounded = "" if row["exhausted"] else " bounded"
    print(f"{name:16s} states={row['states']:>7d} "
          f"orbit_ratio={row['orbit_ratio']:.2f}x "
          f"achieved={row['achieved_ratio']:.2f}x "
          f"terminal_sccs={row['terminal_sccs']} "
          f"por={row['por_commuting_fraction']:.2f} "
          f"({elapsed:.1f}s{bounded})")
    return row


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("-o", "--output", default="STATE_ATLAS.json")
    parser.add_argument("--atlas-dir", default=None,
                        help="also write each protocol's full atlas "
                             "JSON into this directory (CI artifacts)")
    parser.add_argument("--max-states", type=int, default=25_000,
                        help="exploration bound per protocol; rows "
                             "that hit it say exhausted: false")
    parser.add_argument("--protocol", action="append", default=None,
                        help="restrict to these protocols (repeatable; "
                             "default: all registered)")
    args = parser.parse_args()

    names = args.protocol or sorted(PROTOCOLS)
    unknown = [n for n in names if n not in PROTOCOLS]
    if unknown:
        parser.error(f"unknown protocol(s): {', '.join(unknown)}")
    if args.atlas_dir:
        os.makedirs(args.atlas_dir, exist_ok=True)

    rows = {}
    for name in names:
        rows[name] = atlas_row(name, args.max_states, args.atlas_dir)

    report = {
        "kind": INDEX_KIND,
        "version": INDEX_VERSION,
        "config": {"nodes": NODES, "addresses": ADDRESSES,
                   "reorder": REORDER, "max_states": args.max_states},
        "note": "one row per registered protocol at the smallest "
                "config with interchangeable caching nodes; "
                "orbit_ratio bounds symmetry reduction and "
                "achieved_ratio is what the production canonicalizer "
                "(ReductionOptions(symmetry=True)) actually collapses "
                "-- orbit_cross_check pins the two equal on exhausted "
                "runs, or records the certification fallback for "
                "protocols that are not node-symmetric; "
                "por_commuting_fraction bounds partial-order "
                "reduction (see docs/OBSERVABILITY.md).  Rows with "
                "exhausted: false describe a bounded prefix -- their "
                "terminal/deadlock counts include the unexpanded "
                "frontier and overstate the true graph.",
        "protocols": rows,
    }
    with open(args.output, "w") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
