#!/usr/bin/env python3
"""Regenerate the LCM variant protocols (lcm_update/lcm_mcc/lcm_both).

The variants are derived mechanically from lcm.tea, mirroring how the
paper describes building them as modifications of the base protocol.
Run from the repository root after editing src/repro/protocols/lcm.tea.
"""
base = open('src/repro/protocols/lcm.tea').read()

def rep(src, old, new, what, count=None):
    assert old in src, f"anchor missing: {what}"
    return src.replace(old, new, count) if count else src.replace(old, new)

CACHE_INV_DEFAULT = """  Message DEFAULT (id : ID; Var info : INFO; src : NODE)
  Begin
    Error("invalid msg %s to Cache_Invalid", Msg_To_Str(MessageTag));
  End;"""


def make_update(src, proto_name, old_name):
    """LCM-Update: consumers park in Cache_Await_Update after exiting,
    so the eager update they are guaranteed to receive can never be
    orphaned by later phases (an earlier push-to-Invalid design was
    shot down twice by the model checker)."""
    src = rep(src, f"Protocol {old_name}\n", f"Protocol {proto_name}\n", "proto")
    src = src.replace(f"State {old_name}.", f"State {proto_name}.")
    src = rep(src, """  Message BEGIN_LCM_ACK;     -- home -> cache: phase entry recorded""",
"""  Message BEGIN_LCM_ACK;     -- home -> cache: phase entry recorded
  Message UPDATE_DATA;       -- home -> consumer: eager post-phase update""",
        "msg decl")
    src = rep(src, """  State Cache_Await_BeginAck { C : CONT } Transient;""",
"""  State Cache_Await_BeginAck { C : CONT } Transient;
  State Cache_Await_Update {} Transient;""", "state decl")
    src = rep(src, """  Var stalePuts  : INT;          -- recalls already answered by a PUT_ACCUM""",
"""  Var stalePuts  : INT;          -- recalls already answered by a PUT_ACCUM
  Var updDead    : BOOL;         -- an INV_REQ overtook our pending update""",
        "var decl")
    # Home tracks consumers in the sharer set.
    src = rep(src, """  Message GET_LCM_COPY_REQ (id : ID; Var info : INFO; src : NODE)
  Begin
    SendBlk(src, GET_LCM_COPY_RESP, id);
  End;""",
"""  Message GET_LCM_COPY_REQ (id : ID; Var info : INFO; src : NODE)
  Begin
    AddSharer(info, src);   -- remember the consumer for the eager update
    SendBlk(src, GET_LCM_COPY_RESP, id);
  End;""", "copy req")
    # Phase end: push the reconciled block to every consumer.
    src = rep(src, """  Message END_LCM (id : ID; Var info : INFO; src : NODE)
  Begin
    numInPhase := numInPhase - 1;
    If (numInPhase = 0) Then
      SetState(info, Home_Idle{});
    Endif;
  End;

  Message EXIT_LCM_FAULT (id : ID; Var info : INFO; src : NODE)
  Begin
    numInPhase := numInPhase - 1;
    If (numInPhase = 0) Then
      SetState(info, Home_Idle{});
    Endif;
    WakeUp(id);
  End;""",
"""  Message END_LCM (id : ID; Var info : INFO; src : NODE)
  Var
    n : NODE;
    remaining, i : INT;
  Begin
    numInPhase := numInPhase - 1;
    If (numInPhase = 0) Then
      -- Eagerly push the reconciled block to every consumer seen during
      -- the phase; they become ordinary read-only sharers.
      If (IsEmptySharers(info)) Then
        SetState(info, Home_Idle{});
      Else
        remaining := CountSharers(info);
        i := 0;
        While (i < remaining) Do
          n := NthSharer(info, i);
          SendBlk(n, UPDATE_DATA, id);
          i := i + 1;
        End;
        AccessChange(id, Blk_Downgrade_RO);
        SetState(info, Home_RS{});
      Endif;
    Endif;
  End;

  Message EXIT_LCM_FAULT (id : ID; Var info : INFO; src : NODE)
  Var
    n : NODE;
    remaining, i : INT;
  Begin
    numInPhase := numInPhase - 1;
    If (numInPhase = 0) Then
      If (IsEmptySharers(info)) Then
        SetState(info, Home_Idle{});
      Else
        remaining := CountSharers(info);
        i := 0;
        While (i < remaining) Do
          n := NthSharer(info, i);
          SendBlk(n, UPDATE_DATA, id);
          i := i + 1;
        End;
        AccessChange(id, Blk_Downgrade_RO);
        SetState(info, Home_RS{});
      Endif;
    Endif;
    WakeUp(id);
  End;""", "phase end")
    # Consumers (clean and dirty in-phase copy holders) park awaiting
    # their guaranteed eager update on exit.
    src = rep(src, """  Message EXIT_LCM_FAULT (id : ID; Var info : INFO; src : NODE)
  Begin
    SendBlk(HomeNode(id), PUT_ACCUM, id);
    AccessChange(id, Blk_Invalidate);
    Suspend(L, Cache_Await_AccumAck{L});
    Send(HomeNode(id), END_LCM, id);
    SetState(info, Cache_Invalid{});
    WakeUp(id);
  End;""",
"""  Message EXIT_LCM_FAULT (id : ID; Var info : INFO; src : NODE)
  Begin
    SendBlk(HomeNode(id), PUT_ACCUM, id);
    AccessChange(id, Blk_Invalidate);
    Suspend(L, Cache_Await_AccumAck{L});
    Send(HomeNode(id), END_LCM, id);
    -- As a consumer we are guaranteed an eager update at phase end;
    -- park until it arrives so it can never be orphaned.
    SetState(info, Cache_Await_Update{});
    WakeUp(id);
  End;""", "dirty consumer exit")
    src = rep(src, """  Message EXIT_LCM_FAULT (id : ID; Var info : INFO; src : NODE)
  Begin
    -- Clean copy: nothing to reconcile, just drop it.
    AccessChange(id, Blk_Invalidate);
    Send(HomeNode(id), END_LCM, id);
    SetState(info, Cache_Invalid{});
    WakeUp(id);
  End;""",
"""  Message EXIT_LCM_FAULT (id : ID; Var info : INFO; src : NODE)
  Begin
    -- Clean copy: drop it, but as a consumer an eager update is on
    -- its way; park until it arrives.
    AccessChange(id, Blk_Invalidate);
    Send(HomeNode(id), END_LCM, id);
    SetState(info, Cache_Await_Update{});
    WakeUp(id);
  End;""", "clean consumer exit")
    # Faults queued while parked in Cache_Await_Update are redelivered
    # at Cache_RO once the update installs; handle them there.
    src = rep(src, """  Message PUT_REQ (id : ID; Var info : INFO; src : NODE)
  Begin
    -- Only a stale recall (already answered by a PUT_ACCUM) can reach
    -- a read-only copy; absorb it.""",
"""  Message RD_FAULT (id : ID; Var info : INFO; src : NODE)
  Begin
    -- A read queued while we awaited the eager update; it is
    -- satisfied by the copy the update installed.
    WakeUp(id);
  End;

  Message WR_FAULT (id : ID; Var info : INFO; src : NODE)
  Begin
    -- A write queued while we awaited the update: upgrade the fresh
    -- read-only copy.
    Send(HomeNode(id), UPGRADE_REQ, id);
    Suspend(L, Cache_RO_To_RW{L});
    WakeUp(id);
  End;

  Message PUT_REQ (id : ID; Var info : INFO; src : NODE)
  Begin
    -- Only a stale recall (already answered by a PUT_ACCUM) can reach
    -- a read-only copy; absorb it.""", "cache ro stale faults")

    src += f"""
-- A consumer that left the phase and is owed the reconciled block.
-- New work on the block queues here until the update lands.
State {proto_name}.Cache_Await_Update{{}}
Begin
  Message UPDATE_DATA (id : ID; Var info : INFO; src : NODE)
  Begin
    If (updDead) Then
      -- An invalidation overtook the update; install nothing.
      updDead := False;
      SetState(info, Cache_Invalid{{}});
    Else
      RecvData(id, Blk_Upgrade_RO);
      SetState(info, Cache_RO{{}});
    Endif;
  End;

  Message INV_REQ (id : ID; Var info : INFO; src : NODE)
  Begin
    -- A writer invalidated us before our update arrived.
    Send(HomeNode(id), INV_ACK, id);
    updDead := True;
  End;

  Message PUT_REQ (id : ID; Var info : INFO; src : NODE)
  Begin
    If (stalePuts > 0) Then
      stalePuts := stalePuts - 1;
    Endif;
  End;

  Message DEFAULT (id : ID; Var info : INFO; src : NODE)
  Begin
    Enqueue(MessageTag, id, info, src);
  End;
End;
"""
    return src


def make_mcc(src, proto_name, old_name, keep_consumers=False):
    src = rep(src, f"Protocol {old_name}\n", f"Protocol {proto_name}\n", "proto")
    src = src.replace(f"State {old_name}.", f"State {proto_name}.")
    src = rep(src, """  Message BEGIN_LCM_ACK;     -- home -> cache: phase entry recorded""",
"""  Message BEGIN_LCM_ACK;     -- home -> cache: phase entry recorded
  Message COPY_FWD_REQ;      -- home -> holder: serve a copy for me
  Message COPY_FWD_NACK;     -- holder -> home: no longer have the copy""",
        "msg decl")
    plain = """  Message GET_LCM_COPY_REQ (id : ID; Var info : INFO; src : NODE)
  Begin
    SendBlk(src, GET_LCM_COPY_RESP, id);
  End;"""
    tracking = """  Message GET_LCM_COPY_REQ (id : ID; Var info : INFO; src : NODE)
  Begin
    AddSharer(info, src);   -- remember the consumer for the eager update
    SendBlk(src, GET_LCM_COPY_RESP, id);
  End;"""
    delegated = """  Message GET_LCM_COPY_REQ (id : ID; Var info : INFO; src : NODE)
  Var
    n : NODE;
  Begin
    -- Distribute copy-serving across existing holders (the MCC
    -- optimisation): pick some current holder and delegate.
    If (IsEmptySharers(info)) Then
      AddSharer(info, src);
      SendBlk(src, GET_LCM_COPY_RESP, id);
    Else
      n := PopSharer(info);
      AddSharer(info, n);
      If (n = src) Then
        AddSharer(info, src);
        SendBlk(src, GET_LCM_COPY_RESP, id);
      Else
        AddSharer(info, src);
        Send(n, COPY_FWD_REQ, id, src);
      Endif;
    Endif;
  End;

  Message COPY_FWD_NACK (id : ID; Var info : INFO; src : NODE;
                         requester : NODE)
  Begin
    -- The delegated holder lost its copy; serve from home after all.
    SendBlk(requester, GET_LCM_COPY_RESP, id);
  End;"""
    if tracking in src:
        src = src.replace(tracking, delegated)
    else:
        src = rep(src, plain, delegated, "copy req")
    if not keep_consumers:
        # Pure MCC: the sharer set tracks *live holders* only.
        src = rep(src, """  Message PUT_ACCUM (id : ID; Var info : INFO; src : NODE)
  Begin
    RecvData(id, Blk_Upgrade_RW);
    Send(src, PUT_ACCUM_ACK, id, 0);
  End;""",
"""  Message PUT_ACCUM (id : ID; Var info : INFO; src : NODE)
  Begin
    RecvData(id, Blk_Upgrade_RW);
    Send(src, PUT_ACCUM_ACK, id, 0);
    DelSharer(info, src);   -- no longer a live copy holder
  End;""", "accum delshare")
    # Cache side: serve or bounce forwarded requests.
    src = rep(src, f"""State {proto_name}.Cache_LCM{{}}
Begin""",
f"""State {proto_name}.Cache_LCM{{}}
Begin
  Message COPY_FWD_REQ (id : ID; Var info : INFO; src : NODE;
                        requester : NODE)
  Begin
    SendBlk(requester, GET_LCM_COPY_RESP, id);
  End;
""", "lcm fwd")
    src = rep(src, f"""State {proto_name}.Cache_LCM_Dirty{{}}
Begin""",
f"""State {proto_name}.Cache_LCM_Dirty{{}}
Begin
  Message COPY_FWD_REQ (id : ID; Var info : INFO; src : NODE;
                        requester : NODE)
  Begin
    -- A dirty private copy still serves delegated requests: phase
    -- copies are loose by definition.
    SendBlk(requester, GET_LCM_COPY_RESP, id);
  End;
""", "lcm dirty fwd")
    FWD_NACK = """  Message COPY_FWD_REQ (id : ID; Var info : INFO; src : NODE;
                        requester : NODE)
  Begin
    -- We gave the copy up already; let the home serve the requester.
    Send(HomeNode(id), COPY_FWD_NACK, id, requester);
  End;
"""
    src = rep(src, f"""State {proto_name}.Cache_LCM_Idle{{}}
Begin""",
f"""State {proto_name}.Cache_LCM_Idle{{}}
Begin
{FWD_NACK}""", "lcm idle fwd")
    src = rep(src, CACHE_INV_DEFAULT, FWD_NACK + "\n" + CACHE_INV_DEFAULT,
              "cache inv fwd")
    if f"State {proto_name}.Cache_Await_Update{{}}" in src:
        src = rep(src, f"""State {proto_name}.Cache_Await_Update{{}}
Begin""",
f"""State {proto_name}.Cache_Await_Update{{}}
Begin
{FWD_NACK}""", "await update fwd")
    return src


upd = make_update(base, "LCMUpdate", "LCM")
upd = upd.replace("-- LCM: Loosely Coherent Memory",
    "-- LCM-Update: LCM variant \"that eagerly sends updates to consumers\"\n"
    "-- at the end of an LCM phase (Section 6).  Derived from LCM:\n"
    "-- Loosely Coherent Memory", 1)
open('src/repro/protocols/lcm_update.tea', 'w').write(upd)

mcc = make_mcc(base, "LCMMcc", "LCM")
mcc = mcc.replace("-- LCM: Loosely Coherent Memory",
    "-- LCM-MCC: LCM variant that \"manages multiple, distributed copies\"\n"
    "-- of data as a performance optimization (Section 6): in-phase copy\n"
    "-- requests are delegated to existing holders.  Derived from LCM:\n"
    "-- Loosely Coherent Memory", 1)
open('src/repro/protocols/lcm_mcc.tea', 'w').write(mcc)

both = make_mcc(make_update(base, "LCMBoth", "LCM"), "LCMBoth", "LCMBoth",
                keep_consumers=True)
both = both.replace("-- LCM: Loosely Coherent Memory",
    "-- LCM-Both: LCM with both the eager-update and multiple-copy\n"
    "-- extensions (Section 6).  Derived from LCM: Loosely Coherent Memory", 1)
open('src/repro/protocols/lcm_both.tea', 'w').write(both)
print("variants written")
