"""Shared plumbing for the ``tools/bench_*.py`` writers.

Every BENCH_*.json artifact starts with the same metadata header::

    {schema, benchmark, cpu_count, platform, python, git_rev, timestamp}

so ``tools/bench_compare.py`` can line two artifacts up, normalize by
the recorded host facts, and warn when the hosts are not comparable.
``schema`` versions the header itself, not any benchmark's payload --
each benchmark keeps its own row layout.
"""

from __future__ import annotations

import os
import platform
import subprocess
import sys
from datetime import datetime, timezone

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))), "src"))

from repro.ioutil import atomic_write_json  # noqa: E402

BENCH_SCHEMA = "teapot-bench/1"

# Header keys bench_compare.py treats as host facts, not metrics.
META_KEYS = ("schema", "benchmark", "cpu_count", "platform", "python",
             "git_rev", "timestamp")


def _git_rev() -> str | None:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True, text=True, timeout=10,
            cwd=os.path.dirname(os.path.abspath(__file__)))
    except OSError:
        return None
    rev = out.stdout.strip()
    return rev if out.returncode == 0 and rev else None


def bench_meta(benchmark: str) -> dict:
    """The unified metadata header every bench writer leads with."""
    return {
        "schema": BENCH_SCHEMA,
        "benchmark": benchmark,
        "cpu_count": os.cpu_count(),
        "platform": platform.platform(),
        "python": platform.python_version(),
        "git_rev": _git_rev(),
        "timestamp": datetime.now(timezone.utc).isoformat(
            timespec="seconds"),
    }


def summarize_times(samples) -> dict:
    """Median-of-repeats with the spread, for wall-time rows.

    Overhead percentages built on best-of-N compare two *minima*, and
    the minimum of the noisier configuration dips lower -- which is how
    a pure observer once benchmarked at -4.2% overhead.  The median is
    a consistent estimator of the typical run, and reporting the spread
    (max-min as a fraction of the median) tells the reader how much of
    any overhead delta is just host noise.
    """
    ordered = sorted(samples)
    count = len(ordered)
    mid = count // 2
    if count % 2:
        median = ordered[mid]
    else:
        median = (ordered[mid - 1] + ordered[mid]) / 2.0
    spread = (100.0 * (ordered[-1] - ordered[0]) / median) if median \
        else 0.0
    return {
        "median_seconds": median,
        "min_seconds": ordered[0],
        "max_seconds": ordered[-1],
        "spread_pct": spread,
        "samples": count,
    }


def timing_row(samples) -> dict:
    """The shared wall-time fields every bench row leads with."""
    stats = summarize_times(samples)
    return {
        "wall_seconds": round(stats["median_seconds"], 4),
        "wall_seconds_min": round(stats["min_seconds"], 4),
        "wall_seconds_max": round(stats["max_seconds"], 4),
        "wall_spread_pct": round(stats["spread_pct"], 1),
    }


def write_bench(path: str, report: dict) -> None:
    # Atomic (tmp + fsync + rename): a bench run killed mid-write must
    # not leave a torn BENCH_*.json that bench_compare.py then parses.
    atomic_write_json(path, report, indent=2)
    print(f"wrote {path}")
