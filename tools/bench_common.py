"""Shared plumbing for the ``tools/bench_*.py`` writers.

Every BENCH_*.json artifact starts with the same metadata header::

    {schema, benchmark, cpu_count, platform, python, git_rev, timestamp}

so ``tools/bench_compare.py`` can line two artifacts up, normalize by
the recorded host facts, and warn when the hosts are not comparable.
``schema`` versions the header itself, not any benchmark's payload --
each benchmark keeps its own row layout.
"""

from __future__ import annotations

import json
import os
import platform
import subprocess
from datetime import datetime, timezone

BENCH_SCHEMA = "teapot-bench/1"

# Header keys bench_compare.py treats as host facts, not metrics.
META_KEYS = ("schema", "benchmark", "cpu_count", "platform", "python",
             "git_rev", "timestamp")


def _git_rev() -> str | None:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True, text=True, timeout=10,
            cwd=os.path.dirname(os.path.abspath(__file__)))
    except OSError:
        return None
    rev = out.stdout.strip()
    return rev if out.returncode == 0 and rev else None


def bench_meta(benchmark: str) -> dict:
    """The unified metadata header every bench writer leads with."""
    return {
        "schema": BENCH_SCHEMA,
        "benchmark": benchmark,
        "cpu_count": os.cpu_count(),
        "platform": platform.platform(),
        "python": platform.python_version(),
        "git_rev": _git_rev(),
        "timestamp": datetime.now(timezone.utc).isoformat(
            timespec="seconds"),
    }


def write_bench(path: str, report: dict) -> None:
    with open(path, "w") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
    print(f"wrote {path}")
