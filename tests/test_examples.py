"""Every example script runs clean end to end (subprocess integration)."""

import os
import subprocess
import sys

import pytest

REPO_ROOT = os.path.abspath(os.path.join(os.path.dirname(__file__), ".."))
EXAMPLES = [
    "quickstart.py",
    "custom_protocol_cas.py",
    "verify_and_debug.py",
    "lcm_phases.py",
    "codegen_tour.py",
    "dash_nested_suspends.py",
]


@pytest.mark.parametrize("script", EXAMPLES)
def test_example_runs(script):
    result = subprocess.run(
        [sys.executable, os.path.join("examples", script)],
        cwd=REPO_ROOT, capture_output=True, text=True, timeout=300)
    assert result.returncode == 0, result.stderr[-2000:]
    assert result.stdout.strip(), "examples should narrate what they do"


def test_examples_directory_is_covered():
    listed = {
        name for name in os.listdir(os.path.join(REPO_ROOT, "examples"))
        if name.endswith(".py")
    }
    assert listed == set(EXAMPLES), "update EXAMPLES when adding scripts"
