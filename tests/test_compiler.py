"""Unit tests for the compiler middle end: lowering, splitting, liveness,
and the constant-continuation optimisation."""

import pytest

from repro.compiler.constcont import analyze_cont_flow
from repro.compiler.ir import (
    TBranch,
    TGoto,
    TReturn,
    TSuspend,
)
from repro.compiler.liveness import (
    apply_liveness,
    apply_save_all,
    compute_liveness,
)
from repro.compiler.lower import lower_handler, lower_program
from repro.compiler.pipeline import compile_source
from repro.lang.errors import CompileError
from repro.lang.parser import parse_program
from repro.lang.typecheck import check_program
from repro.runtime.protocol import Flavor, OptLevel

from helpers import MINI_SOURCE, compile_mini

TEMPLATE = """
Protocol T
Begin
  Var owner : NODE;
  Var count : INT;
  State S {{}};
  State W {{ C : CONT }} Transient;
  Message M;
  Message R;
End;

State T.S{{}}
Begin
  Message M (id : ID; Var info : INFO; src : NODE)
  {locals}
  Begin
    {body}
  End;
End;

State T.W{{C : CONT}}
Begin
  Message R (id : ID; Var info : INFO; src : NODE)
  Begin
    Resume(C);
  End;

  Message DEFAULT (id : ID; Var info : INFO; src : NODE)
  Begin
    Enqueue(MessageTag, id, info, src);
  End;
End;
"""


def lower_body(body: str, local_decls: str = ""):
    source = TEMPLATE.format(body=body, locals=local_decls)
    checked = check_program(parse_program(source))
    state = checked.program.state_def("S")
    return lower_handler(checked, state, state.handlers[0]), checked


class TestLowering:
    def test_straight_line(self):
        handler, _ = lower_body("count := 1;\nWakeUp(id);")
        assert len(handler.blocks) == 1
        entry = handler.blocks[handler.entry]
        assert len(entry.ops) == 2
        assert isinstance(entry.terminator, TReturn)

    def test_if_produces_diamond(self):
        handler, _ = lower_body(
            "If (count > 0) Then count := 1; Else count := 2; Endif;\n"
            "WakeUp(id);")
        branches = [
            b for b in handler.blocks.values()
            if isinstance(b.terminator, TBranch)
        ]
        assert len(branches) == 1
        true_b, false_b = branches[0].terminator.true_target, \
            branches[0].terminator.false_target
        assert true_b != false_b

    def test_if_without_else(self):
        handler, _ = lower_body("If (count > 0) Then count := 1; Endif;")
        branch = next(b.terminator for b in handler.blocks.values()
                      if isinstance(b.terminator, TBranch))
        # False edge goes straight to the join block.
        join = handler.blocks[branch.false_target]
        assert isinstance(join.terminator, TReturn)

    def test_while_has_back_edge(self):
        handler, _ = lower_body(
            "While (count > 0) Do count := count - 1; End;")
        branch_blocks = [
            b for b in handler.blocks.values()
            if isinstance(b.terminator, TBranch)
        ]
        assert len(branch_blocks) == 1
        head = branch_blocks[0]
        body = handler.blocks[head.terminator.true_target]
        assert isinstance(body.terminator, TGoto)
        assert body.terminator.target == head.block_id

    def test_suspend_splits_block(self):
        handler, _ = lower_body(
            "count := 1;\nSuspend(L, W{L});\ncount := 2;")
        assert len(handler.suspend_sites) == 1
        site = handler.suspend_sites[0]
        entry = handler.blocks[handler.entry]
        assert isinstance(entry.terminator, TSuspend)
        resume = handler.blocks[site.resume_block]
        assert len(resume.ops) == 1

    def test_suspend_in_loop(self):
        handler, _ = lower_body(
            "While (count > 0) Do\n"
            "  Suspend(L, W{L});\n"
            "  count := count - 1;\n"
            "End;")
        assert len(handler.suspend_sites) == 1
        site = handler.suspend_sites[0]
        # The resume block eventually jumps back to the loop head.
        assert site.resume_block in handler.blocks

    def test_two_suspends(self):
        handler, _ = lower_body(
            "Suspend(L, W{L});\nSuspend(L2, W{L2});")
        assert len(handler.suspend_sites) == 2
        assert handler.fragment_entries()[0] == handler.entry
        assert len(handler.fragment_entries()) == 3

    def test_return_terminates(self):
        handler, _ = lower_body(
            "If (count > 0) Then Return; Endif;\ncount := 1;")
        assert any(isinstance(b.terminator, TReturn)
                   for b in handler.blocks.values())

    def test_unreachable_after_return_rejected(self):
        with pytest.raises(CompileError, match="unreachable"):
            lower_body("Return;\ncount := 1;")

    def test_lower_program_covers_all_handlers(self):
        checked = check_program(parse_program(MINI_SOURCE))
        handlers = lower_program(checked)
        assert ("Home_Idle", "GET_REQ") in handlers
        assert ("Cache_Wait", "DEFAULT") in handlers

    def test_frame_vars(self):
        handler, _ = lower_body("Suspend(L, W{L});", "Var\n  tmp : INT;")
        frame = handler.frame_vars
        assert "id" in frame and "info" in frame and "src" in frame
        assert "tmp" in frame and "L" in frame
        assert "count" not in frame  # info var, not frame


class TestLiveness:
    def test_dead_after_suspend_not_saved(self):
        handler, _ = lower_body(
            "count := NodeToInt(src);\nSuspend(L, W{L});\nWakeUp(id);")
        apply_liveness(handler)
        site = handler.suspend_sites[0]
        assert "src" not in site.save_set
        # id is rebindable from the resuming message, so never saved.
        assert "id" not in site.save_set

    def test_live_after_suspend_saved(self):
        handler, _ = lower_body(
            "Suspend(L, W{L});\nowner := src;")
        apply_liveness(handler)
        assert "src" in handler.suspend_sites[0].save_set

    def test_local_live_across_suspend(self):
        handler, _ = lower_body(
            "tmp := NodeToInt(src);\nSuspend(L, W{L});\ncount := tmp;",
            "Var\n  tmp : INT;")
        apply_liveness(handler)
        assert "tmp" in handler.suspend_sites[0].save_set

    def test_local_redefined_after_suspend_not_saved(self):
        handler, _ = lower_body(
            "tmp := 1;\nSuspend(L, W{L});\ntmp := 2;\ncount := tmp;",
            "Var\n  tmp : INT;")
        apply_liveness(handler)
        assert "tmp" not in handler.suspend_sites[0].save_set

    def test_liveness_through_loop(self):
        handler, _ = lower_body(
            "tmp := NodeToInt(src);\n"
            "While (count > 0) Do\n"
            "  Suspend(L, W{L});\n"
            "End;\n"
            "owner := src;\ncount := tmp;",
            "Var\n  tmp : INT;")
        apply_liveness(handler)
        site = handler.suspend_sites[0]
        # Both tmp and src are live around the loop.
        assert "tmp" in site.save_set
        assert "src" in site.save_set

    def test_save_all_mode(self):
        handler, _ = lower_body(
            "Suspend(L, W{L});", "Var\n  tmp : INT;")
        apply_save_all(handler)
        site = handler.suspend_sites[0]
        assert set(site.save_set) >= {"id", "info", "src", "tmp"}
        assert "L" not in site.save_set

    def test_liveness_save_subset_of_save_all(self):
        for body, decls in [
            ("Suspend(L, W{L});\nowner := src;", ""),
            ("tmp := 1;\nSuspend(L, W{L});\ncount := tmp;",
             "Var\n  tmp : INT;"),
        ]:
            h1, _ = lower_body(body, decls)
            h2, _ = lower_body(body, decls)
            apply_liveness(h1)
            apply_save_all(h2)
            assert set(h1.suspend_sites[0].save_set) <= \
                set(h2.suspend_sites[0].save_set)

    def test_compute_liveness_fixed_point(self):
        handler, _ = lower_body(
            "While (count > 0) Do\n  owner := src;\nEnd;")
        live = compute_liveness(handler)
        assert "src" in live[handler.entry]


class TestConstCont:
    def test_empty_save_set_becomes_static(self):
        protocol = compile_source(
            TEMPLATE.format(body="Suspend(L, W{L});\nWakeUp(id);",
                            locals=""),
            opt_level=OptLevel.O2,
            initial_states=("S", "S"))
        handler = protocol.handlers[("S", "M")]
        assert handler.suspend_sites[0].is_static
        assert protocol.stats.n_static_sites == 1

    def test_nonempty_save_set_not_static(self):
        protocol = compile_source(
            TEMPLATE.format(body="Suspend(L, W{L});\nowner := src;",
                            locals=""),
            opt_level=OptLevel.O2,
            initial_states=("S", "S"))
        handler = protocol.handlers[("S", "M")]
        assert not handler.suspend_sites[0].is_static

    def test_unique_source_inlines_resume(self):
        protocol = compile_source(
            TEMPLATE.format(body="Suspend(L, W{L});\nWakeUp(id);",
                            locals=""),
            opt_level=OptLevel.O2,
            initial_states=("S", "S"))
        assert protocol.stats.n_inlined_resumes == 1
        resume_handler = protocol.handlers[("W", "R")]
        resume_ops = [
            op for block in resume_handler.blocks.values()
            for op in block.ops if hasattr(op, "direct_site")
        ]
        assert resume_ops[0].direct_site == 0
        assert resume_ops[0].direct_handler == "S.M"

    def test_multiple_sources_prevent_inlining(self):
        # Mini's Home_Wait is suspended to from three handlers.
        protocol = compile_mini(OptLevel.O2)
        handler = protocol.handlers[("Home_Wait", "PUT_RESP")]
        resume_ops = [
            op for block in handler.blocks.values()
            for op in block.ops if hasattr(op, "direct_site")
        ]
        assert resume_ops[0].direct_site is None
        assert protocol.stats.n_inlined_resumes == 0

    def test_cont_flow_analysis(self):
        checked = check_program(parse_program(MINI_SOURCE))
        handlers = lower_program(checked)
        for handler in handlers.values():
            apply_liveness(handler)
        flow = analyze_cont_flow(checked, handlers)
        sources = flow.param_sources[("Home_Wait", "C")]
        assert sources is not None
        assert len(sources) == 3  # GET_REQ, RD_FAULT, WR_FAULT

    def test_o1_has_no_static_sites(self):
        protocol = compile_mini(OptLevel.O1)
        assert protocol.stats.n_static_sites == 0
        assert all(
            not site.is_static
            for handler in protocol.handlers.values()
            for site in handler.suspend_sites
        )


class TestPipeline:
    def test_opt_levels_produce_same_structure(self):
        protocols = {lvl: compile_mini(lvl) for lvl in OptLevel}
        states = {frozenset(p.states) for p in protocols.values()}
        assert len(states) == 1
        suspends = {p.stats.n_suspend_sites for p in protocols.values()}
        assert suspends == {5}

    def test_flavor_recorded(self):
        from repro.protocols import compile_named_protocol
        assert compile_named_protocol("stache").flavor is Flavor.TEAPOT
        assert compile_named_protocol("stache_sm").flavor is Flavor.BASELINE

    def test_initial_state_inference(self):
        from repro.protocols import load_protocol_source
        protocol = compile_source(load_protocol_source("stache"))
        assert protocol.initial_home_state == "Home_Idle"
        assert protocol.initial_cache_state == "Cache_Invalid"

    def test_initial_state_validation(self):
        with pytest.raises(CompileError, match="not a state"):
            compile_source(MINI_SOURCE, initial_states=("Nope", "Nope"))

    def test_describe_mentions_counts(self):
        protocol = compile_mini()
        text = protocol.describe()
        assert "suspend sites: 5" in text

    def test_stats_counts(self):
        protocol = compile_mini()
        assert protocol.stats.n_states == 5
        assert protocol.stats.n_transient_states == 2
        assert protocol.stats.n_handlers == 13
