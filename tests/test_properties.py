"""Cross-cutting property tests over every registered protocol."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.compiler.liveness import apply_liveness, apply_save_all
from repro.compiler.lower import lower_program
from repro.lang.parser import parse_program
from repro.lang.typecheck import check_program
from repro.protocols import PROTOCOLS, compile_named_protocol, \
    load_protocol_source
from repro.runtime.protocol import OptLevel

ALL_NAMES = sorted(PROTOCOLS)


@pytest.mark.parametrize("name", ALL_NAMES)
class TestCompiledInvariants:
    def test_save_sets_are_frame_subsets(self, name):
        protocol = compile_named_protocol(name)
        for handler in protocol.handlers.values():
            frame = set(handler.frame_vars)
            for site in handler.suspend_sites:
                assert set(site.save_set) <= frame

    def test_static_sites_have_empty_save_sets(self, name):
        protocol = compile_named_protocol(name)
        for handler in protocol.handlers.values():
            for site in handler.suspend_sites:
                if site.is_static:
                    assert site.save_set == ()

    def test_liveness_never_saves_more_than_save_all(self, name):
        checked = check_program(parse_program(load_protocol_source(name)))
        live = lower_program(checked)
        full = lower_program(checked)
        for handler in live.values():
            apply_liveness(handler)
        for handler in full.values():
            apply_save_all(handler)
        for key in live:
            for site_l, site_f in zip(live[key].suspend_sites,
                                      full[key].suspend_sites):
                assert set(site_l.save_set) <= set(site_f.save_set), key

    def test_suspend_targets_are_transient(self, name):
        protocol = compile_named_protocol(name)
        for handler in protocol.handlers.values():
            for site in handler.suspend_sites:
                assert protocol.states[site.target.name].transient, \
                    f"{handler.qualified_name} suspends to a stable state"

    def test_every_transient_state_can_make_progress(self, name):
        """Every transient state handles at least one real message (it
        must be able to leave), and defaults to queue/ignore rather than
        error for the rest."""
        protocol = compile_named_protocol(name)
        for state in protocol.states.values():
            if not state.transient:
                continue
            assert state.handlers, state.name

    def test_inlined_resumes_reference_real_sites(self, name):
        from repro.compiler.ir import IResume
        protocol = compile_named_protocol(name)
        for handler in protocol.handlers.values():
            for block in handler.blocks.values():
                for op in block.ops:
                    if isinstance(op, IResume) and op.direct_site is not None:
                        owner, site = protocol.suspend_site(
                            op.direct_handler, op.direct_site)
                        assert site.site_id == op.direct_site

    def test_fragment_entries_are_distinct(self, name):
        protocol = compile_named_protocol(name)
        for handler in protocol.handlers.values():
            entries = handler.fragment_entries()
            assert len(entries) == len(set(entries)), \
                handler.qualified_name

    def test_all_opt_levels_compile(self, name):
        for level in OptLevel:
            protocol = compile_named_protocol(name, opt_level=level)
            assert protocol.stats.n_handlers > 0


@pytest.mark.parametrize("name", ALL_NAMES)
def test_backends_agree_on_vocabulary(name):
    from repro.backends import emit_c, emit_murphi, emit_python
    protocol = compile_named_protocol(name)
    c_text = emit_c(protocol)
    murphi_text = emit_murphi(protocol)
    python_text = emit_python(protocol)
    for state in protocol.states:
        assert f"STATE_{state}" in c_text
        assert f"S_{state}" in murphi_text
    for key in protocol.handlers:
        assert repr(key[0]) in python_text or f"'{key[0]}'" in python_text


@given(seed=st.integers(min_value=0, max_value=100_000),
       n_blocks=st.integers(min_value=1, max_value=4))
@settings(max_examples=20, deadline=None)
def test_simulation_conserves_queue_records(seed, n_blocks):
    """Deferred messages are always eventually redelivered."""
    from repro.tempest.machine import Machine, MachineConfig
    from helpers import random_sharing_programs

    protocol = compile_named_protocol("stache")
    programs = random_sharing_programs(3, n_blocks, 10, seed=seed)
    machine = Machine(protocol, programs,
                      MachineConfig(n_nodes=3, n_blocks=n_blocks))
    result = machine.run()
    machine.assert_quiescent()
    counters = result.stats.counters
    assert counters.queue_allocs == counters.queue_frees
    assert counters.cont_allocs == counters.cont_frees


@given(seed=st.integers(min_value=0, max_value=100_000))
@settings(max_examples=15, deadline=None)
def test_simulation_conserves_messages(seed):
    """Every message sent is delivered: nothing in flight at rest."""
    from repro.tempest.machine import Machine, MachineConfig
    from helpers import random_sharing_programs

    protocol = compile_named_protocol("dash")
    programs = random_sharing_programs(3, 2, 8, seed=seed)
    machine = Machine(protocol, programs,
                      MachineConfig(n_nodes=3, n_blocks=2))
    machine.run()
    machine.assert_quiescent()
    machine.assert_coherent()
    # The event queue drained completely (run() returned), so carried
    # messages all reached handlers.
    assert machine.network.messages_carried == \
        machine._collect_stats().counters.messages_sent
