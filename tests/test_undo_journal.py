"""Property tests for the fast engine's mutate-and-undo journal.

The serial rewrite replaced copy-the-world successor construction with
:class:`~repro.verify.model.ActionScratch`: a per-action journal over a
frozen parent ``GlobalState``.  Its soundness rests on two properties
this file drives with hypothesis across real reachable states:

- *undo is total*: after any mutation sequence, ``undo()`` makes the
  scratch read back as the parent exactly (structurally equal, same
  cached hash, same fingerprint);
- *the parent is inviolate*: no mutation sequence, frozen or not, may
  leak through the lazy copy-on-first-touch journal into the parent.
"""

from hypothesis import given, settings, strategies as st

from repro.protocols import compile_named_protocol
from repro.runtime.context import Message
from repro.tempest.memory import AccessTag
from repro.verify.checker import _KEEP_GEN, ModelChecker
from repro.verify.fingerprint import fingerprint, state_to_jsonable
from repro.verify.model import ActionEffects, ActionScratch, \
    initial_global_state


def reachable(name, limit=40, reorder=1):
    """(checker, state) pairs from a shallow BFS of a real protocol."""
    checker = ModelChecker(compile_named_protocol(name), n_nodes=2,
                           n_blocks=1, reorder_bound=reorder)
    state = initial_global_state(
        checker.protocol, checker.n_nodes, checker.n_blocks,
        checker.home_of, checker.events.initial,
        faults=checker.fault_budget)
    pool = [state]
    seen = {state}
    frontier = [state]
    while frontier and len(pool) < limit:
        next_frontier = []
        for current in frontier:
            try:
                successors = list(checker._successors(current))
            except Exception:
                continue
            for _label, successor in successors:
                if successor in seen:
                    continue
                seen.add(successor)
                pool.append(successor)
                next_frontier.append(successor)
                if len(pool) >= limit:
                    break
            if len(pool) >= limit:
                break
        frontier = next_frontier
    return [(checker, found) for found in pool]


POOL = reachable("stache") + reachable("lcm_mcc")

ACCESS = st.sampled_from([tag.value for tag in AccessTag])
BLOCKS = st.integers(min_value=0, max_value=0)       # pool is n_blocks=1
NODES = st.integers(min_value=0, max_value=1)        # pool is n_nodes=2
SCALARS = st.one_of(st.integers(min_value=-4, max_value=4),
                    st.sampled_from(["a", "b"]))

MESSAGES = st.builds(
    Message,
    tag=st.sampled_from(["REQ", "ACK", "INV", "DATA"]),
    block=BLOCKS, src=NODES, dst=NODES,
    payload=st.tuples(st.integers(min_value=0, max_value=3)))

OPS = st.lists(
    st.one_of(
        st.tuples(st.just("set_state"), BLOCKS,
                  st.sampled_from(["Home_Idle", "Cache_Invalid", "X_Test"]),
                  st.tuples(st.integers(min_value=0, max_value=3))),
        st.tuples(st.just("set_access"), BLOCKS, ACCESS),
        st.tuples(st.just("set_info"), BLOCKS,
                  st.sampled_from(["owner", "pending", "count"]), SCALARS),
        st.tuples(st.just("queue_push"), BLOCKS, MESSAGES),
        st.tuples(st.just("queue_pop"), BLOCKS),
        st.tuples(st.just("send"), MESSAGES),
        st.tuples(st.just("block_on"), st.one_of(st.none(), BLOCKS)),
    ),
    max_size=12)


def apply_op(scratch, op):
    kind = op[0]
    if kind == "set_state":
        record = scratch.record(op[1])
        record["state_name"] = op[2]
        record["state_args"] = op[3]
        record["state_changed"] = True
    elif kind == "set_access":
        scratch.record(op[1])["access"] = op[2]
    elif kind == "set_info":
        scratch.record(op[1])["info"][op[2]] = op[3]
    elif kind == "queue_push":
        scratch.record(op[1])["queue"].append(op[2])
    elif kind == "queue_pop":
        queue = scratch.record(op[1])["queue"]
        if queue:
            queue.pop(0)
    elif kind == "send":
        scratch.sends.append(op[1])
    elif kind == "block_on":
        scratch.blocked_on = op[1]


@settings(max_examples=80, deadline=None)
@given(index=st.integers(min_value=0, max_value=len(POOL) - 1),
       node=NODES, ops=OPS)
def test_apply_then_undo_restores_parent(index, node, ops):
    _checker, state = POOL[index]
    before_hash = hash(state)
    before_fp = fingerprint(state)
    scratch = ActionScratch(state, node)
    for op in ops:
        apply_op(scratch, op)
    scratch.undo()
    assert scratch.changed_views() == ()
    assert scratch.sends == []
    assert scratch.blocked_on == state.apps[node].blocked_on
    frozen = scratch.freeze()
    assert frozen == state
    assert hash(frozen) == before_hash
    assert fingerprint(frozen) == before_fp


@settings(max_examples=80, deadline=None)
@given(index=st.integers(min_value=0, max_value=len(POOL) - 1),
       node=NODES, ops=OPS)
def test_mutations_never_leak_into_parent(index, node, ops):
    _checker, state = POOL[index]
    snapshot = state_to_jsonable(state)
    before_hash = hash(state)
    scratch = ActionScratch(state, node)
    for op in ops:
        apply_op(scratch, op)
    scratch.freeze()        # materializing the successor must not help
    assert state_to_jsonable(state) == snapshot
    assert hash(state) == before_hash


@settings(max_examples=80, deadline=None)
@given(index=st.integers(min_value=0, max_value=len(POOL) - 1),
       node=NODES, ops=OPS)
def test_freeze_matches_incremental_replay(index, node, ops):
    """``freeze()`` (the slow reference) and the checker's tuple-surgery
    replay of the distilled effects must build the same successor."""
    checker, state = POOL[index]
    scratch = ActionScratch(state, node)
    for op in ops:
        apply_op(scratch, op)
    effects = ActionEffects(scratch.changed_views(), tuple(scratch.sends),
                            scratch.blocked_on, (), None)
    frozen = scratch.freeze()
    replayed = checker._build_successor(state, node, effects,
                                        _KEEP_GEN, None)
    assert replayed == frozen
    assert hash(replayed) == hash(frozen)
