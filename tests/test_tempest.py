"""Unit tests for the Tempest substrate: memory, network, machine."""

import pytest

from repro.lang.errors import RuntimeProtocolError
from repro.runtime.context import Message
from repro.tempest.machine import Machine, MachineConfig
from repro.tempest.memory import (
    ACCESS_CHANGE_RESULT,
    AccessTag,
    fault_event_for,
)
from repro.tempest.network import Network, NetworkConfig

from helpers import compile_mini, random_sharing_programs


class TestAccessControl:
    @pytest.mark.parametrize("tag,is_write,expected", [
        (AccessTag.INVALID, False, "RD_FAULT"),
        (AccessTag.INVALID, True, "WR_FAULT"),
        (AccessTag.READ_ONLY, False, None),
        (AccessTag.READ_ONLY, True, "WR_RO_FAULT"),
        (AccessTag.READ_WRITE, False, None),
        (AccessTag.READ_WRITE, True, None),
    ])
    def test_fault_matrix(self, tag, is_write, expected):
        assert fault_event_for(tag, is_write) == expected

    def test_access_change_table_complete(self):
        assert set(ACCESS_CHANGE_RESULT) == {
            "Blk_Invalidate", "Blk_Upgrade_RO", "Blk_Upgrade_RW",
            "Blk_Downgrade_RO",
        }

    def test_permissions(self):
        assert not AccessTag.INVALID.allows_read()
        assert AccessTag.READ_ONLY.allows_read()
        assert not AccessTag.READ_ONLY.allows_write()
        assert AccessTag.READ_WRITE.allows_write()


class TestNetwork:
    def _msg(self, src=0, dst=1):
        return Message("PING", 0, src=src, dst=dst)

    def test_constant_latency(self):
        network = Network(NetworkConfig(latency=100, jitter=0))
        assert network.arrival_time(self._msg(), 50) == 150

    def test_fifo_clamping(self):
        network = Network(NetworkConfig(latency=100, jitter=0, fifo=True))
        first = network.arrival_time(self._msg(), 0)
        # A message sent later but that would arrive at the same time is
        # pushed behind the first.
        second = network.arrival_time(self._msg(), 0)
        assert second > first

    def test_fifo_is_per_channel(self):
        network = Network(NetworkConfig(latency=100, jitter=0, fifo=True))
        a = network.arrival_time(self._msg(0, 1), 0)
        b = network.arrival_time(self._msg(0, 2), 0)
        assert a == b  # different channels do not clamp each other

    def test_jitter_is_deterministic_per_seed(self):
        def arrivals(seed):
            network = Network(NetworkConfig(latency=10, jitter=50,
                                            fifo=False, seed=seed))
            return [network.arrival_time(self._msg(), t)
                    for t in range(10)]

        assert arrivals(1) == arrivals(1)
        assert arrivals(1) != arrivals(2)

    def test_jitter_can_reorder_without_fifo(self):
        network = Network(NetworkConfig(latency=10, jitter=200,
                                        fifo=False, seed=3))
        times = [network.arrival_time(self._msg(), t) for t in range(20)]
        assert any(b < a for a, b in zip(times, times[1:]))

    def test_message_count(self):
        network = Network(NetworkConfig())
        network.arrival_time(self._msg(), 0)
        network.arrival_time(self._msg(), 1)
        assert network.messages_carried == 2


class TestMachine:
    def test_simple_token_passing(self):
        protocol = compile_mini()
        programs = [
            [("write", 0, 5), ("barrier",), ("barrier",)],
            [("barrier",), ("read", 0, "log"), ("barrier",)],
        ]
        machine = Machine(protocol, programs,
                          MachineConfig(n_nodes=2, n_blocks=1))
        result = machine.run()
        machine.assert_quiescent()
        assert machine.nodes[1].observed == [(0, 5)]
        assert result.cycles > 0

    def test_wrong_program_count_rejected(self):
        protocol = compile_mini()
        with pytest.raises(ValueError, match="programs"):
            Machine(protocol, [[]], MachineConfig(n_nodes=2))

    def test_home_striping(self):
        protocol = compile_mini()
        machine = Machine(protocol, [[], [], []],
                          MachineConfig(n_nodes=3, n_blocks=6))
        assert machine.home_of(0) == 0
        assert machine.home_of(4) == 1
        assert machine.home_of(5) == 2

    def test_custom_home_map(self):
        protocol = compile_mini()
        machine = Machine(protocol, [[], []],
                          MachineConfig(n_nodes=2, n_blocks=4,
                                        home_map=lambda b: 1))
        assert machine.home_of(0) == 1

    def test_barriers_synchronise(self):
        protocol = compile_mini()
        programs = [
            [("compute", 10_000), ("barrier",)],
            [("compute", 5), ("barrier",)],
        ]
        machine = Machine(protocol, programs,
                          MachineConfig(n_nodes=2, n_blocks=1))
        machine.run()
        stats = machine.nodes[1].stats
        assert stats.barrier_wait_cycles >= 9_000

    def test_finished_nodes_leave_the_barrier_group(self):
        # Barriers synchronise the *active* nodes: once a node's program
        # ends, later barriers of the others do not wait for it.
        protocol = compile_mini()
        programs = [
            [("barrier",), ("barrier",)],
            [("barrier",)],
        ]
        machine = Machine(protocol, programs,
                          MachineConfig(n_nodes=2, n_blocks=1))
        machine.run()
        assert all(node.finished for node in machine.nodes)

    def test_event_op_blocks_until_wakeup(self):
        # GET_REQ is not an app event; use read faults instead: node 1
        # reads a block homed at 0, which requires a round trip.
        protocol = compile_mini()
        programs = [
            [],
            [("read", 0)],
        ]
        machine = Machine(protocol, programs,
                          MachineConfig(n_nodes=2, n_blocks=1))
        machine.run()
        stats = machine.nodes[1].stats
        assert stats.faults == 1
        assert stats.fault_wait_cycles > 0

    def test_fault_counts_and_hits(self):
        protocol = compile_mini()
        programs = [
            [],
            [("read", 0), ("read", 0), ("read", 0)],
        ]
        machine = Machine(protocol, programs,
                          MachineConfig(n_nodes=2, n_blocks=1))
        machine.run()
        stats = machine.nodes[1].stats
        assert stats.faults == 1          # only the first read misses
        assert stats.read_hits == 3       # all three complete

    def test_execution_time_is_max_over_nodes(self):
        protocol = compile_mini()
        programs = [[("compute", 123)], [("compute", 55_000)]]
        machine = Machine(protocol, programs,
                          MachineConfig(n_nodes=2, n_blocks=1))
        result = machine.run()
        assert result.cycles >= 55_000

    def test_livelock_guard(self):
        protocol = compile_mini()
        programs = random_sharing_programs(2, 1, 30, seed=5)
        machine = Machine(protocol, programs,
                          MachineConfig(n_nodes=2, n_blocks=1,
                                        max_events=3))
        with pytest.raises(RuntimeProtocolError, match="events"):
            machine.run()

    def test_data_transfer_carries_values(self):
        protocol = compile_mini()
        programs = [
            [("write", 0, 41), ("barrier",), ("barrier",),
             ("read", 0, "log")],
            [("barrier",), ("write", 0, 42), ("barrier",)],
        ]
        machine = Machine(protocol, programs,
                          MachineConfig(n_nodes=2, n_blocks=1))
        machine.run()
        machine.assert_quiescent()
        assert machine.nodes[0].observed == [(0, 42)]

    def test_assert_quiescent_detects_transient(self):
        protocol = compile_mini()
        machine = Machine(protocol, [[], []],
                          MachineConfig(n_nodes=2, n_blocks=1))
        machine.run()
        record = machine.nodes[0].store.record(0)
        record.state_name = "Home_Wait"
        with pytest.raises(AssertionError, match="transient"):
            machine.assert_quiescent()

    def test_assert_coherent_detects_two_writers(self):
        protocol = compile_mini()
        machine = Machine(protocol, [[], []],
                          MachineConfig(n_nodes=2, n_blocks=1))
        machine.run()
        machine.nodes[0].store.record(0)  # home record (READ_WRITE)
        machine.nodes[1].store.record(0).access = AccessTag.READ_WRITE
        with pytest.raises(AssertionError, match="writable"):
            machine.assert_coherent()

    def test_stats_aggregation(self):
        protocol = compile_mini()
        programs = random_sharing_programs(3, 2, 10, seed=6)
        machine = Machine(protocol, programs,
                          MachineConfig(n_nodes=3, n_blocks=2))
        result = machine.run()
        stats = result.stats
        assert len(stats.nodes) == 3
        assert stats.messages == stats.counters.messages_sent
        assert 0.0 <= stats.fault_time_fraction <= 1.0
        assert "cycles=" in stats.summary()

    def test_deterministic_given_seed(self):
        def run_once():
            protocol = compile_mini()
            programs = random_sharing_programs(3, 2, 20, seed=7)
            machine = Machine(protocol, programs,
                              MachineConfig(n_nodes=3, n_blocks=2))
            return machine.run().cycles

        assert run_once() == run_once()
